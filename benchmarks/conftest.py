"""Shared bench fixtures.

Benches run at the scale named by ``$REPRO_SCALE`` (smoke/default/paper,
default: default).  Experiment results are cached under ``.repro-cache`` so
repeated bench runs only pay for the pytest-benchmark kernels; each bench
also writes its regenerated table to ``results/<name>.txt`` and echoes it
to the terminal.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.harness import Scale, default_cache


@pytest.fixture(scope="session")
def scale() -> Scale:
    return Scale.from_env("default")


@pytest.fixture(scope="session")
def cache():
    return default_cache()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    path = Path(__file__).resolve().parent.parent / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture
def report(results_dir, capsys):
    """Write a regenerated table to results/ and echo it to the terminal."""

    def emit(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        with capsys.disabled():
            print(f"\n{text}\n[saved to results/{name}.txt]")

    return emit
