"""Ablation — DRAM write-back buffer (extension substrate).

The paper's Figure 1 shows the controller's DRAM buffer but the evaluation
runs without one.  This ablation quantifies what a modest LRU write-back
buffer changes on the Figure-5 mixes: hot writes coalesce, hot reads hit
DRAM, and flash sees only eviction traffic.
"""

from repro.harness import format_table
from repro.harness.experiments import build_mixes, labeler_config
from repro.ssd import BufferConfig, SSDSimulator


def test_buffer_ablation_and_bench(benchmark, scale, cache, report):
    cfg = labeler_config()
    shared = {w: list(range(cfg.ssd.channels)) for w in range(4)}
    mixes = build_mixes(scale)

    rows = []
    improvements = []
    for mix_name, mixed in mixes.items():
        # Cap work at a prefix of the mix: buffer effects are stationary.
        reqs = mixed.requests[: min(len(mixed.requests), 4000)]
        plain = SSDSimulator(cfg.ssd, shared).run(list(reqs))
        buffered_sim = SSDSimulator(
            cfg.ssd,
            shared,
            buffer=BufferConfig(capacity_pages=2048, dram_latency_us=2.0),
        )
        buffered = buffered_sim.run(list(reqs))
        gain = 1.0 - buffered.total_latency_us / plain.total_latency_us
        improvements.append(gain)
        rows.append(
            [
                mix_name,
                f"{plain.mean_total_us:.0f}",
                f"{buffered.mean_total_us:.0f}",
                f"{buffered.extras['buffer_read_hit_rate']:.1%}",
                f"{buffered.extras['buffer_write_absorb_rate']:.1%}",
                f"{gain:+.1%}",
            ]
        )
    table = format_table(
        ["mix", "no buffer (us)", "buffered (us)", "read hit", "write absorb", "gain"],
        rows,
        title="DRAM write-back buffer ablation (Shared allocation, 2048-page LRU)",
    )
    report("ablation_buffer", table)

    # A write-back buffer must never hurt and should help the write-heavy mixes.
    assert min(improvements) > -0.02
    assert max(improvements) > 0.10

    # Kernel: buffered run of one short window.
    short = mixes["Mix1"].requests[:600]
    benchmark(
        lambda: SSDSimulator(
            cfg.ssd,
            shared,
            buffer=BufferConfig(capacity_pages=1024),
        ).run(list(short))
    )
