"""Ablation — learning curve over the labelled-dataset size.

Context for the accuracy-vs-paper comparison: the paper trains on 5,000
labelled mixes; this reproduction's default is 3,600.  The curve shows how
test accuracy converges with data, so readers can judge what the remaining
gap to the paper's dataset buys.
"""

from repro.core import StrategyLearner, StrategySpace
from repro.harness import ablation_dataset_size, format_table
from repro.harness import build_dataset


def test_dataset_size_ablation_and_bench(benchmark, scale, cache, report):
    data = ablation_dataset_size(scale, cache=cache)
    rows = [
        [entry["rows"], f"{entry['final_accuracy']:.1%}", f"{entry['final_loss']:.3f}"]
        for _, entry in sorted(data.items(), key=lambda kv: float(kv[0]))
    ]
    table = format_table(
        ["training mixes", "test accuracy", "final loss"],
        rows,
        title="Learning curve (Adam-logistic; paper trains on 5,000 mixes)",
    )
    report("ablation_dataset_size", table)

    accs = [
        entry["final_accuracy"]
        for _, entry in sorted(data.items(), key=lambda kv: float(kv[0]))
    ]
    # More data should never hurt badly, and the full set should be best-ish.
    assert accs[-1] >= max(accs) - 0.03
    assert accs[-1] > accs[0]

    # Kernel: one full training run on an eighth of the data.
    dataset = build_dataset(scale, cache=cache)
    from repro.core.labeler import Dataset

    subset = Dataset(
        features=dataset.features[: len(dataset) // 8],
        labels=dataset.labels[: len(dataset) // 8],
        n_classes=dataset.n_classes,
    )

    def train_small():
        learner = StrategyLearner(StrategySpace(), activation="logistic", seed=1)
        return learner.train(subset, optimizer="adam", learning_rate=0.02,
                             iterations=20, seed=1)

    benchmark(train_small)
