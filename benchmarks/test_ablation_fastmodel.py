"""Ablation — fast-model fidelity vs the event-driven simulator.

The 42-strategy label sweeps (Algorithm 1) run on the vectorised fast
model; this ablation quantifies the substitution: Spearman rank agreement
of strategy orderings, winner agreement under the tie band, and the
cross-engine regret of deploying the fast model's winner.
"""

import numpy as np

from repro.core import LabelerConfig, StrategySpace, random_specs, sweep_strategies
from repro.core.features import features_of_mix
from repro.harness import ablation_fastmodel, format_table
from repro.ssd import SSDConfig
from repro.workloads import synthesize_mix


def test_fastmodel_fidelity_and_bench(benchmark, scale, cache, report):
    data = ablation_fastmodel(scale, cache=cache)
    table = format_table(
        ["mix", "spearman", "fast winner", "event winner", "cross regret"],
        [
            [
                i,
                f"{row['spearman']:.3f}",
                row["fast_winner"],
                row["event_winner"],
                f"{row['cross_regret']:.3f}",
            ]
            for i, row in enumerate(data["per_mix"])
        ],
        title="Fast model vs event-driven simulator (strategy sweeps)",
    )
    table += (
        f"\n\nmean spearman: {data['mean_spearman']:.3f}; "
        f"winner agreement: {data['winner_agreement']:.0%}; "
        f"mean cross regret: {data['mean_cross_regret']:.3f}"
    )
    report("ablation_fastmodel", table)

    assert data["mean_spearman"] > 0.85
    assert data["mean_cross_regret"] < 1.3

    # Kernel: one full 42-strategy fast sweep (the label-generation unit).
    cfg = LabelerConfig(ssd=SSDConfig.small(), window_requests_max=600,
                        window_s=0.02, replications=1)
    space = StrategySpace()
    rng = np.random.default_rng(4)
    specs, total = random_specs(cfg, rng, intensity_level=10)
    mixed = synthesize_mix(specs, total_requests=total, seed=11)
    fv = features_of_mix(mixed, intensity_quantum=cfg.intensity_quantum)

    benchmark(lambda: sweep_strategies(mixed, fv, space, cfg))
