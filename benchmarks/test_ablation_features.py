"""Ablation — which feature groups carry the signal.

Drops each of the paper's three feature groups (intensity level, R/W
characteristics, request proportions) and retrains, quantifying Section
IV-B's claim that all three matter for the allocation decision.
"""

from repro.core import FeaturesCollector
from repro.harness import ablation_features, format_table
from repro.ssd import IORequest, OpType


def test_feature_ablation_and_bench(benchmark, scale, cache, report):
    data = ablation_features(scale, cache=cache)
    table = format_table(
        ["feature set", "columns", "test accuracy"],
        [
            [name, ",".join(map(str, row["columns"])), f"{row['final_accuracy']:.1%}"]
            for name, row in data.items()
        ],
        title="Feature-group ablation (drop one group, retrain)",
    )
    report("ablation_features", table)

    accs = {name: row["final_accuracy"] for name, row in data.items()}
    # Labels concentrate on Shared in the idle and overloaded regimes, so
    # even intensity alone scores well; the full feature set must stay
    # competitive with every reduced set (within training noise).
    assert accs["all"] >= max(accs.values()) - 0.05

    # Kernel: feature collection over a 1000-request window.
    reqs = [
        IORequest(arrival_us=float(i), workload_id=i % 4,
                  op=OpType.READ if i % 3 else OpType.WRITE, lpn=i)
        for i in range(1000)
    ]

    def collect():
        col = FeaturesCollector(4, intensity_quantum=150.0)
        for r in reqs:
            col.observe(r)
        return col.collect()

    benchmark(collect)
