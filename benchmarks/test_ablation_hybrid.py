"""Ablation — hybrid page allocation (the paper's §V-C +2.1 % claim).

Runs SSDKeeper over Mix1..Mix4 with all-static, hybrid, and all-dynamic
page allocation and reports the mean gain of hybrid over all-static.
"""

from repro.harness import ablation_hybrid, format_table
from repro.ssd import PageAllocMode, SSDConfig, simulate
from repro.workloads import WorkloadSpec, generate


def test_hybrid_ablation_and_bench(benchmark, scale, cache, report):
    data = ablation_hybrid(scale, cache=cache)
    rows = []
    for mix_name, row in data["mixes"].items():
        for policy in data["policies"]:
            vals = row[policy]
            rows.append(
                [mix_name, policy, vals["strategy"], f"{vals['total_latency_s']:.3f}"]
            )
    table = format_table(
        ["mix", "page policy", "strategy", "total latency (s)"],
        rows,
        title="Hybrid page-allocation ablation (SSDKeeper runs)",
    )
    table += (
        f"\n\nmean hybrid-vs-static gain: {data['hybrid_vs_static_mean_gain']:+.1%}"
        " (paper: +2.1% on average)"
    )
    report("ablation_hybrid", table)

    # The effect is small by construction; demand it is not badly negative.
    assert data["hybrid_vs_static_mean_gain"] > -0.10

    # Kernel: static vs dynamic placement micro-comparison on one burst.
    config = SSDConfig.small()
    spec = WorkloadSpec(name="w", write_ratio=1.0, rate_rps=30_000,
                        footprint_pages=4096, skew=1.5, sequential_fraction=0.0)
    reqs = generate(spec, 400, workload_id=0, seed=3)
    sets = {0: list(range(config.channels))}

    benchmark(
        lambda: simulate(list(reqs), config, sets, {0: PageAllocMode.DYNAMIC})
    )
