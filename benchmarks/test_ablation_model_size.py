"""Ablation — hidden-layer width (the paper fixes 64 neurons).

Sweeps the hidden width and reports test accuracy and parameter counts,
quantifying whether the paper's 64-neuron choice sits on the accuracy
plateau while keeping the FTL footprint tiny.
"""

import numpy as np

from repro.harness import ablation_model_size, format_table
from repro.nn import paper_network


def test_model_size_ablation_and_bench(benchmark, scale, cache, report):
    data = ablation_model_size(scale, cache=cache)
    table = format_table(
        ["hidden width", "test accuracy", "final loss", "parameters"],
        [
            [w, f"{row['final_accuracy']:.1%}", f"{row['final_loss']:.3f}",
             row["parameters"]]
            for w, row in sorted(data.items(), key=lambda kv: int(kv[0]))
        ],
        title="Hidden-width ablation (Adam-logistic, paper trains width 64)",
    )
    report("ablation_model_size", table)

    accs = {int(w): row["final_accuracy"] for w, row in data.items()}
    # 64 should clearly beat the tiny model; 128 should not be a huge jump.
    assert accs[64] > accs[8]
    assert accs[128] - accs[64] < 0.15

    # Kernel: forward pass of the paper network (FTL inference compute).
    net = paper_network(seed=0)
    x = np.random.default_rng(0).normal(size=(1, 9))
    benchmark(lambda: net.forward(x))
