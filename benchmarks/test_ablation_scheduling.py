"""Ablation — FIFO vs preemptive read-priority service.

SSDSim-family simulators (and this reproduction's default) serve host
operations FIFO per resource; the paper's "reads have priority" is the
tR << tPROG asymmetry.  This bench quantifies the alternative reading:
a genuinely preemptive read queue trades write latency for read latency.
"""

from repro.harness import ablation_scheduling, format_table
from repro.harness.experiments import labeler_config
from repro.ssd import SSDSimulator
from repro.workloads import WorkloadSpec, synthesize_mix


def test_scheduling_ablation_and_bench(benchmark, scale, cache, report):
    data = ablation_scheduling(scale, cache=cache)
    table = format_table(
        ["mix", "read fifo (us)", "read prio (us)", "write fifo (us)", "write prio (us)"],
        [
            [i, f"{r['fifo_read_us']:.0f}", f"{r['prio_read_us']:.0f}",
             f"{r['fifo_write_us']:.0f}", f"{r['prio_write_us']:.0f}"]
            for i, r in enumerate(data["per_mix"])
        ],
        title="Queue-discipline ablation (Shared allocation, level-14 mixes)",
    )
    table += (
        f"\n\nread speedup under priority: {data['mean_read_speedup']:.2f}x; "
        f"write slowdown: {data['mean_write_slowdown']:.2f}x"
    )
    report("ablation_scheduling", table)

    assert data["mean_read_speedup"] >= 0.99   # priority never hurts reads
    assert data["mean_write_slowdown"] >= 0.99  # and is not a free lunch

    # Kernel: a read-priority run (vs the FIFO kernel in perf_kernels).
    cfg = labeler_config()
    specs = [
        WorkloadSpec(name=f"t{i}", write_ratio=1.0 if i < 2 else 0.0,
                     rate_rps=10_000, footprint_pages=cfg.footprint_pages)
        for i in range(4)
    ]
    mixed = synthesize_mix(specs, total_requests=800, seed=9)
    shared = {w: list(range(8)) for w in range(4)}
    benchmark(
        lambda: SSDSimulator(cfg.ssd, shared, read_priority=True).run(
            list(mixed.requests)
        )
    )
