"""Figure 2 — normalised read/write/total latency, two tenants sharing one SSD.

Regenerates all three panels of the paper's motivation figure: mean write,
read, and total latency for every channel-allocation strategy across write
proportions 10 %..90 %, normalised to Shared at 10 % (the paper plots
normalised latencies).  The expected *shape*:

* (a) write latency of 3:5/2:6/1:7 blows up as write share grows;
* (b) read latency falls as the read group gains channels;
* (c) no single strategy wins everywhere — the best choice crosses over
  with the write proportion, motivating self-adaptation.
"""

import numpy as np

from repro.harness import fig2_motivation, format_series
from repro.harness.experiments import labeler_config
from repro.ssd import simulate
from repro.workloads import WorkloadSpec, generate


def test_fig2_regenerate_and_bench(benchmark, scale, cache, report):
    data = fig2_motivation(scale, cache=cache)
    wps = data["write_proportions"]
    strategies = data["strategies"]

    sections = []
    for key, title in (
        ("write_latency_us", "Figure 2(a): mean write latency (us)"),
        ("read_latency_us", "Figure 2(b): mean read latency (us)"),
        ("total_latency_us", "Figure 2(c): write+read mean latency (us)"),
    ):
        series = {s: data[key][s] for s in strategies}
        sections.append(format_series("write_prop", wps, series, title=title))

    # The headline claims of Section III.
    totals = np.array([data["total_latency_us"][s] for s in strategies])
    best = [strategies[i] for i in totals.argmin(axis=0)]
    spread = totals.max(axis=0) / totals.min(axis=0)
    sections.append(
        "best strategy per write proportion: "
        + ", ".join(f"{wp:.1f}->{b}" for wp, b in zip(wps, best))
    )
    sections.append(
        f"max/min strategy spread: {spread.max():.1f}x (paper reports up to 10.6x)"
    )
    report("fig2_motivation", "\n\n".join(sections))

    # Sanity on the reproduced shape.
    assert len(set(best)) > 1, "a single strategy should not win everywhere"
    assert spread.max() > 3.0

    # Kernel: one strategy/point of the sweep (event-driven run).
    cfg = labeler_config(n_tenants=2)
    writer = WorkloadSpec(name="w", write_ratio=1.0, rate_rps=13_500,
                          footprint_pages=cfg.footprint_pages)
    reader = WorkloadSpec(name="r", write_ratio=0.0, rate_rps=13_500,
                          footprint_pages=cfg.footprint_pages)
    reqs = sorted(
        generate(writer, 300, workload_id=0, seed=1)
        + generate(reader, 300, workload_id=1, seed=2),
        key=lambda r: r.arrival_us,
    )
    sets = {0: [0, 1, 2, 3], 1: [4, 5, 6, 7]}
    benchmark(lambda: simulate(list(reqs), cfg.ssd, sets))
