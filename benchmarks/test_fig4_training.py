"""Figure 4 — loss and test-accuracy curves of the four optimizer variants.

Regenerates the training curves (loss per iteration; accuracy on the held
out 30 %) for SGD, SGD-momentum, Adam-ReLU and Adam-logistic.  The paper's
qualitative findings checked here: every variant's loss decreases and
converges, and the Adam variants reach lower loss than plain SGD.
"""

import numpy as np

from repro.core import StrategyLearner, StrategySpace
from repro.harness import build_dataset, format_series, train_all


def _sample_curve(curve, points=10):
    idx = np.linspace(0, len(curve) - 1, min(points, len(curve))).astype(int)
    return [curve[i] for i in idx], idx.tolist()


def test_fig4_regenerate_and_bench(benchmark, scale, cache, report):
    data = train_all(scale, cache=cache)
    variants = data["variants"]

    any_curve = next(iter(variants.values()))["loss_curve"]
    _, iters = _sample_curve(any_curve)
    loss_series = {
        name: _sample_curve(row["loss_curve"])[0] for name, row in variants.items()
    }
    acc_series = {
        name: _sample_curve(row["accuracy_curve"])[0] for name, row in variants.items()
    }
    text = "\n\n".join(
        [
            format_series(
                "iteration", iters, loss_series,
                title="Figure 4(a): training loss vs iteration",
            ),
            format_series(
                "iteration", iters, acc_series,
                title="Figure 4(b): test accuracy vs iteration",
            ),
        ]
    )
    report("fig4_training", text)

    for name, row in variants.items():
        curve = row["loss_curve"]
        # Loss decreases overall (compare first tenth vs last tenth).
        head = np.mean(curve[: max(1, len(curve) // 10)])
        tail = np.mean(curve[-max(1, len(curve) // 10):])
        assert tail < head, f"{name} loss did not decrease"
    assert variants["Adam-logistic"]["final_loss"] < variants["SGD"]["final_loss"]

    # Kernel: one training iteration (epoch) of the paper network.
    dataset = build_dataset(scale, cache=cache)
    learner = StrategyLearner(StrategySpace(), activation="logistic", seed=0)

    def one_epoch():
        learner.train(dataset, optimizer="adam", iterations=1, seed=0)

    benchmark(one_epoch)
