"""Figure 5 — Mix1..Mix4 under Shared / Isolated / SSDKeeper (+hybrid).

Regenerates the paper's headline evaluation: the four Table-IV mixes of MSR
stand-ins run under the traditional Shared allocation, blind equal
Isolation, SSDKeeper's learned allocation, and SSDKeeper with the hybrid
page allocator.  Shape checked: SSDKeeper never loses badly to Shared
(its fallback answer *is* Shared) and beats it on average, while blind
Isolation is catastrophic for at least one mix (the paper's Mix1: -327 %).
"""

import numpy as np

from repro.core import ChannelAllocator, SSDKeeper
from repro.harness import fig5_performance, format_table
from repro.harness import build_mixes, trained_learner
from repro.harness.experiments import labeler_config


def test_fig5_regenerate_and_bench(benchmark, scale, cache, report):
    data = fig5_performance(scale, cache=cache)
    mixes = data["mixes"]

    rows = []
    for mix_name, entry in mixes.items():
        for tag, vals in entry["rows"].items():
            rows.append(
                [
                    mix_name,
                    tag,
                    f"{vals['mean_write_us']:.0f}",
                    f"{vals['mean_read_us']:.0f}",
                    f"{vals['mean_total_us']:.0f}",
                    f"{vals['total_latency_s']:.3f}",
                ]
            )
    table = format_table(
        ["mix", "allocation", "write us", "read us", "w+r us", "total (s)"],
        rows,
        title="Figure 5: per-mix latency under each allocation",
    )
    # The paper's overall metric is mean write latency + mean read latency.
    gains = []
    for mix_name, entry in mixes.items():
        shared = entry["rows"]["Shared"]["mean_total_us"]
        keeper = entry["rows"]["SSDKeeper+hybrid"]["mean_total_us"]
        gains.append(1.0 - keeper / shared)
    summary = (
        "SSDKeeper+hybrid vs Shared (mean write + mean read), per mix: "
        + ", ".join(
            f"{name}: {g:+.1%}" for name, g in zip(mixes, gains)
        )
        + f"\nmean improvement: {np.mean(gains):+.1%} (paper: +24% overall)"
    )
    report("fig5_performance", table + "\n\n" + summary)

    # Shape assertions.
    assert np.mean(gains) > -0.05, "SSDKeeper should not lose to Shared on average"
    iso_losses = [
        entry["rows"]["Isolated"]["mean_total_us"]
        / entry["rows"]["Shared"]["mean_total_us"]
        for entry in mixes.values()
    ]
    assert max(iso_losses) > 1.2, "blind isolation should hurt at least one mix"

    # Kernel: one Algorithm-2 adaptive run on a short window of Mix1.
    cfg = labeler_config()
    learner = trained_learner(scale, cache=cache)
    short = build_mixes(scale)["Mix1"].requests[:800]

    def adaptive_run():
        keeper = SSDKeeper(
            ChannelAllocator(learner),
            cfg.ssd,
            collect_window_us=cfg.window_s * 1e6,
            intensity_quantum=cfg.intensity_quantum,
        )
        return keeper.run(list(short))

    benchmark(adaptive_run)
