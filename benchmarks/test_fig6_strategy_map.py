"""Figure 6 — SSDKeeper's strategy choice over (intensity, write proportion).

Regenerates the strategy-map scatter: for random four-tenant mixes across
every intensity level, record the trained allocator's decision against the
mix's intensity level (X) and total write proportion (Y), with four-part
permutations collapsed as in the paper (5:1:1:1 covers 1:5:1:1 etc.).

Shape checked: decisions vary with both axes (no constant strategy), and at
low write proportions the write-dominated group receives few channels.
"""

from collections import Counter, defaultdict

import numpy as np

from repro.core import FeatureVector
from repro.harness import fig6_strategy_map, format_table, trained_learner


def test_fig6_regenerate_and_bench(benchmark, scale, cache, report):
    data = fig6_strategy_map(scale, cache=cache)
    points = data["points"]

    # Bucket the scatter into a compact level x write-band table.
    buckets: dict[tuple[int, str], Counter] = defaultdict(Counter)
    for p in points:
        level_band = f"{(p['intensity_level'] // 4) * 4}-{(p['intensity_level'] // 4) * 4 + 3}"
        wp_band = f"{int(p['write_proportion'] * 4) * 25}%"
        buckets[(level_band, wp_band)][p["simplified"]] += 1
    rows = [
        [level, wp, counter.most_common(1)[0][0], sum(counter.values())]
        for (level, wp), counter in sorted(buckets.items())
    ]
    table = format_table(
        ["intensity band", "write band", "modal strategy", "points"],
        rows,
        title="Figure 6: modal allocation per (intensity, write-proportion) region",
    )
    histogram = Counter(p["simplified"] for p in points)
    table += "\n\nstrategy histogram: " + ", ".join(
        f"{name}:{count}" for name, count in histogram.most_common()
    )
    report("fig6_strategy_map", table)

    assert len(histogram) >= 3, "decisions should vary across the map"
    # Low-write mixes must not hand the write group most of the device
    # (the paper: one channel for writes when write proportion < 0.2).
    low_wp = [p for p in points if p["write_proportion"] < 0.2]
    if low_wp:
        def write_hogging(label: str) -> bool:
            parts = label.split(":")
            # Only two-part labels encode the write group directly.
            return len(parts) == 2 and parts[0] in ("6", "7")

        hogging = sum(1 for p in low_wp if write_hogging(p["strategy"]))
        assert hogging / len(low_wp) < 0.3

    # Kernel: one map point (inference only).
    learner = trained_learner(scale, cache=cache)
    rng = np.random.default_rng(0)

    def one_point():
        fv = FeatureVector(
            int(rng.integers(0, 20)),
            tuple(int(rng.integers(0, 2)) for _ in range(4)),
            tuple(rng.dirichlet(np.ones(4))),
        )
        return learner.predict_index(fv)

    benchmark(one_point)
