"""Model quality in deployment units — the honest supplement to Table III.

The paper reports one number (94.5 % top-1 accuracy).  With short traces
the 42-class label is intrinsically noisy, so this bench evaluates the
deployed model on *fresh held-out labelled mixes* with the full sweep
results available: top-1/3/5 accuracy plus the latency-regret distribution
(what tenants actually pay for a wrong prediction).
"""

from repro.core import StrategySpace, evaluate_learner, holdout_samples
from repro.harness import format_table, trained_learner
from repro.harness.experiments import labeler_config


def test_model_quality_and_bench(benchmark, scale, cache, report):
    cfg = labeler_config()
    learner = trained_learner(scale, cache=cache)
    space = StrategySpace()
    n = max(30, scale.fig6_samples // 4)
    samples = holdout_samples(cfg, space, n, seed=20260706)
    quality = evaluate_learner(learner, samples)

    table = format_table(
        ["metric", "value"],
        quality.rows(),
        title=f"Strategy-learner quality on {n} held-out mixes "
        "(paper reports 94.5% top-1 on its own labels)",
    )
    report("model_quality", table)

    # Deployment-quality floor: mostly near-optimal picks, bounded tail.
    assert quality.top3_accuracy >= quality.top1_accuracy
    assert quality.median_regret < 1.2
    assert quality.within_10pct > 0.5

    # Kernel: the evaluation pass itself (vectorised forward + regret).
    benchmark(lambda: evaluate_learner(learner, samples))
