"""Throughput kernels of the two simulation engines.

Not a paper figure: these benches track the performance of the substrate
itself (events/s of the DES, sub-requests/s of the fast model, placement
and GC costs), so regressions in the hot loops are visible.
"""

import numpy as np

from repro.ssd import FastLatencyModel, IORequest, OpType, SSDConfig, SSDSimulator
from repro.ssd.ftl.gc import GarbageCollector
from repro.ssd.ftl.mapping import FlashArrayState


def make_trace(n, seed=0, wids=4):
    rng = np.random.default_rng(seed)
    return [
        IORequest(
            arrival_us=float(t),
            workload_id=int(rng.integers(0, wids)),
            op=OpType(int(rng.integers(0, 2))),
            lpn=int(rng.integers(0, 16_384)),
            length=int(rng.integers(1, 4)),
        )
        for t in np.sort(rng.uniform(0, 50_000, size=n))
    ]


SETS = {w: list(range(8)) for w in range(4)}


def test_event_engine_throughput(benchmark):
    config = SSDConfig.small()
    trace = make_trace(2000)

    result = benchmark(lambda: SSDSimulator(config, SETS).run(list(trace)))
    assert result.requests == 2000


def test_fast_model_throughput(benchmark):
    config = SSDConfig.small()
    trace = make_trace(2000)

    result = benchmark(lambda: FastLatencyModel(config, SETS).run(list(trace)))
    assert result.requests == 2000


def test_gc_reclaim_cost(benchmark):
    """Cost of reclaiming one half-dead block."""
    config = SSDConfig(
        channels=1, chips_per_channel=1, dies_per_chip=1, planes_per_die=1,
        blocks_per_plane=64, pages_per_block=128,
    )

    def reclaim():
        state = FlashArrayState(config)
        gc = GarbageCollector(state)
        plane = state.planes[0]
        for lpn in range(128):
            state.write(lpn, plane)
        for lpn in range(0, 128, 2):
            state.write(lpn, plane)  # kill half of block 0
        victim = gc.pick_victim(plane)
        return gc._reclaim(plane, victim)

    item = benchmark(reclaim)
    assert item.moves > 0


def test_mapping_write_cost(benchmark):
    config = SSDConfig.small()

    def churn():
        state = FlashArrayState(config)
        plane = state.planes[0]
        for lpn in range(2000):
            state.write(lpn % 512, plane)
        return state.mapped_pages()

    assert benchmark(churn) == 512
