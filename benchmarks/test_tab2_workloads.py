"""Table II — characteristics of the evaluated I/O workloads.

Regenerates the workload table from the MSR stand-ins and verifies the
realised write ratios match the published ones.
"""

from repro.harness import format_table, tab2_workloads
from repro.workloads import generate, msr


def test_tab2_regenerate_and_bench(benchmark, scale, report):
    rows = tab2_workloads(sample_requests=10_000)
    table = format_table(
        ["workload", "paper write", "measured write", "paper #requests", "rate (req/s)"],
        [
            [
                name,
                f"{row['paper_write_ratio']:.0%}",
                f"{row['measured_write_ratio']:.1%}",
                f"{row['paper_request_count']:,}",
                f"{row['rate_rps']:,.0f}",
            ]
            for name, row in sorted(rows.items())
        ],
        title="Table II: characteristics of the evaluated I/O workloads",
    )
    report("tab2_workloads", table)

    for row in rows.values():
        assert abs(row["measured_write_ratio"] - row["paper_write_ratio"]) < 0.02

    # Kernel: generating one stand-in trace.
    spec = msr.spec("prxy_0", rate_scale=530.0, footprint_pages=4096)
    benchmark(lambda: generate(spec, 2000, workload_id=0, seed=1))
