"""Table III — final loss, accuracy and training time per optimizer.

The paper's Table III rows (their values: SGD 0.39/85.6 %/14389 ms,
SGD-momentum 0.41/88.1 %/13672 ms, Adam-ReLU 0.21/92.7 %/15196 ms,
Adam-logistic 0.11/94.5 %/19646 ms).  Checked qualitative shape: Adam
reaches lower loss than SGD, and the logistic activation costs the most
training time (its derivative is costlier than ReLU's).
"""

import numpy as np

from repro.core import FeatureVector
from repro.harness import format_table, train_all, trained_learner


def test_tab3_regenerate_and_bench(benchmark, scale, cache, report):
    data = train_all(scale, cache=cache)
    variants = data["variants"]
    table = format_table(
        ["optimizer", "loss", "accuracy", "training time (ms)"],
        [
            [
                name,
                f"{row['final_loss']:.2f}",
                f"{row['final_accuracy']:.1%}",
                f"{row['training_time_ms']:.0f}",
            ]
            for name, row in variants.items()
        ],
        title="Table III: final loss, accuracy and training time",
    )
    report("tab3_optimizers", table)

    losses = {name: row["final_loss"] for name, row in variants.items()}
    times = {name: row["training_time_ms"] for name, row in variants.items()}
    assert losses["Adam-logistic"] < losses["SGD"]
    assert losses["Adam-ReLU"] < losses["SGD"]
    # Logistic's extra cost (paper: 29-44% slower than the alternatives).
    assert times["Adam-logistic"] > np.mean(
        [times["SGD"], times["SGD-momentum"], times["Adam-ReLU"]]
    )

    # Kernel: a single model inference (the FTL's per-decision cost).
    learner = trained_learner(scale, cache=cache)
    fv = FeatureVector(12, (0, 1, 0, 1), (0.4, 0.3, 0.2, 0.1))
    benchmark(lambda: learner.predict_index(fv))
