"""Table V — features and SSDKeeper's chosen allocation per mix.

Regenerates the per-mix feature vectors (in the paper's bracketed notation)
and the strategy the trained allocator picked.  The adaptive property the
paper highlights is checked: different mixes elicit different strategies,
spanning both named strategies (Shared/two-part) and four-part splits.
"""

from repro.core import FeatureVector
from repro.harness import format_table, tab5_allocations, trained_learner


def test_tab5_regenerate_and_bench(benchmark, scale, cache, report):
    data = tab5_allocations(scale, cache=cache)
    table = format_table(
        ["mix", "workloads", "features", "SSDKeeper allocation"],
        [
            [
                mix_name,
                ",".join(entry["workloads"]),
                entry["features"],
                entry["strategy"],
            ]
            for mix_name, entry in data.items()
        ],
        title="Table V: mixed-workload features and chosen channel allocations",
    )
    report("tab5_allocations", table)

    strategies = {entry["strategy"] for entry in data.values()}
    assert len(strategies) >= 2, "the allocator should adapt across mixes"

    # Kernel: the full decision path (features -> strategy -> channel sets).
    learner = trained_learner(scale, cache=cache)
    from repro.core import ChannelAllocator

    allocator = ChannelAllocator(learner)
    fv = FeatureVector(16, (1, 0, 0, 0), (0.67, 0.26, 0.03, 0.04))
    benchmark(lambda: allocator.channel_sets(fv))
