#!/usr/bin/env python3
"""Trace files end to end: generate, save, reload, analyze, simulate.

Shows the workflow a user with *real* block traces would follow:

1. produce trace files in the repository's format (here: the MSR stand-ins
   of Table II, written to a temp directory);
2. reload them and verify their statistics with :mod:`repro.workloads.stats`
   (the measured write ratios must match Table II);
3. merge them into a multi-tenant trace and run it through the simulator,
   printing the per-tenant latency breakdown and the device utilisation.

Run:  python examples/inspect_traces.py
"""

from pathlib import Path
import tempfile

from repro.harness import format_table
from repro.ssd import SSDConfig, SSDSimulator
from repro.workloads import analyze, generate, mix, msr, per_workload, traces


def main() -> None:
    config = SSDConfig.small()
    names = ["mds_0", "src_1", "web_2", "prxy_0"]
    specs = [
        msr.spec(n, rate_scale=800.0, footprint_pages=16_384) for n in names
    ]

    with tempfile.TemporaryDirectory() as tmp:
        # 1. write one trace file per tenant -----------------------------
        paths = []
        for wid, spec in enumerate(specs):
            reqs = generate(spec, 1500, workload_id=wid, seed=21 + wid)
            path = Path(tmp) / f"{spec.name}.trace"
            traces.dump(reqs, path, precision=3)
            paths.append(path)
            print(f"wrote {path.name}: {path.stat().st_size / 1024:.0f} KiB")

        # 2. reload and verify statistics --------------------------------
        streams = [traces.load(p) for p in paths]
        rows = []
        for name, stream in zip(names, streams):
            stats = analyze(stream)
            rows.append([
                name,
                f"{msr.TABLE_II[name].write_ratio:.0%}",
                f"{stats.write_ratio:.1%}",
                f"{stats.rate_rps:,.0f}",
                f"{stats.mean_request_pages:.2f}",
                f"{stats.sequential_fraction:.0%}",
                f"{stats.arrival_cv:.2f}",
            ])
        print("\n" + format_table(
            ["trace", "Table II wr", "measured wr", "req/s", "pages/req",
             "sequential", "arrival CV"],
            rows,
            title="Reloaded trace statistics vs Table II",
        ))

    # 3. merge and simulate ----------------------------------------------
    mixed = mix(streams, specs, limit=4000, name="from-files")
    sim = SSDSimulator(config, {w: list(range(config.channels)) for w in range(4)})
    result = sim.run(list(mixed.requests))
    print(f"\nsimulation: {result.summary()}")

    tenant_rows = []
    tenant_stats = per_workload(mixed.requests)
    for wid, (reads, writes) in sorted(result.per_workload.items()):
        tenant_rows.append([
            names[wid],
            tenant_stats[wid].requests,
            f"{reads.mean_us:.0f}" if reads.count else "-",
            f"{writes.mean_us:.0f}" if writes.count else "-",
        ])
    print("\n" + format_table(
        ["tenant", "requests", "mean read (us)", "mean write (us)"],
        tenant_rows,
        title="Per-tenant latency under the Shared allocation",
    ))

    report = sim.utilization_report()
    busiest_channel = max(range(len(report["channels"])),
                          key=lambda c: report["channels"][c])
    print(f"\nbusiest channel: ch{busiest_channel} "
          f"({report['channels'][busiest_channel]:.0%} busy); "
          f"mean die utilisation "
          f"{sum(report['dies']) / len(report['dies']):.0%}")


if __name__ == "__main__":
    main()
