#!/usr/bin/env python3
"""Full SSDKeeper lifecycle: train offline, deploy, adapt online.

The datacenter scenario from the paper's introduction: four tenants with
different access patterns land on one SSD.  This example runs the whole
SSDKeeper pipeline —

1. **Algorithm 1**: generate synthetic mixed workloads, label each with the
   channel allocation that minimises total latency (sweeping all 42
   strategies per workload), and train the 9-64-42 network;
2. **deployment**: serialise the model (the parameter blob the paper sends
   to the FTL) and reload it;
3. **Algorithm 2**: run a four-tenant MSR-style mix against the device —
   the keeper collects features for the observation window, asks the model,
   and switches the live FTL to the chosen allocation + hybrid page modes;
4. compare against the Shared and Isolated baselines.

Run:  python examples/multi_tenant_datacenter.py          (a few minutes)
      REPRO_QUICK=1 python examples/multi_tenant_datacenter.py   (smaller)
"""

import os
from pathlib import Path
import tempfile
import time

from repro.core import (
    ChannelAllocator,
    LabelerConfig,
    PagePolicy,
    SSDKeeper,
    StrategyLearner,
    StrategySpace,
    generate_dataset,
)
from repro.harness import format_table
from repro.workloads import mixer, msr, synthetic


def main() -> None:
    quick = bool(os.environ.get("REPRO_QUICK"))
    n_samples = 60 if quick else 400
    cfg = LabelerConfig()
    space = StrategySpace(cfg.ssd.channels, cfg.n_tenants)
    print(f"device: {cfg.ssd.describe()}")
    print(f"strategy space: {space.describe()}\n")

    # --- Algorithm 1: label + train -----------------------------------
    t0 = time.perf_counter()
    print(f"labelling {n_samples} synthetic mixed workloads "
          f"({len(space)} strategy sweeps each)...")
    dataset = generate_dataset(n_samples, cfg, seed=1)
    learner = StrategyLearner(space, activation="logistic", seed=0)
    history = learner.train(dataset, optimizer="adam",
                            iterations=60 if quick else 200, seed=0)
    print(f"trained in {time.perf_counter() - t0:.0f}s: "
          f"loss {history.final_loss:.3f}, "
          f"held-out accuracy {history.final_accuracy:.1%}")

    # --- ship the parameters to the "FTL" ------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        blob = Path(tmp) / "ftl_parameters.json"
        learner.save(blob)
        deployed = StrategyLearner.load(blob)
        print(f"parameter blob: {blob.stat().st_size / 1024:.1f} KiB "
              f"(paper's estimate for the net itself: "
              f"{deployed.network.storage_bytes()} B)\n")

    allocator = ChannelAllocator(deployed)

    # --- Algorithm 2: adapt online on an MSR-style mix -----------------
    names = ["prxy_0", "src_1", "rsrch_0", "mds_1"]  # the paper's Mix2
    specs = [msr.spec(n, rate_scale=530.0, footprint_pages=cfg.footprint_pages)
             for n in names]
    total_rate = sum(s.rate_rps for s in specs)
    # Keep the trace several collection windows long so the Algorithm-2
    # switch actually governs most of the run.
    n_requests = 4_000 if quick else 10_000
    streams = [
        synthetic.generate(
            s, max(1, int(n_requests * s.rate_rps / total_rate * 1.2)),
            workload_id=i, seed=10 + i,
        )
        for i, s in enumerate(specs)
    ]
    mixed = mixer.mix(streams, specs, limit=n_requests, name="Mix2")
    print(f"online mix: {', '.join(names)} "
          f"({len(mixed.requests)} requests, {mixed.write_fraction():.0%} writes)")

    keeper = SSDKeeper(
        allocator,
        cfg.ssd,
        collect_window_us=cfg.window_s * 1e6,
        intensity_quantum=cfg.intensity_quantum,
        page_policy=PagePolicy.HYBRID,
    )
    run = keeper.run(list(mixed.requests))
    print(f"observed features: {run.features}")
    print(f"chosen allocation: {run.strategy} "
          f"(switched at t={run.switched_at_us / 1e3:.1f} ms)\n")

    # --- baselines ------------------------------------------------------
    rows = [["SSDKeeper+hybrid", run.strategy.label if run.strategy else "Shared",
             f"{run.result.mean_write_us:.0f}", f"{run.result.mean_read_us:.0f}",
             f"{run.result.total_latency_us / 1e6:.3f}"]]
    for label, strategy in (("Shared", space.shared), ("Isolated", space.isolated)):
        result = keeper.baseline_run(list(mixed.requests), strategy, run.features)
        rows.append([label, strategy.label, f"{result.mean_write_us:.0f}",
                     f"{result.mean_read_us:.0f}",
                     f"{result.total_latency_us / 1e6:.3f}"])
    print(format_table(
        ["policy", "allocation", "write us", "read us", "total (s)"],
        rows,
        title="Four tenants on one SSD",
    ))
    shared_total = float(rows[1][4])
    keeper_total = float(rows[0][4])
    print(f"\nSSDKeeper vs Shared: {1 - keeper_total / shared_total:+.1%}")


if __name__ == "__main__":
    main()
