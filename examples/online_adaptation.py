#!/usr/bin/env python3
"""Algorithm 2 under a workload phase change.

Shows *why* channel allocation must be self-adapting: the tenant mix flips
mid-trace from read-dominated to write-dominated.  Any single fixed
allocation is wrong for one of the two phases; SSDKeeper re-collects
features each window and re-allocates.

The example runs two observation/adaptation cycles by replaying Algorithm 2
on each phase, then compares against the strategies a static operator might
have locked in.

Run:  python examples/online_adaptation.py
      REPRO_QUICK=1 python examples/online_adaptation.py   (smaller)
"""

import os

from repro.core import (
    ChannelAllocator,
    LabelerConfig,
    PagePolicy,
    SSDKeeper,
    StrategyLearner,
    StrategySpace,
    generate_dataset,
)
from repro.harness import format_table
from repro.workloads import WorkloadSpec, synthesize_mix


def make_phase(write_heavy: bool, cfg, total, seed, start_us=0.0):
    """Four tenants; the dominant traffic flips with the phase."""
    specs = []
    for i in range(4):
        if write_heavy:
            ratio = 1.0 if i < 3 else 0.0
            rate = 13_000 if i < 3 else 3_000
        else:
            ratio = 1.0 if i == 0 else 0.0
            rate = 3_000 if i == 0 else 13_000
        specs.append(WorkloadSpec(
            name=f"tenant{i}", write_ratio=ratio, rate_rps=rate,
            footprint_pages=cfg.footprint_pages,
        ))
    mixed = synthesize_mix(specs, total_requests=total, seed=seed)
    for r in mixed.requests:
        r.arrival_us += start_us
    return mixed


def main() -> None:
    quick = bool(os.environ.get("REPRO_QUICK"))
    cfg = LabelerConfig()
    space = StrategySpace(cfg.ssd.channels, cfg.n_tenants)

    # Borrow the bench-quality model when the harness cache has one;
    # otherwise train a small model on the spot.
    from repro.harness import Scale, cached_learner_or_none

    learner = cached_learner_or_none(Scale.default())
    if learner is not None:
        print("using the cached bench-quality strategy learner\n")
    else:
        n_samples = 50 if quick else 250
        print(f"training the strategy learner (Algorithm 1, {n_samples} mixes)...")
        dataset = generate_dataset(n_samples, cfg, seed=3)
        learner = StrategyLearner(space, activation="logistic", seed=0)
        history = learner.train(
            dataset, optimizer="adam", iterations=60 if quick else 150, seed=0
        )
        print(f"held-out accuracy: {history.final_accuracy:.1%}\n")

    # Each phase must span several 50 ms collection windows at the phases'
    # ~42k req/s merged rate, or the adaptive switch has nothing to govern.
    per_phase = 4000 if quick else 6000
    phase_a = make_phase(write_heavy=False, cfg=cfg, total=per_phase, seed=1)
    phase_b = make_phase(write_heavy=True, cfg=cfg, total=per_phase, seed=2)

    def adaptive(phase):
        keeper = SSDKeeper(
            ChannelAllocator(learner), cfg.ssd,
            collect_window_us=cfg.window_s * 1e6,
            intensity_quantum=cfg.intensity_quantum,
            page_policy=PagePolicy.HYBRID,
        )
        return keeper.run(list(phase.requests))

    run_a = adaptive(phase_a)
    run_b = adaptive(phase_b)
    print(f"phase A (read-heavy):  features {run_a.features} -> {run_a.strategy}")
    print(f"phase B (write-heavy): features {run_b.features} -> {run_b.strategy}\n")

    # What a static operator would have suffered: lock phase A's choice in
    # for phase B, and vice versa.
    keeper = SSDKeeper(
        ChannelAllocator(learner), cfg.ssd,
        collect_window_us=cfg.window_s * 1e6,
        intensity_quantum=cfg.intensity_quantum,
    )
    rows = []
    for phase_name, phase, own, other in (
        ("A (read-heavy)", phase_a, run_a, run_b),
        ("B (write-heavy)", phase_b, run_b, run_a),
    ):
        adaptive_total = own.result.total_latency_us / 1e6
        stale = keeper.baseline_run(
            list(phase.requests), other.strategy or space.shared, own.features
        ).total_latency_us / 1e6
        shared = keeper.baseline_run(
            list(phase.requests), space.shared, own.features
        ).total_latency_us / 1e6
        rows.append([
            phase_name,
            own.strategy.label if own.strategy else "Shared",
            f"{adaptive_total:.3f}",
            f"{stale:.3f}",
            f"{shared:.3f}",
        ])
    print(format_table(
        ["phase", "adapted to", "adaptive (s)", "stale choice (s)", "Shared (s)"],
        rows,
        title="Adapting vs locking in yesterday's allocation",
    ))

    stale_penalties = [float(r[3]) / float(r[2]) for r in rows]
    print(f"\nlocking in the wrong phase's allocation costs up to "
          f"{max(stale_penalties):.2f}x")

    # --- extension: periodic re-adaptation over the concatenated trace ---
    # The paper's Algorithm 2 decides once; run_periodic re-collects and
    # re-decides every window, following the phase change automatically.
    offset = phase_a.requests[-1].arrival_us + 1_000.0
    for r in phase_b.requests:
        r.arrival_us += offset
    combined = phase_a.requests + phase_b.requests
    periodic_keeper = SSDKeeper(
        ChannelAllocator(learner), cfg.ssd,
        collect_window_us=cfg.window_s * 1e6,
        intensity_quantum=cfg.intensity_quantum,
        page_policy=PagePolicy.HYBRID,
    )
    periodic = periodic_keeper.run_periodic(combined)
    print(f"\nperiodic adaptation: {periodic.switches} window decisions, "
          f"strategies used: {', '.join(periodic.distinct_strategies())}")
    print(f"periodic total latency: {periodic.result.total_latency_us / 1e6:.3f}s")


if __name__ == "__main__":
    main()
