#!/usr/bin/env python3
"""Static vs dynamic page allocation (the Section IV-E mechanism).

Demonstrates, on the raw simulator, the two effects the hybrid page
allocator exploits:

* **sequential reads** want *static* placement — consecutive logical pages
  striped across channels are read back in parallel;
* **bursty writes** want *dynamic* placement — the write goes to whichever
  die is idle instead of queueing behind a busy one.

The example measures both workloads under both modes and prints the 2x2
matrix, then shows the hybrid policy picking the right mode per tenant.

Run:  python examples/page_allocation_study.py
"""

from repro.core import PagePolicy, page_modes_for
from repro.harness import format_table
from repro.ssd import IORequest, OpType, PageAllocMode, SSDConfig, simulate
from repro.workloads import WorkloadSpec, generate, mix


def write_then_read(config, file_pages=512):
    """Write a file sequentially under background pressure, then read it back.

    Static placement stripes the file pages by logical address, so the
    4-page read-back always spans four channels.  Dynamic placement scatters
    the file pages to whatever was idle during the (bursty) write phase, so
    read-back requests can collide on one channel.
    """
    reqs = []
    t = 0.0
    hot_base = 100_000
    for i in range(file_pages):
        reqs.append(IORequest(arrival_us=t, workload_id=0, op=OpType.WRITE,
                              lpn=i, length=1))
        # Interleaved hot writes skew the instantaneous load the dynamic
        # placer reacts to.
        for k in range(3):
            reqs.append(IORequest(arrival_us=t + 2.0 + k, workload_id=0,
                                  op=OpType.WRITE, lpn=hot_base + (i * 3 + k) % 64,
                                  length=1))
        t += 90.0
    # Drain, then sequential 4-page read-back of the file.
    t += 50_000.0
    for i in range(0, file_pages, 4):
        reqs.append(IORequest(arrival_us=t, workload_id=0, op=OpType.READ,
                              lpn=i, length=4))
        t += 65.0
    return reqs


def bursty_writer(config, count=600):
    """Small writes arriving in bursts aimed at a narrow address range."""
    spec = WorkloadSpec(name="w", write_ratio=1.0, rate_rps=25_000,
                        footprint_pages=2_048, sequential_fraction=0.0,
                        skew=2.0, burstiness=3.0)
    return generate(spec, count, workload_id=0, seed=5)


def run(config, reqs, mode):
    sets = {0: list(range(config.channels))}
    return simulate(list(reqs), config, sets, {0: mode})


def main() -> None:
    config = SSDConfig.small()
    print(config.describe(), "\n")

    rows = []
    # Read-back after a pressured write phase: compare mean READ latency.
    trace = write_then_read(config)
    static = run(config, trace, PageAllocMode.STATIC)
    dynamic = run(config, trace, PageAllocMode.DYNAMIC)
    winner = "static" if static.read.mean_us < dynamic.read.mean_us else "dynamic"
    rows.append(["sequential read-back", f"{static.read.mean_us:.0f}",
                 f"{dynamic.read.mean_us:.0f}", winner])
    # Bursty writes: compare mean WRITE latency.
    trace = bursty_writer(config)
    static = run(config, trace, PageAllocMode.STATIC)
    dynamic = run(config, trace, PageAllocMode.DYNAMIC)
    winner = "static" if static.write.mean_us < dynamic.write.mean_us else "dynamic"
    rows.append(["bursty writes", f"{static.write.mean_us:.0f}",
                 f"{dynamic.write.mean_us:.0f}", winner])
    print(format_table(
        ["workload", "static mode (us)", "dynamic mode (us)", "winner"],
        rows,
        title="Page-allocation mode vs workload type (mean op latency)",
    ))

    # The hybrid policy automates the choice from the R/W characteristics.
    characteristics = (1, 0)  # tenant 0 read-dominated, tenant 1 write-dominated
    modes = page_modes_for(PagePolicy.HYBRID, characteristics)
    print("\nhybrid page allocator assignment:")
    for wid, mode in modes.items():
        kind = "read-dominated" if characteristics[wid] else "write-dominated"
        print(f"  tenant {wid} ({kind}) -> {mode.value}")

    # End to end: the two tenants together, hybrid vs uniform modes.
    reader = WorkloadSpec(name="r", write_ratio=0.0, rate_rps=10_000,
                          footprint_pages=16_384, sequential_fraction=0.8,
                          mean_request_pages=4.0)
    writer = WorkloadSpec(name="w", write_ratio=1.0, rate_rps=12_000,
                          footprint_pages=2_048, sequential_fraction=0.0, skew=2.0)
    mixed = mix(
        [generate(reader, 800, workload_id=0, seed=1),
         generate(writer, 900, workload_id=1, seed=2)],
        [reader, writer],
    )
    sets = {0: [0, 1, 2, 3], 1: [4, 5, 6, 7]}
    results = {}
    for policy in (PagePolicy.ALL_STATIC, PagePolicy.ALL_DYNAMIC, PagePolicy.HYBRID):
        modes = page_modes_for(policy, characteristics)
        results[policy.value] = simulate(list(mixed.requests), config, sets, modes)
    print("\n" + format_table(
        ["page policy", "mean read (us)", "mean write (us)", "total (s)"],
        [[name, f"{r.mean_read_us:.0f}", f"{r.mean_write_us:.0f}",
          f"{r.total_latency_us / 1e6:.3f}"] for name, r in results.items()],
        title="Two isolated tenants under uniform vs hybrid page policies",
    ))


if __name__ == "__main__":
    main()
