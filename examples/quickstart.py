#!/usr/bin/env python3
"""Quickstart: simulate a multi-tenant SSD and compare channel allocations.

Builds a Table-I-shaped SSD, runs a two-tenant mixed workload (one write-
heavy tenant, one read-heavy tenant) under the traditional *Shared*
allocation and under an isolating split, and prints the latency breakdown —
the Section-III motivation experiment in ~40 lines.

Run:  python examples/quickstart.py
"""

from repro.core import StrategySpace
from repro.harness import format_table
from repro.ssd import SSDConfig, simulate
from repro.workloads import WorkloadSpec, synthesize_mix


def main() -> None:
    config = SSDConfig.small()  # paper topology, shrunken block count
    print(config.describe())

    # Two tenants: a write-heavy logger and a read-heavy web server.
    tenants = [
        WorkloadSpec(name="logger", write_ratio=0.95, rate_rps=12_000,
                     footprint_pages=32_768),
        WorkloadSpec(name="webserver", write_ratio=0.05, rate_rps=14_000,
                     footprint_pages=32_768),
    ]
    mixed = synthesize_mix(tenants, total_requests=4_000, seed=42)
    print(f"\nmixed workload: {len(mixed.requests)} requests, "
          f"{mixed.write_fraction():.0%} writes, "
          f"{mixed.duration_us() / 1e3:.0f} ms of arrivals\n")

    # Sweep every two-tenant strategy (Shared, Isolated, 7:1 ... 1:7).
    space = StrategySpace(config.channels, n_tenants=2)
    write_dominated = [s.is_write_dominated for s in tenants]
    rows = []
    for strategy in space:
        channel_sets = strategy.channel_sets(config.channels, write_dominated)
        result = simulate(list(mixed.requests), config, channel_sets)
        rows.append([
            strategy.label,
            f"{result.mean_write_us:.0f}",
            f"{result.mean_read_us:.0f}",
            f"{result.total_latency_us / 1e6:.3f}",
            f"{result.gc_collections}",
        ])
    print(format_table(
        ["allocation", "mean write (us)", "mean read (us)", "total (s)", "GC"],
        rows,
        title="Two tenants, one SSD: every channel allocation strategy",
    ))

    totals = {row[0]: float(row[3]) for row in rows}
    best = min(totals, key=totals.get)
    print(f"\nbest allocation for this mix: {best} "
          f"({totals['Shared'] / totals[best]:.2f}x better than Shared)")


if __name__ == "__main__":
    main()
