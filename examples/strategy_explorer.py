#!/usr/bin/env python3
"""Explore the full 42-strategy space for a custom tenant mix.

Answers the operator question "what would each allocation cost for *my*
tenants?" without training anything: describe the tenants, sweep every
channel-allocation strategy with the fast model, confirm the podium with
the exact event-driven engine, and print the ranking.

Edit ``TENANTS`` below (or use this file as a template) to model your own
datacenter node.

Run:  python examples/strategy_explorer.py
"""

from repro.core import StrategySpace
from repro.core.features import features_of_mix
from repro.core.hybrid import PagePolicy, page_modes_for
from repro.harness import format_table
from repro.ssd import SSDConfig, fast_simulate, simulate
from repro.workloads import WorkloadSpec, clone, synthesize_mix

#: Describe your tenants here.
TENANTS = [
    WorkloadSpec(name="oltp-log", write_ratio=0.95, rate_rps=16_000,
                 mean_request_pages=1.0, sequential_fraction=0.7,
                 footprint_pages=16_384),
    WorkloadSpec(name="analytics", write_ratio=0.02, rate_rps=18_000,
                 mean_request_pages=4.0, sequential_fraction=0.8,
                 footprint_pages=60_000),
    WorkloadSpec(name="kv-cache", write_ratio=0.55, rate_rps=8_000,
                 mean_request_pages=1.0, skew=1.8, footprint_pages=8_192),
    WorkloadSpec(name="backup", write_ratio=1.0, rate_rps=5_000,
                 mean_request_pages=8.0, sequential_fraction=0.95,
                 footprint_pages=60_000),
]


def main() -> None:
    config = SSDConfig.small()
    space = StrategySpace(config.channels, len(TENANTS))
    mixed = synthesize_mix(TENANTS, total_requests=3_000, seed=11)
    features = features_of_mix(mixed, intensity_quantum=150.0)
    print(config.describe())
    print(f"mix features: {features}")
    for spec in TENANTS:
        print(f"  {spec.describe()}")
    print(f"\nsweeping {len(space)} strategies with the fast model...")

    write_dominated = features.write_dominated()
    page_modes = page_modes_for(PagePolicy.HYBRID, features)
    ranking = []
    for strategy in space:
        sets = strategy.channel_sets(config.channels, write_dominated)
        result = fast_simulate(clone(mixed.requests), config, sets, page_modes)
        ranking.append(
            (strategy, result.write.mean_us + result.read.mean_us, result)
        )
    ranking.sort(key=lambda row: row[1])

    rows = []
    for rank, (strategy, cost, result) in enumerate(ranking[:8], start=1):
        rows.append([
            rank,
            strategy.label,
            f"{result.mean_write_us:.0f}",
            f"{result.mean_read_us:.0f}",
            f"{cost:.0f}",
        ])
    worst = ranking[-1]
    rows.append(["...", worst[0].label + "  (worst)",
                 f"{worst[2].mean_write_us:.0f}",
                 f"{worst[2].mean_read_us:.0f}", f"{worst[1]:.0f}"])
    print("\n" + format_table(
        ["rank", "allocation", "write us", "read us", "write+read us"],
        rows,
        title="Fast-model ranking (top 8 of 42)",
    ))

    print("\nconfirming the podium with the exact event-driven engine...")
    rows = []
    for strategy, _, _ in ranking[:3]:
        sets = strategy.channel_sets(config.channels, write_dominated)
        result = simulate(clone(mixed.requests), config, sets, page_modes)
        rows.append([
            strategy.label,
            f"{result.mean_write_us:.0f}",
            f"{result.mean_read_us:.0f}",
            f"{result.mean_write_us + result.mean_read_us:.0f}",
            f"{result.gc_collections}",
        ])
    print(format_table(
        ["allocation", "write us", "read us", "write+read us", "GC"],
        rows,
        title="Event-driven confirmation (top 3)",
    ))
    best = ranking[0][0]
    print(f"\nrecommended allocation for this mix: {best.label}")
    print("per-tenant channel sets:",
          best.channel_sets(config.channels, write_dominated))


if __name__ == "__main__":
    main()
