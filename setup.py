"""Legacy setup shim.

The offline environment ships setuptools 65 without the ``wheel`` package,
which breaks PEP 660 editable installs; this shim lets ``pip install -e .``
fall back to ``setup.py develop``.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
