"""repro — reproduction of *SSDKeeper: Self-Adapting Channel Allocation to
Improve the Performance of SSD Devices* (IPDPS 2020).

Subpackages:

* :mod:`repro.ssd` — multi-channel SSD simulator (SSDSim-style substrate);
* :mod:`repro.workloads` — synthetic workload generators and MSR stand-ins;
* :mod:`repro.nn` — from-scratch MLP with the paper's optimizers;
* :mod:`repro.core` — SSDKeeper itself (features, labeler, learner,
  allocator, hybrid page policy, Algorithm-2 keeper);
* :mod:`repro.harness` — experiment sweeps, caching, and the per-figure
  reproduction entry points.
"""

from . import core, harness, nn, ssd, workloads

__version__ = "1.0.0"

__all__ = ["core", "harness", "nn", "ssd", "workloads", "__version__"]
