"""``python -m repro`` — regenerate paper tables and figures from the CLI."""

import sys

from .harness.cli import main

sys.exit(main())
