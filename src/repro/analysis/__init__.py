"""``repro.analysis`` — domain-specific static lints + runtime sanitizer.

The reproduction's credibility rests on invariants the test suite only
samples: microsecond-unit consistency across the timing layers, seeded
determinism of the DES and fault injector, the opt-in (``obs=None`` /
``faults=None``) hot-path cost contract, and the FTL capacity conservation
law.  This package machine-checks them, twice over:

* **static lints** (:mod:`repro.analysis.engine`,
  :mod:`repro.analysis.rules`) — an AST-walking rule engine with four
  domain rules:

  - **R001 unit hygiene** — a value flowing into a ``*_us`` parameter,
    field, or return must provably be microseconds (a ``*_us``-suffixed
    name, a numeric literal, or unit arithmetic that converts correctly);
    ``*_ms`` / ``*_ns`` / unsuffixed names are flagged.
  - **R002 determinism hygiene** — no module-level RNG
    (``random.random()``, ``np.random.*``), no wall-clock reads
    (``time.time()``), no bare set iteration, and no dict iteration
    feeding event ordering inside ``repro.ssd`` / ``repro.core``.
  - **R003 opt-in purity** — code under ``repro.ssd`` / ``repro.core``
    may not touch ``obs.*`` / ``faults.*`` / ``sanitizer.*`` without a
    ``None``-guard (preserving the disabled-hot-path cost contract).
  - **R004 event-loop discipline** — every ``loop.schedule(when, ...)``
    must pass a ``when`` anchored to an absolute simulated time
    (a ``now`` / ``free_at`` / grant-``start`` term), not a bare duration.

  Violations can be waived per line with a written justification::

      risky_call()  # repro-lint: disable=R002 (seeded upstream by run())

* **runtime sanitizer** (:mod:`repro.analysis.sanitizer`) — an opt-in
  :class:`Sanitizer` threaded like ``obs`` / ``faults`` through the event
  loop, resources, controller, mapping and GC, asserting event-time
  monotonicity, channel/die mutual exclusion, mapping-table bijectivity
  and capacity conservation on every step; violations raise
  :class:`SanitizerError` with a trace-correlated report.

Run the lints with ``python -m repro.analysis [paths]`` or
``python -m repro lint``.
"""

from __future__ import annotations

from .engine import LintEngine, ModuleSource, Report, Violation, lint_paths
from .rules import RULE_CODES, Rule, default_rules
from .sanitizer import Sanitizer, SanitizerError

__all__ = [
    "LintEngine",
    "ModuleSource",
    "Report",
    "Violation",
    "Rule",
    "RULE_CODES",
    "default_rules",
    "lint_paths",
    "Sanitizer",
    "SanitizerError",
]
