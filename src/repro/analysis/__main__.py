"""``python -m repro.analysis [paths] [--json] [--select R001,R004]``.

Exit status 0 when no *active* (unwaived) violations remain, 1 otherwise,
2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .engine import lint_paths
from .reporting import format_report, report_json

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Run the repro domain lints (R001-R004) over files or trees.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report (schema version 1)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (e.g. R001,R004)",
    )
    parser.add_argument(
        "--show-waived",
        action="store_true",
        help="also print waived violations in text output",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    select = None
    if args.select:
        select = [code for code in args.select.split(",") if code.strip()]
    try:
        report = lint_paths(args.paths, select=select)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(report_json(report))
    else:
        print(format_report(report, show_waived=args.show_waived))
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
