"""``python -m repro.analysis [paths] [--json|--sarif] [--select ...]``.

Exit status 0 when no *active* (unwaived, unbaselined) violations remain,
1 otherwise, 2 on usage errors or a stale suppression baseline.

Diff-aware mode: ``--changed`` lints only files that differ from
``--diff-base`` (default ``HEAD``) plus untracked python files.  The whole
tree is still parsed — the interprocedural rules (R005–R007) need the
full call graph — but only violations landing in changed files are
reported.

Baseline workflow: ``--baseline FILE`` suppresses findings whose
fingerprint is listed in the committed baseline; ``--check-baseline``
additionally fails (exit 2) if the baseline holds entries for findings
that no longer exist, so the file can only shrink.  ``--write-baseline``
regenerates it from the current active findings.
"""

from __future__ import annotations

import argparse
from pathlib import Path
import sys
from typing import Sequence

from .baseline import (
    apply_baseline,
    load_baseline,
    stale_entries,
    write_baseline,
)
from .engine import lint_paths
from .gitdiff import GitError, changed_python_files
from .reporting import format_report, report_json, sarif_report

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Run the repro domain lints (R001-R007, including the "
            "interprocedural seed-provenance, pool-safety, and schema "
            "round-trip rules) over files or trees."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report (schema version 2)",
    )
    parser.add_argument(
        "--sarif",
        action="store_true",
        help="emit the report as SARIF 2.1.0",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (e.g. R001,R005)",
    )
    parser.add_argument(
        "--show-waived",
        action="store_true",
        help="also print waived violations in text output",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "only report violations in files changed vs --diff-base "
            "(plus untracked files); the whole tree is still parsed so "
            "interprocedural rules see the full program"
        ),
    )
    parser.add_argument(
        "--diff-base",
        default="HEAD",
        metavar="REV",
        help="git revision --changed diffs against (default: HEAD)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="suppress findings fingerprinted in this committed baseline",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write current active findings as a new baseline and exit 0",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="with --baseline: exit 2 if the baseline has stale entries",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.json and args.sarif:
        print("error: --json and --sarif are mutually exclusive", file=sys.stderr)
        return 2
    if args.check_baseline and not args.baseline:
        print("error: --check-baseline requires --baseline", file=sys.stderr)
        return 2
    select = None
    if args.select:
        select = [code for code in args.select.split(",") if code.strip()]

    only = None
    if args.changed:
        try:
            only = changed_python_files(base=args.diff_base)
        except GitError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not only:
            print("clean: no python files changed")
            return 0

    try:
        report = lint_paths(args.paths, select=select, only=only)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        count = write_baseline(report, args.write_baseline)
        print(f"wrote {count} entr{'y' if count == 1 else 'ies'} to "
              f"{Path(args.write_baseline).as_posix()}")
        return 0

    stale: list[dict] = []
    if args.baseline:
        try:
            doc = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        stale = stale_entries(report, doc)
        report = apply_baseline(report, doc)

    if args.json:
        print(report_json(report))
    elif args.sarif:
        print(sarif_report(report))
    else:
        print(format_report(report, show_waived=args.show_waived))

    if args.check_baseline and stale:
        for entry in stale:
            print(
                f"stale baseline entry: {entry['rule']} {entry['path']} "
                f"({entry['fingerprint']}) — finding no longer exists; "
                f"delete it from the baseline",
                file=sys.stderr,
            )
        return 2
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
