"""Committed suppression baseline for pre-existing findings.

Turning a new interprocedural rule on over a grown tree usually surfaces
findings that predate the rule.  Fixing them all in the enabling PR is
the goal, but when that is not practical the baseline lets the gate land
*now* without grandfathering future regressions: findings whose
fingerprint appears in the committed baseline file are reported as
``suppressed`` (visible in JSON/SARIF, excluded from the exit code), and
**stale entries fail the run** — the moment a baselined finding is fixed,
its entry must be deleted, so the baseline only ever shrinks.

Fingerprints are content-addressed (rule + path + source line text +
occurrence index, see :mod:`repro.analysis.engine`), so reflowing code
above a finding does not churn the baseline.
"""

from __future__ import annotations

from dataclasses import replace
import json
from pathlib import Path

from .engine import Report, Violation

__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "stale_entries",
]

BASELINE_SCHEMA_VERSION = 1

_BASELINE_FIELDS = frozenset({"schema_version", "entries"})
_ENTRY_FIELDS = frozenset({"fingerprint", "rule", "path", "message"})


def load_baseline(path: Path | str) -> dict:
    """Read and validate a baseline document (the round-trip reader)."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema_version") != BASELINE_SCHEMA_VERSION:
        raise ValueError(
            f"baseline has schema_version {doc.get('schema_version')!r}; "
            f"this tool reads version {BASELINE_SCHEMA_VERSION}"
        )
    missing = _BASELINE_FIELDS - set(doc)
    if missing:
        raise ValueError(f"baseline is missing fields: {sorted(missing)}")
    if not isinstance(doc["entries"], list):
        raise ValueError("baseline 'entries' must be a list")
    for entry in doc["entries"]:
        bad = _ENTRY_FIELDS - set(entry)
        if bad:
            raise ValueError(f"baseline entry missing fields: {sorted(bad)}")
    return doc


def write_baseline(report: Report, path: Path | str) -> int:
    """Write the current *active* findings as the new baseline."""
    entries = [
        {
            "fingerprint": v.fingerprint,
            "rule": v.rule,
            "path": Path(v.path).as_posix(),
            "message": v.message,
        }
        for v in report.active
    ]
    entries.sort(key=lambda e: (e["path"], e["rule"], e["fingerprint"]))
    doc = {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "entries": entries,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return len(entries)


def apply_baseline(report: Report, baseline: dict) -> Report:
    """Mark active findings matching baseline fingerprints as suppressed."""
    fingerprints = {entry["fingerprint"] for entry in baseline["entries"]}
    if not fingerprints:
        return report
    violations = [
        replace(v, suppressed=True)
        if not v.waived and v.fingerprint in fingerprints
        else v
        for v in report.violations
    ]
    return Report(violations=violations, files=report.files, rules=report.rules)


def stale_entries(report: Report, baseline: dict) -> list[dict]:
    """Baseline entries whose finding no longer exists (must be deleted)."""
    current = {v.fingerprint for v in report.violations}
    return [
        entry for entry in baseline["entries"]
        if entry["fingerprint"] not in current
    ]
