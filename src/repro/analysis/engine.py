"""Lint engine: discovery, parse cache, waivers, rule dispatch, fingerprints.

The engine parses each file once (with an mtime-keyed cache shared across
*processes*, so ``repro lint`` followed by ``python -m repro.analysis`` in
the same CI job re-parses nothing), extracts per-line waivers from
comments, derives the dotted module name (so rules can scope themselves to
``repro.ssd`` / ``repro.core``), and dispatches two rule families:

* **per-file rules** (R001–R004) see one :class:`ModuleSource` at a time;
* **program rules** (R005–R007) see a :class:`~repro.analysis.program.Program`
  built once over *all* discovered modules — symbol table, call graph,
  interprocedural edges.

Violations on a line carrying a matching waiver comment are kept in the
report (so ``--json`` consumers can audit them) but marked ``waived`` and
excluded from the exit-code decision.  Every violation also carries a
stable content-addressed ``fingerprint`` (rule + path + source line text +
occurrence index — deliberately *not* the line number, so unrelated edits
above a finding don't churn it), the key the suppression baseline
(:mod:`repro.analysis.baseline`) matches on.

Waiver grammar (one comment per line, reason mandatory)::

    expr  # repro-lint: disable=R001 (trace column 0 is microseconds)
    expr  # repro-lint: disable=R001,R004 (absolute trace timestamps)

The reason runs to the *last* closing paren on the line, so justifications
may themselves contain parentheses: ``(1/rps is seconds (SI), so ...)``.
A waiver without a parenthesised justification does **not** silence the
violation — the point of the waiver is the written reason.

Fixture files outside the package tree can pin the module name rules see
with a header comment: ``# repro-lint: module=repro.ssd.fixture``.

Report output is deterministic: discovery sorts by posix-style path,
violations sort by (path, line, col, rule), and the JSON document contains
nothing run-dependent — two invocations over the same tree are
byte-identical.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
import hashlib
import os
from pathlib import Path
import pickle
import re
import sys
from typing import Iterable, Sequence

__all__ = [
    "REPORT_SCHEMA_VERSION",
    "Violation",
    "Waiver",
    "ModuleSource",
    "Report",
    "LintEngine",
    "lint_paths",
    "load_report_dict",
]

#: version stamped into :meth:`Report.to_dict` (v1 was the pre-interprocedural
#: per-file report; v2 adds fingerprints, suppression and tool metadata)
REPORT_SCHEMA_VERSION = 2

#: JSON report keys every consumer may rely on (see :func:`load_report_dict`)
_REPORT_FIELDS = frozenset({
    "schema_version", "tool", "files", "ok", "counts", "suppressed",
    "violations",
})

# The reason capture runs greedily to the LAST ')' on the line: a reason
# like "(1/rps is seconds (SI), so the product is unitless)" must survive
# intact — the old [^)]* grammar truncated it at the first ')', silently
# invalidating the waiver.
_WAIVER_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<codes>[A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)"
    r"(?:\s*\((?P<reason>.*)\))?"
)
_MODULE_RE = re.compile(r"#\s*repro-lint:\s*module=(?P<module>[\w.]+)")


@dataclass(frozen=True)
class Violation:
    """One finding: rule code, location, message, and stable fingerprint."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    waived: bool = False
    waiver_reason: str | None = None
    suppressed: bool = False
    fingerprint: str = ""

    def format(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.waived:
            text += f"  [waived: {self.waiver_reason}]"
        if self.suppressed:
            text += "  [baseline]"
        return text

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "waived": self.waived,
            "waiver_reason": self.waiver_reason,
            "suppressed": self.suppressed,
            "fingerprint": self.fingerprint,
        }


@dataclass(frozen=True)
class Waiver:
    """Parsed ``repro-lint: disable=`` comment on one line."""

    codes: frozenset[str]
    reason: str | None

    @property
    def justified(self) -> bool:
        return bool(self.reason and self.reason.strip())


@dataclass
class ModuleSource:
    """One parsed file, ready for rules."""

    path: Path
    module: str
    text: str
    tree: ast.Module
    waivers: dict[int, Waiver] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, *, root_package: str = "repro") -> "ModuleSource":
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        return cls(
            path=path,
            module=_derive_module(path, text, root_package),
            text=text,
            tree=tree,
            waivers=_parse_waivers(text),
        )

    @classmethod
    def load(cls, path: Path, *, root_package: str = "repro") -> "ModuleSource":
        """Like :meth:`parse`, through the mtime-keyed parse cache."""
        return _cached_parse(path, root_package=root_package)

    def in_package(self, *prefixes: str) -> bool:
        """True when this module lives under any of the dotted prefixes."""
        return any(
            self.module == p or self.module.startswith(p + ".") for p in prefixes
        )

    def line_text(self, lineno: int) -> str:
        lines = self.text.splitlines()
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1].strip()
        return ""


# ----------------------------------------------------------------------
# Parse cache: in-memory for one process, pickled ASTs on disk so the
# second tool invocation in the same CI job skips parsing entirely.
# Entries are keyed by resolved path and validated by (mtime_ns, size);
# any cache failure falls back to a plain parse.
# ----------------------------------------------------------------------
_CACHE_FORMAT = 1
_MEM_CACHE: dict[str, tuple[int, int, ModuleSource]] = {}


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_LINT_CACHE_DIR")
    if env:
        return Path(env)
    return Path(".repro-cache") / "lint-ast"


def _cached_parse(path: Path, *, root_package: str) -> ModuleSource:
    resolved = str(path.resolve())
    try:
        stat = path.stat()
        stamp = (stat.st_mtime_ns, stat.st_size)
    except OSError:
        return ModuleSource.parse(path, root_package=root_package)
    entry = _MEM_CACHE.get(resolved)
    if entry is not None and entry[:2] == stamp:
        return replace_path(entry[2], path)
    disk_key = hashlib.sha256(
        f"{_CACHE_FORMAT}|{sys.version_info[:2]}|{root_package}|{resolved}".encode()
    ).hexdigest()[:24]
    disk_path = _cache_dir() / f"{disk_key}.pkl"
    try:
        with open(disk_path, "rb") as fh:
            mtime_ns, size, module = pickle.load(fh)
        if (mtime_ns, size) == stamp:
            _MEM_CACHE[resolved] = (mtime_ns, size, module)
            return replace_path(module, path)
    except Exception:
        pass  # missing/corrupt/stale cache entry: re-parse below
    module = ModuleSource.parse(path, root_package=root_package)
    _MEM_CACHE[resolved] = (*stamp, module)
    try:
        disk_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = disk_path.with_suffix(".tmp")
        with open(tmp, "wb") as fh:
            pickle.dump((*stamp, module), fh)
        os.replace(tmp, disk_path)
    except Exception:
        pass  # cache is best-effort; the parse already succeeded
    return module


def replace_path(module: ModuleSource, path: Path) -> ModuleSource:
    """Re-anchor a cached module at the path string used *this* run."""
    if module.path == path:
        return module
    return ModuleSource(
        path=path,
        module=module.module,
        text=module.text,
        tree=module.tree,
        waivers=module.waivers,
    )


def _derive_module(path: Path, text: str, root_package: str) -> str:
    override = _MODULE_RE.search(text[:2000])
    if override:
        return override.group("module")
    parts = list(path.resolve().with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    try:
        anchor = len(parts) - 1 - parts[::-1].index(root_package)
    except ValueError:
        return path.stem
    return ".".join(parts[anchor:])


def _parse_waivers(text: str) -> dict[int, Waiver]:
    waivers: dict[int, Waiver] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if "repro-lint" not in line:
            continue
        match = _WAIVER_RE.search(line)
        if match is None:
            continue
        codes = frozenset(
            code.strip() for code in match.group("codes").split(",")
        )
        waivers[lineno] = Waiver(codes=codes, reason=match.group("reason"))
    return waivers


@dataclass
class Report:
    """All violations found over one engine run."""

    violations: list[Violation]
    files: int
    #: (code, summary) for every rule that ran, in code order
    rules: list[tuple[str, str]] = field(default_factory=list)

    @property
    def active(self) -> list[Violation]:
        """Violations that fail the run (not waived, not baselined)."""
        return [v for v in self.violations if not v.waived and not v.suppressed]

    @property
    def waived(self) -> list[Violation]:
        return [v for v in self.violations if v.waived]

    @property
    def baselined(self) -> list[Violation]:
        return [v for v in self.violations if v.suppressed]

    @property
    def ok(self) -> bool:
        return not self.active

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for violation in self.active:
            out[violation.rule] = out.get(violation.rule, 0) + 1
        return out

    def to_dict(self) -> dict:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "tool": {
                "name": "repro-analysis",
                "rules": {code: summary for code, summary in self.rules},
            },
            "files": self.files,
            "ok": self.ok,
            "counts": self.counts(),
            "suppressed": len(self.baselined),
            "violations": [v.to_dict() for v in self.violations],
        }


def load_report_dict(doc: dict) -> dict:
    """Validate a machine-readable report (the v2 round-trip reader).

    Raises :class:`ValueError` on a version or shape mismatch; returns the
    document unchanged otherwise.
    """
    if doc.get("schema_version") != REPORT_SCHEMA_VERSION:
        raise ValueError(
            f"report has schema_version {doc.get('schema_version')!r}; "
            f"this tool reads version {REPORT_SCHEMA_VERSION}"
        )
    missing = _REPORT_FIELDS - set(doc)
    if missing:
        raise ValueError(f"report is missing fields: {sorted(missing)}")
    return doc


class LintEngine:
    """Runs per-file and whole-program rules over files or directory trees."""

    def __init__(
        self,
        rules: Sequence | None = None,
        *,
        select: Iterable[str] | None = None,
    ) -> None:
        if rules is None:
            from .rules import default_rules

            rules = default_rules()
        if select is not None:
            wanted = {code.strip().upper() for code in select}
            unknown = wanted - {rule.code for rule in rules}
            if unknown:
                raise ValueError(f"unknown rule codes: {sorted(unknown)}")
            rules = [rule for rule in rules if rule.code in wanted]
        self.rules = list(rules)

    def _split_rules(self):
        from .rules import ProgramRule

        file_rules = [r for r in self.rules if not isinstance(r, ProgramRule)]
        program_rules = [r for r in self.rules if isinstance(r, ProgramRule)]
        return file_rules, program_rules

    # ------------------------------------------------------------------
    def lint_file(self, path: Path | str) -> list[Violation]:
        module = ModuleSource.load(Path(path))
        file_rules, program_rules = self._split_rules()
        violations = self._file_violations(module, file_rules)
        if program_rules:
            violations.extend(
                self._program_violations([module], program_rules)
            )
        violations.sort(key=lambda v: (v.line, v.col, v.rule, v.message))
        return _fingerprint({str(module.path): module}, violations)

    def lint_module(self, module: ModuleSource) -> list[Violation]:
        violations = self._file_violations(module, self._split_rules()[0])
        violations.sort(key=lambda v: (v.line, v.col, v.rule, v.message))
        return violations

    def lint_paths(
        self,
        paths: Iterable[Path | str],
        *,
        only: Iterable[Path | str] | None = None,
    ) -> Report:
        """Lint ``paths``; with ``only``, report just those files.

        ``only`` is the diff-aware mode: the *whole* tree is still parsed
        and the program rules still see every module (interprocedural
        findings need the full call graph), but violations outside the
        ``only`` set are dropped from the report.
        """
        files = _dedupe_sorted(_discover(paths))
        modules = [ModuleSource.load(path) for path in files]
        by_path = {str(m.path): m for m in modules}
        file_rules, program_rules = self._split_rules()
        violations: list[Violation] = []
        for module in modules:
            violations.extend(self._file_violations(module, file_rules))
        if program_rules:
            violations.extend(self._program_violations(modules, program_rules))
        if only is not None:
            keep = {str(Path(p).resolve()) for p in only}
            violations = [
                v for v in violations if str(Path(v.path).resolve()) in keep
            ]
        violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule, v.message))
        violations = _fingerprint(by_path, violations)
        return Report(
            violations=violations,
            files=len(files),
            rules=[(r.code, r.summary) for r in self.rules],
        )

    # ------------------------------------------------------------------
    def _file_violations(self, module: ModuleSource, rules) -> list[Violation]:
        violations: list[Violation] = []
        for rule in rules:
            if rule.applies_to and not module.in_package(*rule.applies_to):
                continue
            for violation in rule.check(module):
                violations.append(self._apply_waiver(module, violation))
        return violations

    def _program_violations(self, modules, rules) -> list[Violation]:
        from .program import Program

        program = Program.build(modules)
        by_path = {str(m.path): m for m in modules}
        violations: list[Violation] = []
        for rule in rules:
            for violation in rule.check_program(program):
                module = by_path.get(violation.path)
                if module is None:
                    violations.append(violation)
                    continue
                if rule.applies_to and not module.in_package(*rule.applies_to):
                    continue
                violations.append(self._apply_waiver(module, violation))
        return violations

    # ------------------------------------------------------------------
    @staticmethod
    def _apply_waiver(module: ModuleSource, violation: Violation) -> Violation:
        waiver = module.waivers.get(violation.line)
        if waiver is None or violation.rule not in waiver.codes:
            return violation
        if not waiver.justified:
            return replace(
                violation,
                message=violation.message
                + " [waiver rejected: missing (justification)]",
            )
        return replace(
            violation,
            waived=True,
            waiver_reason=waiver.reason.strip(),
        )


def _fingerprint(
    by_path: dict[str, ModuleSource], violations: list[Violation]
) -> list[Violation]:
    """Attach content-addressed fingerprints (stable under line drift)."""
    occurrence: dict[tuple[str, str, str], int] = {}
    out: list[Violation] = []
    for violation in violations:
        module = by_path.get(violation.path)
        line_text = module.line_text(violation.line) if module else ""
        key = (violation.rule, violation.path, line_text)
        index = occurrence.get(key, 0)
        occurrence[key] = index + 1
        digest = hashlib.sha256(
            f"{violation.rule}|{_posix(violation.path)}|{line_text}|{index}".encode()
        ).hexdigest()[:16]
        out.append(replace(violation, fingerprint=digest))
    return out


def _posix(path: str) -> str:
    return Path(path).as_posix()


def _dedupe_sorted(paths: Iterable[Path]) -> list[Path]:
    """Platform-independent ordering: posix path string, duplicates dropped."""
    seen: set[str] = set()
    unique: list[Path] = []
    for path in paths:
        key = str(path.resolve())
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return sorted(unique, key=lambda p: p.as_posix())


def _discover(paths: Iterable[Path | str]) -> Iterable[Path]:
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            for child in path.rglob("*.py"):
                if "__pycache__" not in child.parts:
                    yield child
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")


def lint_paths(
    paths: Iterable[Path | str],
    *,
    select: Iterable[str] | None = None,
    only: Iterable[Path | str] | None = None,
) -> Report:
    """One-shot convenience wrapper: lint ``paths`` with the default rules."""
    return LintEngine(select=select).lint_paths(paths, only=only)
