"""AST-walking lint engine: file discovery, waiver parsing, rule dispatch.

The engine is deliberately small: it parses each file once, extracts
per-line waivers from comments, derives the dotted module name (so rules
can scope themselves to ``repro.ssd`` / ``repro.core``), and hands the
:class:`ModuleSource` to every selected rule.  Violations on a line
carrying a matching waiver comment are kept in the report (so ``--json``
consumers can audit them) but marked ``waived`` and excluded from the
exit-code decision.

Waiver grammar (one comment per line, reason mandatory)::

    expr  # repro-lint: disable=R001 (trace column 0 is microseconds)
    expr  # repro-lint: disable=R001,R004 (absolute trace timestamps)

A waiver without a parenthesised justification does **not** silence the
violation — the point of the waiver is the written reason.

Fixture files outside the package tree can pin the module name rules see
with a header comment: ``# repro-lint: module=repro.ssd.fixture``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
import re
from typing import Iterable, Sequence

__all__ = ["Violation", "Waiver", "ModuleSource", "Report", "LintEngine", "lint_paths"]

_WAIVER_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<codes>[A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)"
    r"(?:\s*\((?P<reason>[^)]*)\))?"
)
_MODULE_RE = re.compile(r"#\s*repro-lint:\s*module=(?P<module>[\w.]+)")


@dataclass(frozen=True)
class Violation:
    """One finding: rule code, location, and message."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    waived: bool = False
    waiver_reason: str | None = None

    def format(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.waived:
            text += f"  [waived: {self.waiver_reason}]"
        return text

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "waived": self.waived,
            "waiver_reason": self.waiver_reason,
        }


@dataclass(frozen=True)
class Waiver:
    """Parsed ``repro-lint: disable=`` comment on one line."""

    codes: frozenset[str]
    reason: str | None

    @property
    def justified(self) -> bool:
        return bool(self.reason and self.reason.strip())


@dataclass
class ModuleSource:
    """One parsed file, ready for rules."""

    path: Path
    module: str
    text: str
    tree: ast.Module
    waivers: dict[int, Waiver] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, *, root_package: str = "repro") -> "ModuleSource":
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        return cls(
            path=path,
            module=_derive_module(path, text, root_package),
            text=text,
            tree=tree,
            waivers=_parse_waivers(text),
        )

    def in_package(self, *prefixes: str) -> bool:
        """True when this module lives under any of the dotted prefixes."""
        return any(
            self.module == p or self.module.startswith(p + ".") for p in prefixes
        )


def _derive_module(path: Path, text: str, root_package: str) -> str:
    override = _MODULE_RE.search(text[:2000])
    if override:
        return override.group("module")
    parts = list(path.resolve().with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    try:
        anchor = len(parts) - 1 - parts[::-1].index(root_package)
    except ValueError:
        return path.stem
    return ".".join(parts[anchor:])


def _parse_waivers(text: str) -> dict[int, Waiver]:
    waivers: dict[int, Waiver] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if "repro-lint" not in line:
            continue
        match = _WAIVER_RE.search(line)
        if match is None:
            continue
        codes = frozenset(
            code.strip() for code in match.group("codes").split(",")
        )
        waivers[lineno] = Waiver(codes=codes, reason=match.group("reason"))
    return waivers


@dataclass
class Report:
    """All violations found over one engine run."""

    violations: list[Violation]
    files: int

    @property
    def active(self) -> list[Violation]:
        """Violations that fail the run (not waived)."""
        return [v for v in self.violations if not v.waived]

    @property
    def waived(self) -> list[Violation]:
        return [v for v in self.violations if v.waived]

    @property
    def ok(self) -> bool:
        return not self.active

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for violation in self.active:
            out[violation.rule] = out.get(violation.rule, 0) + 1
        return out

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "files": self.files,
            "ok": self.ok,
            "counts": self.counts(),
            "violations": [v.to_dict() for v in self.violations],
        }


class LintEngine:
    """Runs a set of rules over files or directory trees."""

    def __init__(
        self,
        rules: Sequence | None = None,
        *,
        select: Iterable[str] | None = None,
    ) -> None:
        if rules is None:
            from .rules import default_rules

            rules = default_rules()
        if select is not None:
            wanted = {code.strip().upper() for code in select}
            unknown = wanted - {rule.code for rule in rules}
            if unknown:
                raise ValueError(f"unknown rule codes: {sorted(unknown)}")
            rules = [rule for rule in rules if rule.code in wanted]
        self.rules = list(rules)

    # ------------------------------------------------------------------
    def lint_file(self, path: Path | str) -> list[Violation]:
        module = ModuleSource.parse(Path(path))
        return self.lint_module(module)

    def lint_module(self, module: ModuleSource) -> list[Violation]:
        violations: list[Violation] = []
        for rule in self.rules:
            if rule.applies_to and not module.in_package(*rule.applies_to):
                continue
            for violation in rule.check(module):
                violations.append(self._apply_waiver(module, violation))
        violations.sort(key=lambda v: (v.line, v.col, v.rule))
        return violations

    def lint_paths(self, paths: Iterable[Path | str]) -> Report:
        files = sorted(_discover(paths))
        violations: list[Violation] = []
        for path in files:
            violations.extend(self.lint_file(path))
        return Report(violations=violations, files=len(files))

    # ------------------------------------------------------------------
    @staticmethod
    def _apply_waiver(module: ModuleSource, violation: Violation) -> Violation:
        waiver = module.waivers.get(violation.line)
        if waiver is None or violation.rule not in waiver.codes:
            return violation
        if not waiver.justified:
            return Violation(
                rule=violation.rule,
                path=violation.path,
                line=violation.line,
                col=violation.col,
                message=violation.message
                + " [waiver rejected: missing (justification)]",
            )
        return Violation(
            rule=violation.rule,
            path=violation.path,
            line=violation.line,
            col=violation.col,
            message=violation.message,
            waived=True,
            waiver_reason=waiver.reason.strip(),
        )


def _discover(paths: Iterable[Path | str]) -> Iterable[Path]:
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            for child in path.rglob("*.py"):
                if "__pycache__" not in child.parts:
                    yield child
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")


def lint_paths(
    paths: Iterable[Path | str], *, select: Iterable[str] | None = None
) -> Report:
    """One-shot convenience wrapper: lint ``paths`` with the default rules."""
    return LintEngine(select=select).lint_paths(paths)
