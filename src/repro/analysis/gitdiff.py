"""Changed-file discovery for ``repro lint --changed``.

The diff-aware mode still parses the whole tree (the interprocedural
rules need every module in the program), but only *reports* violations in
files that differ from the base revision — tracked changes against
``--diff-base`` (default ``HEAD``) plus untracked python files.
"""

from __future__ import annotations

from pathlib import Path
import subprocess

__all__ = ["changed_python_files", "GitError"]


class GitError(RuntimeError):
    """git was unavailable or the working directory is not a repository."""


def _git(args: list[str], cwd: Path) -> str:
    try:
        proc = subprocess.run(
            ["git", *args],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise GitError(f"git {' '.join(args)} failed: {exc}") from exc
    if proc.returncode != 0:
        raise GitError(
            f"git {' '.join(args)} failed: {proc.stderr.strip() or proc.returncode}"
        )
    return proc.stdout


def changed_python_files(
    cwd: Path | str = ".", *, base: str = "HEAD"
) -> list[Path]:
    """Python files changed vs ``base``, plus untracked ones, repo-relative.

    Deleted files are excluded (there is nothing left to lint).  Paths are
    returned relative to the repository root, sorted posix-style.
    """
    cwd = Path(cwd)
    root = Path(_git(["rev-parse", "--show-toplevel"], cwd).strip())
    changed = _git(
        ["diff", "--name-only", "--diff-filter=d", base, "--", "*.py"], root
    )
    untracked = _git(
        ["ls-files", "--others", "--exclude-standard", "--", "*.py"], root
    )
    names = {
        line.strip()
        for blob in (changed, untracked)
        for line in blob.splitlines()
        if line.strip()
    }
    paths = [root / name for name in names]
    return sorted(
        (p for p in paths if p.exists()), key=lambda p: p.as_posix()
    )
