"""Whole-program model: package-wide symbol table and call graph.

The per-file rules (R001–R004) see one :class:`~repro.analysis.engine.ModuleSource`
at a time, which is exactly why they cannot answer the questions the
fleet-scale work needs answered: *where did this RNG's seed come from?*
(the construction site and the seed parameter live in different modules),
*does this pooled callable touch shared state?* (the mutable global is two
calls away), *who reads this schema-versioned document back?* (the reader
lives in another package).

:class:`Program` answers them.  It is built once per engine run from the
already-parsed modules — one parse per file, no re-walking — and records:

* a **symbol table** per module: import aliases (absolute and relative,
  chased through re-exporting ``__init__`` modules), module-level globals
  with a mutability classification, functions, classes and their methods;
* a **call graph**: every resolved call edge, plus *reference* edges for
  callables passed as values (``run_sweep(worker, grid)`` creates a
  reference edge to ``worker`` even though ``worker`` is never called by
  name);
* per-function **global access sets**: module-level names read or written
  (including ``global`` declarations and cross-module ``pkg._NAME``
  attribute access), the raw material for the R006 race detector.

Resolution is *canonicalising*: ``np.random.default_rng`` becomes
``numpy.random.default_rng`` whatever the local alias, and a name imported
through ``repro.harness`` resolves to its defining module
``repro.harness.sweep.run_sweep``.  Names that leave the program (stdlib,
numpy internals) stay dotted-absolute so rules can match them by literal.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .engine import ModuleSource

__all__ = [
    "Program",
    "ModuleInfo",
    "FunctionInfo",
    "GlobalInfo",
    "CallSite",
    "dotted_name",
]

#: module-level assignments whose value is one of these calls stay immutable
#: (interned/stateless objects; reading them from a pooled worker is safe)
_IMMUTABLE_CALLS = frozenset({
    "frozenset", "tuple", "int", "float", "str", "bool", "bytes", "complex",
    "range", "property", "object",
    "re.compile",
    "typing.TypeVar", "TypeVar",
    "collections.namedtuple", "namedtuple",
    "logging.getLogger",
    "pathlib.Path", "Path",
    "os.environ.get", "os.getenv",
})

#: value node types that make a module-level binding mutable shared state
_MUTABLE_DISPLAYS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp)


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class GlobalInfo:
    """One module-level binding."""

    name: str
    module: str
    lineno: int
    mutable: bool
    #: short classification used in R006 messages ("dict display", ...)
    kind: str
    value: ast.expr | None = None


@dataclass
class CallSite:
    """One resolved call edge out of a function."""

    callee: str  # canonical dotted name (program qualname or external)
    node: ast.Call


@dataclass
class FunctionInfo:
    """One def (top-level, method, or nested) plus its computed accesses."""

    qualname: str  # e.g. repro.harness.sweep.run_sweep / repro.obs.slo.SloSpec.to_dict
    module: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    params: list[str]
    is_method: bool = False
    nested: bool = False
    lineno: int = 0
    calls: list[CallSite] = field(default_factory=list)
    #: program functions referenced as values (passed, stored), not called
    refs: set[str] = field(default_factory=set)
    global_reads: set[tuple[str, str]] = field(default_factory=set)
    global_writes: set[tuple[str, str]] = field(default_factory=set)
    local_names: set[str] = field(default_factory=set)
    global_decls: set[str] = field(default_factory=set)

    def bindable_params(self) -> list[str]:
        """Parameters a caller can bind (drops the self/cls receiver)."""
        if self.params and self.params[0] in ("self", "cls"):
            return self.params[1:]
        return self.params


@dataclass
class ModuleInfo:
    """One module's symbol table."""

    source: ModuleSource
    name: str
    is_package: bool
    aliases: dict[str, str] = field(default_factory=dict)
    globals: dict[str, GlobalInfo] = field(default_factory=dict)
    #: local qualifier ("f", "Cls.m") -> FunctionInfo
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: class local name -> list of method local names
    classes: dict[str, list[str]] = field(default_factory=dict)

    @property
    def package(self) -> str:
        if self.is_package:
            return self.name
        return self.name.rpartition(".")[0]


class Program:
    """Symbol table + call graph over a set of parsed modules."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: canonical "module.NAME" -> GlobalInfo
        self.global_index: dict[str, GlobalInfo] = {}
        #: canonical class qualname -> defining ModuleInfo
        self.class_index: dict[str, ModuleInfo] = {}

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, sources: Sequence[ModuleSource] | Iterable[ModuleSource]) -> "Program":
        program = cls()
        for source in sources:
            info = _index_module(source)
            # First module wins on a name collision (e.g. duplicated fixture
            # pragma): deterministic because sources arrive sorted.
            program.modules.setdefault(info.name, info)
        for info in program.modules.values():
            for fi in info.functions.values():
                program.functions[fi.qualname] = fi
            for gname, ginfo in info.globals.items():
                program.global_index[f"{info.name}.{gname}"] = ginfo
            for cname in info.classes:
                program.class_index[f"{info.name}.{cname}"] = info
        for info in program.modules.values():
            _analyze_accesses(program, info)
        return program

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def canonical(self, module: ModuleInfo, dotted: str) -> str:
        """Canonicalise a dotted name as written inside ``module``.

        Program symbols come back as their defining qualname; external
        names come back absolute (``numpy.random.default_rng``); names we
        cannot place (builtins, locals) come back unchanged.
        """
        head, _, rest = dotted.partition(".")
        if head in module.aliases:
            base = module.aliases[head]
        elif (
            head in module.functions
            or head in module.classes
            or head in module.globals
        ):
            base = f"{module.name}.{head}"
        else:
            return dotted
        full = base + (f".{rest}" if rest else "")
        return self._chase(full, seen=set())

    def _chase(self, full: str, seen: set[str]) -> str:
        """Follow import chains (``from .sweep import run_sweep`` re-exports)."""
        if full in seen:
            return full
        seen.add(full)
        parts = full.split(".")
        for i in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:i])
            mod = self.modules.get(prefix)
            if mod is None:
                continue
            nxt = parts[i]
            tail = parts[i + 1:]
            if nxt in mod.aliases:
                return self._chase(".".join([mod.aliases[nxt], *tail]), seen)
            return full
        return full

    def function_for(self, canonical: str) -> FunctionInfo | None:
        """FunctionInfo for a canonical name; classes map to ``__init__``."""
        fi = self.functions.get(canonical)
        if fi is not None:
            return fi
        if canonical in self.class_index:
            return self.functions.get(f"{canonical}.__init__")
        return None

    def bind_args(
        self, call: ast.Call, callee: FunctionInfo
    ) -> dict[str, ast.expr]:
        """Map call arguments onto the callee's parameter names.

        Starred args/kwargs are skipped (unresolvable statically); the
        self/cls receiver is never bound.
        """
        params = callee.bindable_params()
        bound: dict[str, ast.expr] = {}
        pos = [a for a in call.args if not isinstance(a, ast.Starred)]
        for name, arg in zip(params, pos):
            bound[name] = arg
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in params:
                bound[kw.arg] = kw.value
        return bound

    def sorted_functions(self) -> list[FunctionInfo]:
        """Deterministic iteration order for fixpoint passes."""
        return [self.functions[q] for q in sorted(self.functions)]


# ----------------------------------------------------------------------
# Module indexing (pass 1)
# ----------------------------------------------------------------------
def _index_module(source: ModuleSource) -> ModuleInfo:
    info = ModuleInfo(
        source=source,
        name=source.module,
        is_package=source.path.stem == "__init__",
    )
    _collect_imports(info, source.tree)
    _collect_globals(info, source.tree)
    _collect_functions(info, source.tree)
    return info


def _collect_imports(info: ModuleInfo, tree: ast.Module) -> None:
    # Function-local imports are indexed module-wide: a deliberate
    # approximation (the repo imports lazily inside functions a lot, and
    # a local alias shadowing a different module-level one is vanishingly
    # rare here).
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                target = alias.name if alias.asname else alias.name.partition(".")[0]
                info.aliases.setdefault(local, target)
        elif isinstance(node, ast.ImportFrom):
            base = _import_base(info, node)
            if base is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.aliases.setdefault(local, f"{base}.{alias.name}")


def _import_base(info: ModuleInfo, node: ast.ImportFrom) -> str | None:
    if node.level == 0:
        return node.module
    base = info.package
    for _ in range(node.level - 1):
        base = base.rpartition(".")[0]
        if not base:
            return None
    if node.module:
        base = f"{base}.{node.module}"
    return base or None


def _collect_globals(info: ModuleInfo, tree: ast.Module) -> None:
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        else:
            continue
        mutable, kind = _classify_value(info, value)
        for target in targets:
            names = (
                [target] if isinstance(target, ast.Name)
                else list(target.elts) if isinstance(target, (ast.Tuple, ast.List))
                else []
            )
            for name_node in names:
                if not isinstance(name_node, ast.Name):
                    continue
                info.globals.setdefault(name_node.id, GlobalInfo(
                    name=name_node.id,
                    module=info.name,
                    lineno=stmt.lineno,
                    mutable=mutable,
                    kind=kind,
                    value=value,
                ))
    # A name written through `global X` anywhere in the module is shared
    # mutable state whatever its initial value (`_DEFAULT: Cache | None =
    # None` plus `global _DEFAULT` is the canonical smuggling pattern).
    for node in ast.walk(tree):
        if isinstance(node, ast.Global):
            for name in node.names:
                existing = info.globals.get(name)
                if existing is not None:
                    existing.mutable = True
                    existing.kind = "rebound via 'global'"
                else:
                    info.globals[name] = GlobalInfo(
                        name=name, module=info.name, lineno=node.lineno,
                        mutable=True, kind="rebound via 'global'",
                    )


def _classify_value(info: ModuleInfo, value: ast.expr | None) -> tuple[bool, str]:
    if value is None:
        return False, "annotation"
    if isinstance(value, _MUTABLE_DISPLAYS):
        return True, f"{type(value).__name__.replace('Comp', ' comprehension').lower()} display"
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        if name is not None:
            # resolve the local alias one step so `re.compile` matches even
            # under `import re as regex`
            head, _, rest = name.partition(".")
            resolved = info.aliases.get(head, head) + (f".{rest}" if rest else "")
            if resolved in _IMMUTABLE_CALLS or name in _IMMUTABLE_CALLS:
                return False, "immutable constructor"
        return True, "constructed instance"
    return False, "constant"


def _params_of(node: ast.AST) -> list[str]:
    args = node.args
    names = [a.arg for a in args.posonlyargs]
    names += [a.arg for a in args.args]
    names += [a.arg for a in args.kwonlyargs]
    return names


def _collect_functions(info: ModuleInfo, tree: ast.Module) -> None:
    def add(node, local_qual: str, *, is_method: bool, nested: bool) -> None:
        fi = FunctionInfo(
            qualname=f"{info.name}.{local_qual}",
            module=info.name,
            name=node.name,
            node=node,
            params=_params_of(node),
            is_method=is_method,
            nested=nested,
            lineno=node.lineno,
        )
        info.functions.setdefault(local_qual, fi)
        for child in node.body:
            _walk_nested(child, local_qual)

    def _walk_nested(node: ast.AST, parent_qual: str) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add(node, f"{parent_qual}.{node.name}", is_method=False, nested=True)
            return
        for child in ast.iter_child_nodes(node):
            _walk_nested(child, parent_qual)

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add(stmt, stmt.name, is_method=False, nested=False)
        elif isinstance(stmt, ast.ClassDef):
            methods: list[str] = []
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.append(item.name)
                    add(item, f"{stmt.name}.{item.name}",
                        is_method=True, nested=False)
            info.classes[stmt.name] = methods


# ----------------------------------------------------------------------
# Access analysis (pass 2)
# ----------------------------------------------------------------------
def _analyze_accesses(program: Program, info: ModuleInfo) -> None:
    for local_qual, fi in info.functions.items():
        if fi.nested:
            # the enclosing function owns its nested defs' accesses; the
            # nested FunctionInfo exists only so closures are recognisable
            continue
        _analyze_function(program, info, fi)


def _analyze_function(program: Program, info: ModuleInfo, fi: FunctionInfo) -> None:
    body = fi.node
    for node in ast.walk(body):
        if isinstance(node, ast.Global):
            fi.global_decls.update(node.names)

    # Local bindings: params, assignment targets, comprehension targets,
    # nested def/lambda names, with/except/for targets, local imports.
    fi.local_names.update(fi.params)
    for node in ast.walk(body):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            if node.id not in fi.global_decls:
                fi.local_names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not body:
            fi.local_names.add(node.name)
            fi.local_names.update(_params_of(node))
        elif isinstance(node, ast.Lambda):
            fi.local_names.update(_params_of(node))
        elif isinstance(node, ast.Import):
            for alias in node.names:
                fi.local_names.add(alias.asname or alias.name.partition(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    fi.local_names.add(alias.asname or alias.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            fi.local_names.add(node.name)

    call_func_nodes = set()
    for node in ast.walk(body):
        if isinstance(node, ast.Call):
            call_func_nodes.add(id(node.func))
            callee = _resolve_call(program, info, fi, node)
            if callee is not None:
                fi.calls.append(CallSite(callee=callee, node=node))

    for node in ast.walk(body):
        if isinstance(node, ast.Name):
            _record_name_access(program, info, fi, node, call_func_nodes)
        elif isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            _record_attribute_access(program, info, fi, node, call_func_nodes)


def _resolve_call(
    program: Program, info: ModuleInfo, fi: FunctionInfo, node: ast.Call
) -> str | None:
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    head = dotted.partition(".")[0]
    if head in ("self", "cls") and fi.is_method:
        if "." not in dotted:
            return None  # bare self(...) — callable instance
        # self.method() -> same-class method
        cls_qual = fi.qualname.rsplit(".", 1)[0]  # module.Cls
        method = dotted.split(".", 1)[1]
        if "." not in method:
            candidate = f"{cls_qual}.{method}"
            if candidate in program.functions:
                return candidate
        return None
    if head in fi.local_names and head not in info.aliases:
        # a genuinely local callable (lambda var, nested def): keep nested
        # defs resolvable, drop the rest
        if dotted in {f.name for f in info.functions.values() if f.nested}:
            base = fi.qualname
            candidate = f"{base}.{dotted}"
            if candidate in program.functions:
                return candidate
        return None
    return program.canonical(info, dotted)


def _record_name_access(
    program: Program,
    info: ModuleInfo,
    fi: FunctionInfo,
    node: ast.Name,
    call_func_nodes: set[int],
) -> None:
    name = node.id
    if isinstance(node.ctx, ast.Load):
        if name in fi.local_names:
            return
        if name in info.functions:
            if id(node) not in call_func_nodes:
                fi.refs.add(info.functions[name].qualname)
            return
        if name in info.aliases:
            target = program._chase(info.aliases[name], seen=set())
            if id(node) not in call_func_nodes and target in program.functions:
                fi.refs.add(target)
            return
        if name in info.globals:
            fi.global_reads.add((info.name, name))
    elif isinstance(node.ctx, ast.Store):
        if name in fi.global_decls and name in info.globals:
            fi.global_writes.add((info.name, name))


def _record_attribute_access(
    program: Program,
    info: ModuleInfo,
    fi: FunctionInfo,
    node: ast.Attribute,
    call_func_nodes: set[int],
) -> None:
    base = node.value.id
    if base in fi.local_names or base in ("self", "cls"):
        return
    if base not in info.aliases:
        return
    target_mod = program.modules.get(program._chase(info.aliases[base], seen=set()))
    if target_mod is None:
        return
    if node.attr in target_mod.globals:
        key = (target_mod.name, node.attr)
        if isinstance(node.ctx, ast.Store):
            fi.global_writes.add(key)
        else:
            fi.global_reads.add(key)
    elif node.attr in target_mod.functions and id(node) not in call_func_nodes:
        fi.refs.add(target_mod.functions[node.attr].qualname)
