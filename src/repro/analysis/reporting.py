"""Human- and machine-readable output for lint reports."""

from __future__ import annotations

import json

from .engine import Report

__all__ = ["format_report", "report_json"]


def format_report(report: Report, *, show_waived: bool = False) -> str:
    """Plain-text report: one line per violation plus a summary line."""
    lines = [v.format() for v in report.active]
    if show_waived:
        lines.extend(v.format() for v in report.waived)
    counts = report.counts()
    if counts:
        per_rule = ", ".join(f"{code}: {n}" for code, n in sorted(counts.items()))
        lines.append(
            f"{len(report.active)} violation(s) in {report.files} file(s) "
            f"({per_rule}); {len(report.waived)} waived"
        )
    else:
        lines.append(
            f"clean: {report.files} file(s), 0 violations, "
            f"{len(report.waived)} waived"
        )
    return "\n".join(lines)


def report_json(report: Report) -> str:
    """Stable JSON document (schema ``version: 1``) for CI consumers."""
    return json.dumps(report.to_dict(), indent=2, sort_keys=False)
