"""Human- and machine-readable output for lint reports.

Three formats, all deterministic (byte-identical across invocations over
the same tree):

* plain text — one line per violation plus a summary line;
* JSON — the schema-version-2 document (:func:`report_json`), read back
  by :func:`repro.analysis.engine.load_report_dict`;
* SARIF 2.1.0 (:func:`sarif_report`) — for code-scanning UIs; waived and
  baselined violations are emitted as suppressed results so the full
  audit trail survives the export.
"""

from __future__ import annotations

import json
from pathlib import Path

from .engine import Report, Violation

__all__ = ["format_report", "report_json", "sarif_report"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def format_report(report: Report, *, show_waived: bool = False) -> str:
    """Plain-text report: one line per violation plus a summary line."""
    lines = [v.format() for v in report.active]
    if show_waived:
        lines.extend(v.format() for v in report.waived)
    counts = report.counts()
    suffix = f"; {len(report.waived)} waived"
    if report.baselined:
        suffix += f", {len(report.baselined)} baselined"
    if counts:
        per_rule = ", ".join(f"{code}: {n}" for code, n in sorted(counts.items()))
        lines.append(
            f"{len(report.active)} violation(s) in {report.files} file(s) "
            f"({per_rule}){suffix}"
        )
    else:
        lines.append(
            f"clean: {report.files} file(s), 0 violations{suffix}"
        )
    return "\n".join(lines)


def report_json(report: Report) -> str:
    """Stable JSON document (schema version 2) for CI consumers."""
    return json.dumps(report.to_dict(), indent=2, sort_keys=False)


# ----------------------------------------------------------------------
# SARIF export
# ----------------------------------------------------------------------
def _sarif_result(violation: Violation) -> dict:
    suppressions = []
    if violation.waived:
        suppressions.append({
            "kind": "inSource",
            "justification": violation.waiver_reason or "",
        })
    if violation.suppressed:
        suppressions.append({
            "kind": "external",
            "justification": "committed suppression baseline",
        })
    result = {
        "ruleId": violation.rule,
        "level": "error",
        "message": {"text": violation.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": Path(violation.path).as_posix(),
                },
                "region": {
                    "startLine": max(1, violation.line),
                    "startColumn": violation.col + 1,
                },
            },
        }],
        "partialFingerprints": {
            "reproAnalysis/v1": violation.fingerprint,
        },
    }
    if suppressions:
        result["suppressions"] = suppressions
    return result


def sarif_report(report: Report) -> str:
    """The report as a SARIF 2.1.0 log (one run, one driver)."""
    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-analysis",
                    "informationUri": (
                        "https://github.com/ssdkeeper/repro"
                    ),
                    "rules": [
                        {
                            "id": code,
                            "shortDescription": {"text": summary},
                        }
                        for code, summary in report.rules
                    ],
                },
            },
            "results": [_sarif_result(v) for v in report.violations],
        }],
    }
    return json.dumps(doc, indent=2, sort_keys=False)
