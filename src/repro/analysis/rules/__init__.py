"""Domain lint rules.

Each rule is a small class with a ``code`` (``R00x``), a one-line
``summary``, an optional ``applies_to`` scope (dotted package prefixes —
empty means every file), and a ``check(module)`` generator yielding
:class:`~repro.analysis.engine.Violation` records.  The contract each
rule protects is documented in its module docstring and in DESIGN.md's
"Invariants & analysis" section.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import ModuleSource, Violation

__all__ = ["Rule", "ProgramRule", "RULE_CODES", "default_rules"]


class Rule:
    """Base class: subclasses set ``code``/``summary`` and implement check."""

    code: str = ""
    summary: str = ""
    #: dotted package prefixes this rule is scoped to (empty = all files)
    applies_to: tuple[str, ...] = ()

    def check(self, module: "ModuleSource") -> Iterator["Violation"]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def violation(
        self, module: "ModuleSource", node, message: str
    ) -> "Violation":
        """Build a violation anchored at ``node``."""
        from ..engine import Violation

        return Violation(
            rule=self.code,
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class ProgramRule(Rule):
    """Whole-program rule: sees the package-wide symbol table + call graph.

    Subclasses implement ``check_program(program)`` instead of ``check``;
    the engine builds one :class:`~repro.analysis.program.Program` per run
    (one parse per module) and dispatches every program rule over it.
    ``applies_to`` filters by the module each violation lands in.
    """

    def check(self, module: "ModuleSource") -> Iterator["Violation"]:
        # program rules never run per-file; the engine routes them through
        # check_program with a single-module program when needed
        return iter(())

    def check_program(self, program) -> Iterator["Violation"]:
        raise NotImplementedError


def default_rules() -> list[Rule]:
    """The seven domain rules, in code order."""
    from .determinism import DeterminismHygieneRule
    from .poolsafety import PoolSafetyRule
    from .purity import OptInPurityRule
    from .scheduling import EventLoopDisciplineRule
    from .schema import SchemaRoundTripRule
    from .seedflow import SeedProvenanceRule
    from .units import UnitHygieneRule

    return [
        UnitHygieneRule(),
        DeterminismHygieneRule(),
        OptInPurityRule(),
        EventLoopDisciplineRule(),
        SeedProvenanceRule(),
        PoolSafetyRule(),
        SchemaRoundTripRule(),
    ]


RULE_CODES = ("R001", "R002", "R003", "R004", "R005", "R006", "R007")
