"""R002 — determinism hygiene inside ``repro.ssd`` / ``repro.core``.

The simulator's contract is *seeded determinism*: two runs with the same
config and seed produce byte-identical summaries.  That breaks the
moment simulation code reads entropy the seed does not control:

* module-level RNG — ``random.random()``, ``random.randint(...)``,
  ``np.random.uniform(...)`` — draws from a process-global stream whose
  state depends on import order and every other caller.  All randomness
  must flow through an instance (``random.Random(seed)`` /
  ``np.random.default_rng(seed)``).
* wall-clock reads — ``time.time()`` / ``time.monotonic()`` /
  ``time.perf_counter()`` / ``datetime.now()`` — leak host time into the
  simulated timeline.
* iterating a ``set()`` (or frozenset) literal/constructor result —
  iteration order is salted per process; if the elements feed event
  scheduling, ties break differently run to run.
* dict iteration feeding event ordering: calling ``loop.schedule`` (or
  ``heappush``) inside a ``for`` loop over ``.items()`` / ``.keys()`` /
  ``.values()`` is only safe when insertion order is itself
  deterministic — flagged so the author either sorts or waives with the
  reason insertion order is deterministic.
"""

from __future__ import annotations

import ast
from typing import Iterator

from . import Rule

__all__ = ["DeterminismHygieneRule"]

#: module-level RNG callables on the ``random`` module
_RANDOM_MODULE_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "shuffle", "sample", "gauss", "normalvariate", "expovariate",
        "betavariate", "triangular", "seed", "getrandbits",
    }
)

#: wall-clock reads on the ``time`` module
_TIME_FUNCS = frozenset(
    {"time", "monotonic", "perf_counter", "process_time", "time_ns",
     "monotonic_ns", "perf_counter_ns"}
)

_DICT_ITER_METHODS = frozenset({"items", "keys", "values"})
_SCHEDULING_CALLS = frozenset({"schedule", "heappush", "push"})


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` as a string, or None for non-trivial receivers."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class DeterminismHygieneRule(Rule):
    """R002: no unseeded entropy or order-salted iteration in sim code."""

    code = "R002"
    summary = (
        "simulation code must not draw from module-level RNG, read wall "
        "clocks, or depend on set/dict iteration order for event ordering"
    )
    applies_to = ("repro.ssd", "repro.core")

    def check(self, module) -> Iterator:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_entropy_call(module, node)
            elif isinstance(node, ast.For):
                yield from self._check_for(module, node)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
                for comp in node.generators:
                    yield from self._check_set_iter(module, comp.iter)

    # ------------------------------------------------------------------
    def _check_entropy_call(self, module, node: ast.Call):
        name = _dotted(node.func)
        if name is None:
            return
        parts = name.split(".")
        if len(parts) == 2 and parts[0] == "random" and parts[1] in _RANDOM_MODULE_FUNCS:
            yield self.violation(
                module,
                node,
                f"module-level RNG '{name}()' — use an instance "
                "random.Random(seed) so runs are seed-reproducible",
            )
        elif parts[0] in ("np", "numpy") and len(parts) >= 3 and parts[1] == "random":
            if parts[2] not in ("default_rng", "Generator", "SeedSequence"):
                yield self.violation(
                    module,
                    node,
                    f"module-level RNG '{name}()' — use "
                    "np.random.default_rng(seed)",
                )
        elif parts[0] == "time" and len(parts) == 2 and parts[1] in _TIME_FUNCS:
            yield self.violation(
                module,
                node,
                f"wall-clock read '{name}()' — simulated time must come "
                "from the event loop, not the host clock",
            )
        elif name.endswith("datetime.now") or name == "datetime.now":
            yield self.violation(
                module, node, f"wall-clock read '{name}()' in simulation code"
            )

    def _check_for(self, module, node: ast.For):
        yield from self._check_set_iter(module, node.iter)
        yield from self._check_dict_iter_scheduling(module, node)

    def _check_set_iter(self, module, iter_node: ast.expr):
        if isinstance(iter_node, ast.Set):
            yield self.violation(
                module,
                iter_node,
                "iterates a set literal — set iteration order is salted "
                "per process; sort or use a tuple",
            )
        elif (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id in ("set", "frozenset")
        ):
            yield self.violation(
                module,
                iter_node,
                f"iterates a {iter_node.func.id}() — iteration order is "
                "not deterministic; wrap in sorted(...)",
            )

    def _check_dict_iter_scheduling(self, module, node: ast.For):
        iter_node = node.iter
        if not (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Attribute)
            and iter_node.func.attr in _DICT_ITER_METHODS
        ):
            return
        for inner in ast.walk(node):
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr in _SCHEDULING_CALLS
            ):
                yield self.violation(
                    module,
                    inner,
                    f"schedules events while iterating "
                    f".{iter_node.func.attr}() — event order then depends "
                    "on dict insertion order; sort the keys or waive with "
                    "the reason insertion order is deterministic",
                )
                return
