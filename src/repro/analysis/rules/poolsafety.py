"""R006 — process-pool / shared-state race detector.

``repro.harness.sweep.run_sweep`` (and the fleet-scale sharded event loop
it will grow into) forks callables onto ``multiprocessing.Pool`` workers.
Three things silently break there:

* **closures and lambdas** don't pickle — the sweep dies at submission;
* **bound methods** drag their whole receiver across the fork;
* **module-level mutable globals** are *copied* into each worker at fork
  time and never merged back: a pooled callable that reads or writes one
  (``global _DEFAULT`` caches, module-level registries, accumulator
  lists) computes against stale state in the parent and divergent state
  across workers — the classic irreproducible "works serially" race.

R006 finds every callable that flows into a pool — directly
(``pool.map(fn, ...)``), through :func:`run_sweep`, or through any
wrapper whose parameter transitively reaches a pool (discovered by
fixpoint, so the rule keeps working as the fleet layer adds wrappers) —
and then walks the call graph from that callable, flagging every
reachable read or write of module-level mutable state with the full
access path (``worker -> helper -> repro.harness.cache.default_cache
writes 'repro.harness.cache._DEFAULT'``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from . import ProgramRule

__all__ = ["PoolSafetyRule"]

#: canonical constructors whose instances are process pools
_POOL_FACTORIES = frozenset({
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
    "multiprocessing.get_context",
    "concurrent.futures.ProcessPoolExecutor",
})

#: methods on a pool object that take a worker callable as first argument
_POOL_METHODS = frozenset({
    "map", "imap", "imap_unordered", "map_async",
    "starmap", "starmap_async", "apply", "apply_async", "submit",
})

#: entry points that forward a callable parameter into a pool, known even
#: when their defining module is outside the linted program (fixtures)
_KNOWN_POOL_ENTRIES = frozenset({
    "repro.harness.sweep.run_sweep",
    "repro.harness.run_sweep",
})

_MAX_ROUNDS = 12


class PoolSafetyRule(ProgramRule):
    """R006: pooled callables are module-level defs free of shared state."""

    code = "R006"
    summary = (
        "callables shipped to a process pool must be closure-free "
        "module-level defs that reach no module-level mutable global"
    )
    applies_to = ()

    # ------------------------------------------------------------------
    def check_program(self, program) -> Iterator:
        pool_params = self._discover_pool_params(program)
        sites = self._concrete_sites(program, pool_params)
        for module_name, fi_qual, expr, call_node in sites:
            module = program.modules[module_name]
            owner = program.functions.get(fi_qual)
            yield from self._check_site(
                program, module, expr, call_node, owner=owner
            )

    # ------------------------------------------------------------------
    # Sink discovery
    # ------------------------------------------------------------------
    def _discover_pool_params(self, program) -> dict[str, set[str]]:
        """(function qualname -> params) that flow into a pool, by fixpoint."""
        pool_params: dict[str, set[str]] = {}
        for _ in range(_MAX_ROUNDS):
            changed = False
            for fi in program.sorted_functions():
                if fi.nested:
                    continue
                for expr, _node in self._pooled_exprs(program, fi, pool_params):
                    if not isinstance(expr, ast.Name):
                        continue
                    if expr.id not in fi.params:
                        continue
                    bucket = pool_params.setdefault(fi.qualname, set())
                    if expr.id not in bucket:
                        bucket.add(expr.id)
                        changed = True
            if not changed:
                break
        return pool_params

    def _concrete_sites(self, program, pool_params):
        """Deterministic list of (module, function, callable-expr, call)."""
        sites = []
        for fi in program.sorted_functions():
            if fi.nested:
                continue
            for expr, node in self._pooled_exprs(program, fi, pool_params):
                if isinstance(expr, ast.Name) and expr.id in fi.params:
                    continue  # handled transitively at the callers
                sites.append((fi.module, fi.qualname, expr, node))
        return sites

    def _pooled_exprs(self, program, fi, pool_params):
        """Every (callable expression, call node) shipped to a pool in fi."""
        module = program.modules[fi.module]
        pool_vars = self._pool_receivers(program, module, fi)
        for node in ast.walk(fi.node):
            if not isinstance(node, ast.Call):
                continue
            # pool.map(fn, ...) style: receiver is a locally-created pool
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _POOL_METHODS
            ):
                receiver = node.func.value
                is_pool = (
                    isinstance(receiver, ast.Name) and receiver.id in pool_vars
                ) or (
                    isinstance(receiver, ast.Call)
                    and self._is_pool_factory(program, module, receiver)
                )
                if is_pool and node.args:
                    yield node.args[0], node
                continue
            # run_sweep(fn, ...) style: resolved entry with a pool param
            from ..program import dotted_name

            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            callee = program.canonical(module, dotted)
            param_names: set[str] = set()
            target = program.function_for(callee)
            if callee in _KNOWN_POOL_ENTRIES:
                if target is not None and target.qualname in pool_params:
                    param_names = pool_params[target.qualname]
                else:
                    param_names = {"fn"}
                    if target is None and node.args:
                        yield node.args[0], node
                        continue
            elif target is not None and target.qualname in pool_params:
                param_names = pool_params[target.qualname]
            if not param_names or target is None:
                continue
            bound = program.bind_args(node, target)
            for pname in sorted(param_names):
                arg = bound.get(pname)
                if arg is not None:
                    yield arg, node

    def _pool_receivers(self, program, module, fi) -> set[str]:
        """Local names bound to a freshly-constructed pool object."""
        receivers: set[str] = set()
        for node in ast.walk(fi.node):
            if isinstance(node, ast.Assign):
                if self._is_pool_factory(program, module, node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            receivers.add(target.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if self._is_pool_factory(
                        program, module, item.context_expr
                    ) and isinstance(item.optional_vars, ast.Name):
                        receivers.add(item.optional_vars.id)
        return receivers

    @staticmethod
    def _is_pool_factory(program, module, expr) -> bool:
        from ..program import dotted_name

        if not isinstance(expr, ast.Call):
            return False
        dotted = dotted_name(expr.func)
        if dotted is None:
            return False
        canonical = program.canonical(module, dotted)
        if canonical in _POOL_FACTORIES:
            return True
        # multiprocessing.get_context("spawn").Pool(...)
        return (
            isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "Pool"
            and isinstance(expr.func.value, ast.Call)
            and PoolSafetyRule._is_pool_factory(program, module, expr.func.value)
        )

    # ------------------------------------------------------------------
    # Site verification
    # ------------------------------------------------------------------
    def _check_site(self, program, module, expr, call_node, *, owner=None) -> Iterator:
        from ..program import dotted_name

        if isinstance(expr, ast.Lambda):
            yield self.violation(
                module.source,
                call_node,
                "lambda shipped to a process pool — lambdas don't pickle; "
                "promote it to a module-level def",
            )
            return
        # functools.partial(f, ...) wraps a picklable target: unwrap it
        if isinstance(expr, ast.Call):
            dotted = dotted_name(expr.func)
            if dotted is not None and program.canonical(module, dotted) in (
                "functools.partial", "partial",
            ):
                if expr.args:
                    yield from self._check_site(
                        program, module, expr.args[0], call_node, owner=owner
                    )
                return
            return  # arbitrary call result: not statically resolvable
        dotted = dotted_name(expr)
        if dotted is None:
            return
        if "." in dotted and dotted.partition(".")[0] in ("self", "cls"):
            yield self.violation(
                module.source,
                call_node,
                f"bound method '{dotted}' shipped to a process pool — the "
                "whole receiver object is pickled into every worker; use a "
                "module-level def taking explicit arguments",
            )
            return
        target = None
        if "." not in dotted and owner is not None:
            # a bare name may be one of the enclosing function's nested defs
            target = program.function_for(f"{owner.qualname}.{dotted}")
        if target is None:
            target = program.function_for(program.canonical(module, dotted))
        if target is None:
            return  # external / unresolvable: nothing to prove
        if target.nested:
            yield self.violation(
                module.source,
                call_node,
                f"'{dotted}' is a nested def (closure) shipped to a process "
                "pool — closures don't pickle and capture enclosing state; "
                "promote it to module level",
            )
            return
        if target.is_method:
            yield self.violation(
                module.source,
                call_node,
                f"method '{target.qualname}' shipped to a process pool — "
                "use a closure-free module-level def",
            )
            return
        yield from self._check_shared_state(program, module, target, call_node)

    def _check_shared_state(self, program, module, entry, call_node) -> Iterator:
        """BFS the call graph from ``entry``; flag mutable-global touches."""
        reported: set[tuple[str, str, str]] = set()
        visited = {entry.qualname}
        queue: list[tuple[str, tuple[str, ...]]] = [
            (entry.qualname, (entry.qualname,))
        ]
        while queue:
            qual, path = queue.pop(0)
            fi = program.functions.get(qual)
            if fi is None:
                continue
            for mod_name, gname in sorted(fi.global_writes):
                key = ("write", mod_name, gname)
                if key not in reported:
                    reported.add(key)
                    yield self._shared_state_violation(
                        module, call_node, path, "writes", mod_name, gname,
                        program,
                    )
            for mod_name, gname in sorted(fi.global_reads):
                info = program.global_index.get(f"{mod_name}.{gname}")
                if info is None or not info.mutable:
                    continue
                key = ("read", mod_name, gname)
                if key not in reported and ("write", mod_name, gname) not in reported:
                    reported.add(key)
                    yield self._shared_state_violation(
                        module, call_node, path, "reads", mod_name, gname,
                        program,
                    )
            callees = sorted(
                {site.callee for site in fi.calls} | fi.refs
            )
            for callee in callees:
                target = program.function_for(callee)
                if target is None or target.qualname in visited:
                    continue
                visited.add(target.qualname)
                queue.append((target.qualname, path + (target.qualname,)))

    def _shared_state_violation(
        self, module, call_node, path, verb, mod_name, gname, program
    ):
        info = program.global_index.get(f"{mod_name}.{gname}")
        kind = f" ({info.kind})" if info is not None else ""
        chain = " -> ".join(path)
        return self.violation(
            module.source,
            call_node,
            f"pooled callable reaches shared mutable state: {chain} {verb} "
            f"module global '{mod_name}.{gname}'{kind} — fork-copied state "
            "diverges across workers; pass it as an argument or return it",
        )
