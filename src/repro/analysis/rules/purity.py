"""R003 — opt-in purity of observability/fault/sanitizer hooks.

PRs 1–3 thread ``obs`` / ``faults`` / ``sanitizer`` through the hot path
as *opt-in* collaborators: every component stores them as attributes
defaulting to ``None`` and the disabled cost is exactly one
``is not None`` branch per hook site.  That contract dies the first time
somebody writes ``self.obs.counter(...)`` unguarded — the simulator then
crashes with ``AttributeError`` the moment observability is off, and the
"pay only when enabled" property silently became "always required".

R003 flags every ``obs.* `` / ``faults.*`` / ``sanitizer.*`` attribute
access (on a bare name or a ``self.``-attribute) inside ``repro.ssd`` /
``repro.core`` that is not dominated by a ``None``-guard.  Recognised
guards, checked on enclosing context:

* ``if x is not None: ...`` / ``if x: ...`` (and the ``else`` of
  ``is None`` / ``not x``);
* ``x is not None and x.hook(...)`` / ``x and x.hook(...)`` bool-ops;
* ``x.hook(...) if x is not None else ...`` conditional expressions;
* ``assert x is not None`` earlier in the same function body;
* an early return/raise: ``if x is None: return`` before the use.
"""

from __future__ import annotations

import ast
from typing import Iterator

from . import Rule

__all__ = ["OptInPurityRule"]

#: attribute roots that must be None-guarded
_GUARDED_ROOTS = frozenset({
    "obs", "faults", "sanitizer", "attribution",
    "_obs", "_faults", "_sanitizer", "_attribution",
})


def _root_key(node: ast.expr) -> str | None:
    """Identify ``obs`` / ``self.obs`` style receivers by their root name."""
    if isinstance(node, ast.Name) and node.id in _GUARDED_ROOTS:
        return node.id
    if (
        isinstance(node, ast.Attribute)
        and node.attr in _GUARDED_ROOTS
        and isinstance(node.value, ast.Name)
        and node.value.id in ("self", "cls")
    ):
        return f"{node.value.id}.{node.attr}"
    return None


def _guard_keys(test: ast.expr, *, negated: bool = False) -> set[str]:
    """Root keys proven non-None when ``test`` is truthy (or falsy if negated)."""
    keys: set[str] = set()
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And) and not negated:
        for value in test.values:
            keys |= _guard_keys(value)
        return keys
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return _guard_keys(test.operand, negated=not negated)
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        op = test.ops[0]
        left, right = test.left, test.comparators[0]
        is_none = isinstance(right, ast.Constant) and right.value is None
        if is_none:
            key = _root_key(left)
            if key is not None:
                if isinstance(op, ast.IsNot) and not negated:
                    keys.add(key)
                elif isinstance(op, ast.Is) and negated:
                    keys.add(key)
        return keys
    if not negated:
        key = _root_key(test)
        if key is not None:
            keys.add(key)
    return keys


def _terminates(body: list[ast.stmt]) -> bool:
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


class OptInPurityRule(Rule):
    """R003: every obs/faults/sanitizer hook call must be None-guarded."""

    code = "R003"
    summary = (
        "obs.*/faults.*/sanitizer.* access in repro.ssd/repro.core must be "
        "dominated by a None-guard (opt-in hot-path contract)"
    )
    applies_to = (
        "repro.ssd",
        "repro.core",
        # the explainer layer consumes sanitizer/attribution handles and
        # must honour the same opt-in contract it observes
        "repro.obs.critpath",
        "repro.obs.whatif",
        # the fleet plane wires opt-in device bundles together and must
        # honour the same contract for every handle it touches
        "repro.obs.fleet",
        # the differential layer re-simulates with its own handles and
        # must not regress the opt-in contract while doing so
        "repro.obs.diff",
    )

    def check(self, module) -> Iterator:
        for func in ast.walk(module.tree):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, func)

    # ------------------------------------------------------------------
    def _check_function(self, module, func: ast.FunctionDef):
        yield from self._walk_body(module, func.body, set())

    def _walk_body(self, module, body: list[ast.stmt], proven: set[str]):
        proven = set(proven)
        for stmt in body:
            yield from self._walk_stmt(module, stmt, proven)
            # facts established by this statement for the rest of the body
            if isinstance(stmt, ast.Assert):
                proven |= _guard_keys(stmt.test)
            elif isinstance(stmt, ast.If):
                test_keys = _guard_keys(stmt.test)
                neg_keys = _guard_keys(stmt.test, negated=True)
                if neg_keys and _terminates(stmt.body) and not stmt.orelse:
                    proven |= neg_keys  # ``if x is None: return`` early exit
                if test_keys and stmt.orelse and _terminates(stmt.orelse):
                    proven |= test_keys  # ``if x is not None: ... else: return``
            elif isinstance(stmt, ast.Assign):
                # rebinding the root invalidates earlier proofs
                for target in stmt.targets:
                    key = _root_key(target)
                    if key is not None:
                        proven.discard(key)

    def _walk_stmt(self, module, stmt: ast.stmt, proven: set[str]):
        if isinstance(stmt, ast.If):
            yield from self._check_expr(module, stmt.test, proven)
            then_proven = proven | _guard_keys(stmt.test)
            yield from self._walk_body(module, stmt.body, then_proven)
            else_proven = proven | _guard_keys(stmt.test, negated=True)
            yield from self._walk_body(module, stmt.orelse, else_proven)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            yield from self._check_expr(module, stmt.iter, proven)
            yield from self._walk_body(module, stmt.body, proven)
            yield from self._walk_body(module, stmt.orelse, proven)
        elif isinstance(stmt, ast.While):
            yield from self._check_expr(module, stmt.test, proven)
            body_proven = proven | _guard_keys(stmt.test)
            yield from self._walk_body(module, stmt.body, body_proven)
            yield from self._walk_body(module, stmt.orelse, proven)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                yield from self._check_expr(module, item.context_expr, proven)
            yield from self._walk_body(module, stmt.body, proven)
        elif isinstance(stmt, ast.Try):
            yield from self._walk_body(module, stmt.body, proven)
            for handler in stmt.handlers:
                yield from self._walk_body(module, handler.body, proven)
            yield from self._walk_body(module, stmt.orelse, proven)
            yield from self._walk_body(module, stmt.finalbody, proven)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # nested function: guards outside don't dominate calls inside
            yield from self._walk_body(module, stmt.body, set())
        elif isinstance(stmt, ast.ClassDef):
            yield from self._walk_body(module, stmt.body, set())
        else:
            for value in ast.iter_child_nodes(stmt):
                if isinstance(value, ast.expr):
                    yield from self._check_expr(module, value, proven)

    # ------------------------------------------------------------------
    def _check_expr(self, module, expr: ast.expr, proven: set[str]):
        """Flag unguarded hook accesses inside ``expr``."""
        if isinstance(expr, ast.BoolOp) and isinstance(expr.op, ast.And):
            facts = set(proven)
            for value in expr.values:
                yield from self._check_expr(module, value, facts)
                facts |= _guard_keys(value)
            return
        if isinstance(expr, ast.IfExp):
            yield from self._check_expr(module, expr.test, proven)
            yield from self._check_expr(
                module, expr.body, proven | _guard_keys(expr.test)
            )
            yield from self._check_expr(
                module, expr.orelse, proven | _guard_keys(expr.test, negated=True)
            )
            return
        if isinstance(expr, ast.Attribute):
            key = _root_key(expr.value)
            if key is not None and key not in proven:
                root = key.split(".")[-1]
                yield self.violation(
                    module,
                    expr,
                    f"'{key}.{expr.attr}' without a None-guard — "
                    f"'{root}' is opt-in (defaults to None); guard with "
                    f"'if {key} is not None:'",
                )
            # still descend into the receiver chain below the root
            if key is None:
                yield from self._check_expr(module, expr.value, proven)
            return
        if isinstance(expr, ast.Compare):
            # comparisons against None are themselves guards, not uses
            for side in [expr.left, *expr.comparators]:
                if _root_key(side) is None:
                    yield from self._check_expr(module, side, proven)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                yield from self._check_expr(module, child, proven)
            elif isinstance(child, (ast.keyword, ast.FormattedValue)):
                yield from self._check_expr(module, child.value, proven)
            elif isinstance(child, ast.comprehension):
                yield from self._check_expr(module, child.iter, proven)
                for cond in child.ifs:
                    yield from self._check_expr(module, cond, proven)
