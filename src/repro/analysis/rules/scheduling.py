"""R004 — event-loop discipline for ``loop.schedule(when, ...)``.

The event loop takes **absolute** simulated times.  The classic bug is
passing a duration: ``loop.schedule(transfer_us, cb)`` schedules the
callback near time zero instead of ``now + transfer_us``, silently
compressing the timeline.  R004 requires every ``when`` expression
passed to a ``schedule`` call on a loop-like receiver (terminal name
``loop`` / ``_loop`` / ``event_loop``) to contain an *absolute-time
anchor term*:

* the clock itself — ``now`` / ``self.loop.now`` / ``loop.now``;
* a resource grant time — ``free_at``, ``start`` / ``start_us`` (grant
  start times handed to resource callbacks are absolute);
* ``when`` / ``when_us`` (already-absolute times passed through);
* a local variable that was itself assigned from an anchored expression
  (one level of substitution: ``done = start + dur; loop.schedule(done,
  ...)`` passes).

Durations (``*_us`` service times, literals, products) on their own are
flagged.  Pre-computed absolute times that arrive from outside the
function (trace arrival timestamps, window boundaries) are legitimate —
waive them with the reason they are absolute::

    loop.schedule(arrival_us, submit)  # repro-lint: disable=R004 (trace arrivals are absolute times)
"""

from __future__ import annotations

import ast
from typing import Iterator

from . import Rule

__all__ = ["EventLoopDisciplineRule"]

#: receivers whose terminal name marks an event loop
_LOOP_NAMES = frozenset({"loop", "_loop", "event_loop"})

#: names that anchor an expression to absolute simulated time
_ANCHOR_NAMES = frozenset(
    {"now", "free_at", "start", "start_us", "when", "when_us", "at", "at_us"}
)


def _is_loop_receiver(func: ast.expr) -> bool:
    if not (isinstance(func, ast.Attribute) and func.attr == "schedule"):
        return False
    receiver = func.value
    if isinstance(receiver, ast.Name):
        return receiver.id in _LOOP_NAMES
    if isinstance(receiver, ast.Attribute):
        return receiver.attr in _LOOP_NAMES
    return False


def _has_anchor(expr: ast.expr, anchored_locals: set[str]) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            if node.id in _ANCHOR_NAMES or node.id in anchored_locals:
                return True
        elif isinstance(node, ast.Attribute):
            if node.attr in _ANCHOR_NAMES:
                return True
    return False


class EventLoopDisciplineRule(Rule):
    """R004: schedule() times must contain a now-relative anchor term."""

    code = "R004"
    summary = (
        "loop.schedule(when, ...) must pass an absolute time — an "
        "expression containing a now/free_at/start anchor, not a bare "
        "duration"
    )

    def check(self, module) -> Iterator:
        for func in ast.walk(module.tree):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, func)

    # ------------------------------------------------------------------
    def _check_function(self, module, func: ast.FunctionDef):
        # one forward pass: track locals assigned from anchored expressions
        anchored_locals: set[str] = set()
        for node in _walk_in_order(func):
            if isinstance(node, ast.Assign):
                if _has_anchor(node.value, anchored_locals):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            anchored_locals.add(target.id)
                else:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            anchored_locals.discard(target.id)
            elif isinstance(node, ast.AugAssign):
                # ``t += dur`` keeps t anchored; ``t = dur`` above resets
                if isinstance(node.target, ast.Name) and _has_anchor(
                    node.value, anchored_locals
                ):
                    anchored_locals.add(node.target.id)
            elif isinstance(node, ast.Call) and _is_loop_receiver(node.func):
                if not node.args:
                    continue
                when_expr = node.args[0]
                if not _has_anchor(when_expr, anchored_locals):
                    yield self.violation(
                        module,
                        node,
                        "schedule() time has no now/free_at/start anchor "
                        "term — looks like a duration, not an absolute "
                        "simulated time",
                    )


def _walk_in_order(func: ast.FunctionDef):
    """Walk ``func`` body depth-first in source order, skipping nested defs'
    own re-analysis (they are visited by the outer check loop)."""
    stack = list(reversed(func.body))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(reversed(list(ast.iter_child_nodes(node))))
