"""R007 — schema round-trip contracts for versioned JSON emitters.

Nine modules emit documents stamped ``"schema_version": <CONST>`` (bench
results, telemetry headers, flight-recorder manifests, SLO specs, ...).
A stamped writer with no checked reader is write-only versioning: the
version bump that was supposed to protect consumers protects nobody,
and field renames drift silently until a replay bundle fails to load
months later.

R007 enforces, whole-program:

* every dict literal carrying a ``schema_version`` key whose value is a
  resolvable version constant (or literal) must have a **paired reader**
  somewhere in the program — a function that *compares* the same version
  constant against a ``schema_version`` it pulled out of a document;
* the **field sets must agree**: every top-level key the writer emits
  (dict-literal keys plus ``doc["key"] = ...`` stores on the same
  variable; ``_``-prefixed keys are private and exempt) must be named by
  the reader, either as a string constant in its body or through a
  module-level frozenset/tuple of field names it references.

The rule matches writer to reader by the *canonical* version symbol
(``repro.obs.slo.SLO_SCHEMA_VERSION`` however it was imported), so the
reader may live in any module of the program.
"""

from __future__ import annotations

import ast
from typing import Iterator

from . import ProgramRule

__all__ = ["SchemaRoundTripRule"]

_SCHEMA_KEY = "schema_version"


class SchemaRoundTripRule(ProgramRule):
    """R007: every schema_version writer has a version-checking reader."""

    code = "R007"
    summary = (
        "schema_version-stamped writers need a paired reader checking the "
        "same version constant, with agreeing field sets"
    )
    applies_to = ()

    # ------------------------------------------------------------------
    def check_program(self, program) -> Iterator:
        writers = []
        readers: dict[str, list[set[str]]] = {}
        for module in sorted(program.modules.values(), key=lambda m: m.name):
            for local_qual in sorted(module.functions):
                fi = module.functions[local_qual]
                if fi.nested:
                    continue
                writers.extend(self._writers_in(program, module, fi))
                for key, fields in self._readers_in(program, module, fi):
                    readers.setdefault(key, []).append(fields)
        for module, node, version_key, fields in writers:
            candidates = readers.get(version_key, [])
            if not candidates:
                yield self.violation(
                    module.source,
                    node,
                    f"schema_version writer has no paired reader: no "
                    f"function in the program compares {version_key} "
                    "against a document's schema_version — add a "
                    "load_/validate_ reader so the version stamp is "
                    "actually enforced",
                )
                continue
            best = max(candidates, key=lambda c: len(fields & c))
            missing = sorted(fields - best)
            if missing:
                yield self.violation(
                    module.source,
                    node,
                    f"schema round-trip field mismatch for {version_key}: "
                    f"the paired reader never references writer fields "
                    f"{missing} — update the reader's required-field set",
                )

    # ------------------------------------------------------------------
    # Writers
    # ------------------------------------------------------------------
    def _writers_in(self, program, module, fi):
        for node in ast.walk(fi.node):
            if not isinstance(node, ast.Dict):
                continue
            version_value = None
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == _SCHEMA_KEY
                ):
                    version_value = value
                    break
            if version_value is None:
                continue
            version_key = self._version_key(program, module, version_value)
            if version_key is None:
                continue
            fields = {
                key.value
                for key in node.keys
                if isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and not key.value.startswith("_")
            }
            fields |= self._augmented_keys(fi, node)
            yield (module, node, version_key, fields)

    def _version_key(self, program, module, value: ast.expr) -> str | None:
        """Identity of the version constant: canonical symbol or literal."""
        from ..program import dotted_name

        if isinstance(value, ast.Constant) and isinstance(value.value, int):
            return f"literal schema_version {value.value}"
        dotted = dotted_name(value)
        if dotted is None:
            return None
        return program.canonical(module, dotted)

    @staticmethod
    def _augmented_keys(fi, dict_node: ast.Dict) -> set[str]:
        """Keys added later via ``doc["key"] = ...`` on the same variable."""
        var: str | None = None
        for node in ast.walk(fi.node):
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            else:
                continue
            if node.value is dict_node:
                for target in targets:
                    if isinstance(target, ast.Name):
                        var = target.id
        if var is None:
            return set()
        keys: set[str] = set()
        for node in ast.walk(fi.node):
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.ctx, ast.Store)
                and isinstance(node.value, ast.Name)
                and node.value.id == var
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
                and not node.slice.value.startswith("_")
            ):
                keys.add(node.slice.value)
        return keys

    # ------------------------------------------------------------------
    # Readers
    # ------------------------------------------------------------------
    def _readers_in(self, program, module, fi):
        """(version key, known field names) for every reader in ``fi``.

        A reader is a function that mentions the ``schema_version`` string
        and compares *something* against a version constant (symbol or int
        literal) inside a Compare node.
        """
        strings = self._string_constants(fi)
        if _SCHEMA_KEY not in strings:
            return
        version_keys: set[str] = set()
        for node in ast.walk(fi.node):
            if not isinstance(node, ast.Compare):
                continue
            for side in [node.left, *node.comparators]:
                key = self._compare_side_key(program, module, fi, side)
                if key is not None:
                    version_keys.add(key)
        if not version_keys:
            return
        fields = strings | self._referenced_field_sets(program, module, fi)
        for key in sorted(version_keys):
            yield key, fields

    def _compare_side_key(self, program, module, fi, side: ast.expr) -> str | None:
        from ..program import dotted_name

        if isinstance(side, ast.Constant) and isinstance(side.value, int):
            return f"literal schema_version {side.value}"
        dotted = dotted_name(side)
        if dotted is None:
            return None
        head = dotted.partition(".")[0]
        if head in fi.local_names and head not in module.aliases:
            return None
        canonical = program.canonical(module, dotted)
        if canonical in program.global_index or canonical != dotted:
            return canonical
        return None

    @staticmethod
    def _string_constants(fi) -> set[str]:
        return {
            node.value
            for node in ast.walk(fi.node)
            if isinstance(node, ast.Constant) and isinstance(node.value, str)
        }

    def _referenced_field_sets(self, program, module, fi) -> set[str]:
        """Strings inside module-level container constants the reader uses."""
        out: set[str] = set()
        for node in ast.walk(fi.node):
            if not isinstance(node, ast.Name) or not isinstance(
                node.ctx, ast.Load
            ):
                continue
            if node.id in fi.local_names:
                continue
            canonical = program.canonical(module, f"{node.id}")
            info = program.global_index.get(canonical)
            if info is None and node.id in module.globals:
                info = module.globals[node.id]
            if info is None or info.value is None:
                continue
            for child in ast.walk(info.value):
                if isinstance(child, ast.Constant) and isinstance(
                    child.value, str
                ):
                    out.add(child.value)
        return out
