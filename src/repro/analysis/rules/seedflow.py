"""R005 — seed-provenance taint tracking across the call graph.

The repository's reproducibility contract is that every random stream is
derived from an *explicit* seed: a ``seed`` parameter, a config field
(``config.seed``, ``spec.fault_seed``), or a literal.  R002 already bans
drawing from the process-global stream; R005 closes the remaining holes
at the **construction sites**:

* **ambient seeding** — ``np.random.default_rng()`` / ``default_rng(None)``
  pulls OS entropy; two runs diverge silently;
* **untraceable seeds** — ``random.Random(x)`` where ``x`` cannot be
  traced (through local assignments and, interprocedurally, through the
  call graph's argument-to-parameter bindings) back to a seed parameter
  or config field;
* **module-global RNGs** — an RNG stored in a module global is shared
  process state: import order and pooled workers both corrupt its
  lineage;
* **seed fan-out** — the *same* seed expression constructing two RNGs in
  one function yields two identical (not independent) streams; derive
  per-consumer seeds (``seed + 1``, ``SeedSequence(seed).spawn``) instead.

Taint propagation is optimistic-interprocedural: a parameter is
seed-tainted when its name matches the seed pattern **or** any caller
passes a tainted expression in its position.  Literal integer seeds are
accepted — they are reproducible by construction.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from . import ProgramRule

__all__ = ["SeedProvenanceRule"]

#: canonical constructor names that mint a random stream
_RNG_CONSTRUCTORS = frozenset({
    "random.Random",
    "random.SystemRandom",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.Philox",
    "numpy.random.MT19937",
})

_SEED_NAME_RE = re.compile(r"(^|_)(seed|seeds|entropy)($|_)", re.IGNORECASE)

_MAX_TAINT_ROUNDS = 12


def _is_seed_name(name: str) -> bool:
    return bool(_SEED_NAME_RE.search(name))


class SeedProvenanceRule(ProgramRule):
    """R005: every RNG construction traces to an explicit seed."""

    code = "R005"
    summary = (
        "RNG construction sites must be seeded from an explicit seed "
        "parameter, config field, or literal — never ambient entropy, "
        "never stored in module globals, never the same seed twice"
    )
    applies_to = ()

    # ------------------------------------------------------------------
    def check_program(self, program) -> Iterator:
        tainted_params = self._propagate_param_taint(program)
        for module in sorted(program.modules.values(), key=lambda m: m.name):
            yield from self._check_module_level(program, module)
            for local_qual in sorted(module.functions):
                fi = module.functions[local_qual]
                if fi.nested:
                    continue
                yield from self._check_function(
                    program, module, fi, tainted_params.get(fi.qualname, set())
                )

    # ------------------------------------------------------------------
    def _propagate_param_taint(self, program) -> dict[str, set[str]]:
        """Fixpoint: param is tainted if seed-named or fed a tainted arg."""
        tainted: dict[str, set[str]] = {}
        for fi in program.sorted_functions():
            seeds = {p for p in fi.params if _is_seed_name(p)}
            if seeds:
                tainted[fi.qualname] = seeds
        for _ in range(_MAX_TAINT_ROUNDS):
            changed = False
            for fi in program.sorted_functions():
                if fi.nested:
                    continue
                local = self._local_taint(fi, tainted.get(fi.qualname, set()))
                for site in fi.calls:
                    callee = program.function_for(site.callee)
                    if callee is None:
                        continue
                    for pname, arg in sorted(
                        program.bind_args(site.node, callee).items()
                    ):
                        if not self._expr_tainted(arg, local):
                            continue
                        bucket = tainted.setdefault(callee.qualname, set())
                        if pname not in bucket:
                            bucket.add(pname)
                            changed = True
            if not changed:
                break
        return tainted

    def _local_taint(self, fi, extra_params: set[str]) -> set[str]:
        """Names provably seed-derived inside one function."""
        taint = {p for p in fi.params if _is_seed_name(p)} | set(extra_params)
        taint |= {n for n in fi.local_names if _is_seed_name(n)}
        for _ in range(3):
            grew = False
            for node in ast.walk(fi.node):
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                elif isinstance(node, ast.AugAssign):
                    targets, value = [node.target], node.value
                if value is None or not self._expr_tainted(value, taint):
                    continue
                for target in targets:
                    names = (
                        [target] if isinstance(target, ast.Name)
                        else list(target.elts)
                        if isinstance(target, (ast.Tuple, ast.List)) else []
                    )
                    for name_node in names:
                        if (
                            isinstance(name_node, ast.Name)
                            and name_node.id not in taint
                        ):
                            taint.add(name_node.id)
                            grew = True
            if not grew:
                break
        return taint

    @staticmethod
    def _expr_tainted(expr: ast.expr, taint: set[str]) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id in taint:
                return True
            if isinstance(node, ast.Attribute) and _is_seed_name(node.attr):
                return True
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
                and _is_seed_name(node.slice.value)
            ):
                return True
        return False

    # ------------------------------------------------------------------
    def _rng_call(self, program, module, fi, node: ast.Call) -> bool:
        from ..program import dotted_name

        dotted = dotted_name(node.func)
        if dotted is None:
            return False
        if fi is not None:
            head = dotted.partition(".")[0]
            if head in fi.local_names and head not in module.aliases:
                return False
        return program.canonical(module, dotted) in _RNG_CONSTRUCTORS

    @staticmethod
    def _seed_argument(node: ast.Call) -> ast.expr | None:
        if node.args and not isinstance(node.args[0], ast.Starred):
            return node.args[0]
        for kw in node.keywords:
            if kw.arg == "seed":
                return kw.value
        return None

    # ------------------------------------------------------------------
    def _check_module_level(self, program, module) -> Iterator:
        """RNGs minted at import time are ambient *and* module-global."""
        for stmt in module.source.tree.body:
            value = None
            if isinstance(stmt, ast.Assign):
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                value = stmt.value
            if value is None:
                continue
            for node in ast.walk(value):
                if isinstance(node, ast.Call) and self._rng_call(
                    program, module, None, node
                ):
                    yield self.violation(
                        module.source,
                        node,
                        "RNG constructed at module import time becomes "
                        "shared process state — construct it inside the "
                        "run path from an explicit seed",
                    )

    def _check_function(self, program, module, fi, extra_params) -> Iterator:
        local = self._local_taint(fi, extra_params)
        sources_seen: dict[str, int] = {}
        for node in ast.walk(fi.node):
            if not (isinstance(node, ast.Call) and self._rng_call(
                program, module, fi, node
            )):
                continue
            if self._stored_in_global(fi, node):
                yield self.violation(
                    module.source,
                    node,
                    "RNG instance stored in a module global — seed lineage "
                    "is lost the moment another caller (or pooled worker) "
                    "shares the stream; pass the RNG explicitly instead",
                )
                continue
            seed_arg = self._seed_argument(node)
            if seed_arg is None or (
                isinstance(seed_arg, ast.Constant) and seed_arg.value is None
            ):
                yield self.violation(
                    module.source,
                    node,
                    "ambient seeding — this RNG draws OS entropy, so two "
                    "runs diverge; thread an explicit seed parameter or "
                    "config field to this construction site",
                )
                continue
            if isinstance(seed_arg, ast.Constant):
                source_key = f"literal {seed_arg.value!r}"
            elif self._expr_tainted(seed_arg, local):
                source_key = self._source_key(seed_arg)
            else:
                rendered = ast.unparse(seed_arg)
                yield self.violation(
                    module.source,
                    node,
                    f"seed expression '{rendered}' cannot be traced to an "
                    "explicit seed parameter or config field through the "
                    "call graph — rename the source to *seed*, or plumb "
                    "the seed through the callers",
                )
                continue
            first = sources_seen.get(source_key)
            if first is not None and self._plain_source(seed_arg):
                yield self.violation(
                    module.source,
                    node,
                    f"seed fan-out: source {source_key} already constructed "
                    f"an RNG at line {first} in this function — identical "
                    "seeds yield identical (not independent) streams; derive "
                    "per-consumer seeds (seed + k, SeedSequence.spawn)",
                )
            elif self._plain_source(seed_arg):
                sources_seen[source_key] = node.lineno
        return

    @staticmethod
    def _plain_source(expr: ast.expr) -> bool:
        """Only undistinguished sources (bare name/attr/literal) fan out."""
        return isinstance(expr, (ast.Name, ast.Attribute, ast.Constant))

    @staticmethod
    def _source_key(expr: ast.expr) -> str:
        return f"'{ast.unparse(expr)}'"

    @staticmethod
    def _stored_in_global(fi, rng_call: ast.Call) -> bool:
        if not fi.global_decls:
            return False
        for node in ast.walk(fi.node):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            if value is None:
                continue
            holds_rng = any(child is rng_call for child in ast.walk(value))
            if not holds_rng:
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id in fi.global_decls:
                    return True
        return False
