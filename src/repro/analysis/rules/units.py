"""R001 — unit hygiene for simulated-time quantities.

Every timing quantity in this codebase is **microseconds** and carries a
``_us`` suffix (``arrival_us``, ``read_die_us``, ``makespan_us``, ...).
The one systematic failure mode of latency models is silent unit drift:
a millisecond value flowing into a microsecond field is off by 1000x and
no test that samples a distribution will catch it.

R001 checks every *microsecond sink* — a keyword argument, assignment
target, dict key, or ``*_us``-named function's return value — and
requires the flowing value to provably be microseconds:

* a ``*_us``-suffixed name / attribute / call (case-insensitive), or
  the event-loop clock ``now`` (microseconds by the DES contract);
* a numeric literal (literals at a ``_us`` sink are declared in-unit);
* arithmetic that preserves or correctly converts the unit —
  ``window_s * 1e6`` and ``delay_ms * 1e3`` convert to microseconds,
  ``a_us + b_us`` stays microseconds, ``total_us / count`` stays
  microseconds (dimensionless divisor);
* container/ufunc plumbing over such values (``min``/``max``/``sum``/
  ``float``/``np.array``/``.tolist()``/comprehensions/...).

Flagged: ``*_ms`` / ``*_ns`` / ``*_s`` names reaching a ``_us`` sink
without a conversion factor, unsuffixed names (unit unprovable), and
``+``/``-`` mixing two different known time units anywhere.
"""

from __future__ import annotations

import ast
from typing import Iterator

from . import Rule

__all__ = ["UnitHygieneRule", "infer_unit"]

# Inference lattice values.
US, MS, NS, S = "us", "ms", "ns", "s"
NUMBER = "number"  # literals / dimensionless — acceptable at any sink
BARE = "bare"  # unit unprovable

_TIME_UNITS = (US, MS, NS, S)

#: identifier suffix → unit (checked longest-first, case-insensitive)
_SUFFIXES = (
    ("_usec", US), ("_us", US),
    ("_msec", MS), ("_ms", MS),
    ("_nsec", NS), ("_ns", NS),
    ("_seconds", S), ("_secs", S), ("_sec", S), ("_s", S),
)

#: names that are microseconds by documented contract: the DES clock
#: (``EventLoop.now``) and its absolute-time ``schedule(when, ...)`` input
_KNOWN_US_NAMES = frozenset({"now", "when"})

#: multiplying ``unit`` by this literal factor converts it to the value
_MUL_CONVERSIONS = {
    (S, 1e6): US, (S, 1_000_000): US,
    (MS, 1e3): US, (MS, 1_000): US,
    (S, 1e3): MS, (S, 1_000): MS,
    (US, 1e3): NS, (US, 1_000): NS,
    (MS, 1e6): NS, (MS, 1_000_000): NS,
    (S, 1e9): NS, (S, 1_000_000_000): NS,
}

#: dividing ``unit`` by this literal factor converts it to the value
_DIV_CONVERSIONS = {
    (NS, 1e3): US, (NS, 1_000): US,
    (US, 1e3): MS, (US, 1_000): MS,
    (US, 1e6): S, (US, 1_000_000): S,
    (MS, 1e3): S, (MS, 1_000): S,
    (NS, 1e9): S, (NS, 1_000_000_000): S,
}

#: builtins that return the unit of their arguments
_PROPAGATING_BUILTINS = frozenset(
    {"min", "max", "abs", "float", "int", "round", "sum", "sorted", "list", "tuple"}
)

#: method names that return the unit of their receiver (array plumbing)
_PROPAGATING_METHODS = frozenset(
    {"tolist", "item", "sum", "max", "min", "mean", "copy", "astype", "ravel"}
)

#: ``np.<fn>(x, ...)`` that return the unit of their first argument
_PROPAGATING_NP_FUNCS = frozenset(
    {
        "array", "asarray", "sort", "cumsum", "concatenate", "repeat",
        "minimum", "maximum", "clip", "abs", "where", "diff", "append",
    }
)

#: ``np.<fn>(...)`` producing contentless/zero arrays (unit-free)
_NUMBER_NP_FUNCS = frozenset({"empty", "zeros", "ones", "full", "arange", "linspace"})

#: dimensionless module constants (``math.inf`` etc.)
_NUMBER_CONSTANTS = frozenset({"inf", "nan", "e", "pi", "tau"})


def _name_unit(identifier: str) -> str:
    lowered = identifier.lower()
    if lowered in _KNOWN_US_NAMES:
        return US
    for suffix, unit in _SUFFIXES:
        if lowered.endswith(suffix):
            return unit
    return BARE


def _combine(units: list[str]) -> str:
    """Unit of a container/reduction over ``units`` (NUMBER is neutral)."""
    known = [u for u in units if u != NUMBER]
    if not known:
        return NUMBER
    first = known[0]
    return first if all(u == first for u in known) else BARE


def _const_factor(node: ast.expr) -> float | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return float(node.value)
    return None


def infer_unit(node: ast.expr) -> str:
    """Best-effort unit of ``node``: a time unit, NUMBER, or BARE."""
    if isinstance(node, ast.Constant):
        if node.value is None or isinstance(node.value, (int, float, bool)):
            return NUMBER
        return BARE
    if isinstance(node, ast.Name):
        return _name_unit(node.id)
    if isinstance(node, ast.Attribute):
        if node.attr in _NUMBER_CONSTANTS and isinstance(node.value, ast.Name):
            return NUMBER
        return _name_unit(node.attr)
    if isinstance(node, ast.Subscript):
        sl = node.slice
        if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
            key_unit = _name_unit(sl.value)
            if key_unit != BARE:
                return key_unit
        return infer_unit(node.value)
    if isinstance(node, ast.UnaryOp):
        return infer_unit(node.operand)
    if isinstance(node, ast.BinOp):
        return _binop_unit(node)
    if isinstance(node, ast.IfExp):
        return _combine([infer_unit(node.body), infer_unit(node.orelse)])
    if isinstance(node, ast.BoolOp):
        return _combine([infer_unit(v) for v in node.values])
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return _combine([infer_unit(e) for e in node.elts])
    if isinstance(node, ast.Dict):
        return _combine([infer_unit(v) for v in node.values if v is not None])
    if isinstance(node, ast.DictComp):
        return infer_unit(node.value)
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
        return infer_unit(node.elt)
    if isinstance(node, ast.Starred):
        return infer_unit(node.value)
    if isinstance(node, ast.Call):
        return _call_unit(node)
    return BARE


def _binop_unit(node: ast.BinOp) -> str:
    left, right = infer_unit(node.left), infer_unit(node.right)
    if isinstance(node.op, (ast.Add, ast.Sub)):
        if left == NUMBER:
            return right
        if right == NUMBER:
            return left
        return left if left == right else BARE
    if isinstance(node.op, ast.Mult):
        times = [u for u in (left, right) if u in _TIME_UNITS]
        if len(times) == 1:
            unit = times[0]
            other = node.right if left == unit else node.left
            factor = _const_factor(other)
            if factor is not None:
                return _MUL_CONVERSIONS.get((unit, factor), unit)
            return unit  # dimensionless scaling (count * per-op time)
        if not times:
            return _combine([left, right])
        return BARE  # time * time is not a time
    if isinstance(node.op, ast.Div):
        if left in _TIME_UNITS:
            factor = _const_factor(node.right)
            if factor is not None:
                return _DIV_CONVERSIONS.get((left, factor), left)
            if right in _TIME_UNITS:
                return NUMBER if left == right else BARE
            return left  # time / dimensionless count
        if left == NUMBER and right == NUMBER:
            return NUMBER
        return BARE
    return BARE


def _call_unit(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        if func.id in _PROPAGATING_BUILTINS:
            return _combine([infer_unit(a) for a in node.args]) if node.args else NUMBER
        if func.id == "field":  # dataclasses.field: unit of its default
            for kw in node.keywords:
                if kw.arg == "default":
                    return infer_unit(kw.value)
            return NUMBER
        return _name_unit(func.id)
    if isinstance(func, ast.Attribute):
        base = func.value
        if isinstance(base, ast.Name) and base.id in ("np", "numpy"):
            if func.attr in _NUMBER_NP_FUNCS:
                return NUMBER
            if func.attr in _PROPAGATING_NP_FUNCS and node.args:
                return infer_unit(node.args[0])
            return BARE
        if func.attr in ("reduceat", "reduce", "accumulate") and node.args:
            # ufunc methods (np.maximum.reduceat, ...): data is args[0]
            return infer_unit(node.args[0])
        if func.attr == "exponential" and node.args:
            # rng.exponential(scale): the scale parameter carries the unit
            return infer_unit(node.args[0])
        if func.attr in _PROPAGATING_METHODS:
            return infer_unit(base)
        return _name_unit(func.attr)
    return BARE


def _describe(unit: str) -> str:
    if unit in _TIME_UNITS:
        return f"a {unit!r}-suffixed (non-microsecond) value"
    return "of unprovable unit (no _us suffix)"


class UnitHygieneRule(Rule):
    """R001: values reaching microsecond sinks must provably be microseconds."""

    code = "R001"
    summary = (
        "a float flowing into a *_us parameter/field/return must come from "
        "a *_us-suffixed name, literal, or correct unit conversion"
    )

    def check(self, module) -> Iterator:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)
            elif isinstance(node, ast.Assign):
                yield from self._check_assign(module, node)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                yield from self._check_target(module, node.target, node.value)
            elif isinstance(node, ast.AugAssign):
                yield from self._check_target(module, node.target, node.value)
            elif isinstance(node, ast.Dict):
                yield from self._check_dict(module, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_returns(module, node)
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_mixed_arithmetic(module, node)

    # ------------------------------------------------------------------
    def _flag(self, module, node, sink: str, unit: str):
        yield self.violation(
            module,
            node,
            f"value flowing into microsecond sink '{sink}' is {_describe(unit)}",
        )

    def _check_value(self, module, sink_name: str, value: ast.expr):
        unit = infer_unit(value)
        if unit not in (US, NUMBER):
            yield from self._flag(module, value, sink_name, unit)

    def _check_call(self, module, node: ast.Call):
        for kw in node.keywords:
            if kw.arg and _name_unit(kw.arg) == US:
                yield from self._check_value(module, kw.arg + "=", kw.value)

    def _check_assign(self, module, node: ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Tuple) and isinstance(node.value, ast.Tuple):
                for t, v in zip(target.elts, node.value.elts):
                    yield from self._check_target(module, t, v)
            else:
                yield from self._check_target(module, target, node.value)

    def _check_target(self, module, target: ast.expr, value: ast.expr):
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name is not None and _name_unit(name) == US:
            yield from self._check_value(module, name, value)

    def _check_dict(self, module, node: ast.Dict):
        for key, value in zip(node.keys, node.values):
            if (
                key is not None
                and isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and _name_unit(key.value) == US
            ):
                yield from self._check_value(module, repr(key.value), value)

    def _check_returns(self, module, func: ast.FunctionDef):
        if _name_unit(func.name) != US:
            return
        for node in ast.walk(func):
            # nested defs keep their own name-based contract
            if isinstance(node, ast.Return) and node.value is not None:
                owner = _enclosing_function(func, node)
                if owner is func:
                    yield from self._check_value(
                        module, f"return of {func.name}()", node.value
                    )

    def _check_mixed_arithmetic(self, module, node: ast.BinOp):
        left, right = infer_unit(node.left), infer_unit(node.right)
        if (
            left in _TIME_UNITS
            and right in _TIME_UNITS
            and left != right
        ):
            yield self.violation(
                module,
                node,
                f"adds/subtracts {left!r} and {right!r} quantities "
                "without a unit conversion",
            )


def _enclosing_function(root: ast.FunctionDef, target: ast.AST):
    """Innermost function of ``root`` containing ``target`` (or root)."""
    owner = root
    stack = [(root, root)]
    while stack:
        current_owner, node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if child is target:
                return current_owner
            next_owner = (
                child
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                else current_owner
            )
            stack.append((next_owner, child))
    return owner
