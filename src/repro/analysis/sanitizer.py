"""Runtime simulation sanitizer (TSan/ASan-style, opt-in).

The :class:`Sanitizer` is threaded through the simulator exactly like
``obs`` / ``faults``: every instrumented component stores it as an
attribute defaulting to ``None`` and pays one ``is not None`` branch per
hook site when disabled.  When enabled it keeps *shadow state* — it does
not trust the bookkeeping of the objects it watches — and checks, on
every step:

* **event-time monotonicity** — the event loop never dispatches an event
  earlier than the current simulated time (``repro.ssd.engine`` clamps
  float residue up to ``TIME_EPSILON``; anything beyond that is a
  corrupted heap or a negative-time bug);
* **resource mutual exclusion** — a :class:`~repro.ssd.engine.Resource`
  (channel bus, die) is never granted to a second job before the
  previous grant's service interval has elapsed (no double-grants);
* **mapping-table bijectivity** — every ``LPN→PPN`` entry has the
  matching ``PPN→LPN`` entry and vice versa, checked incrementally on
  ``bind``/``unbind`` and in full after every GC pass;
* **capacity conservation** — per plane,
  ``live + dead + retired + free == total`` pages, and block-level
  validity counts sum to the live count, after every program, retire and
  GC step.

A failed check raises :class:`SanitizerError` naming the invariant,
with the most recent hook events appended so the report is correlated
with the simulated timeline.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..ssd.engine import Resource
    from ..ssd.ftl.mapping import FlashArrayState, MappingTable, PlaneState

__all__ = ["Sanitizer", "SanitizerError"]

#: float-rounding slack mirrored from ``EventLoop.TIME_EPSILON``
_EPSILON = 1e-9


class SanitizerError(RuntimeError):
    """An invariant the sanitizer watches was violated.

    ``invariant`` is the stable machine-readable name
    (``event-time-monotonicity``, ``resource-mutual-exclusion``,
    ``mapping-bijectivity``, ``capacity-conservation``,
    ``attribution-exact-sum``, ``critpath-exact-sum``).
    """

    def __init__(self, invariant: str, detail: str, trace: list[str]) -> None:
        self.invariant = invariant
        self.detail = detail
        self.trace = list(trace)
        message = f"[{invariant}] {detail}"
        if trace:
            message += "\n  recent events:\n    " + "\n    ".join(trace)
        super().__init__(message)


class Sanitizer:
    """Opt-in invariant checker for one simulation run."""

    __slots__ = (
        "_ring",
        "_clock_us",
        "_resource_free_at",
        "events_checked",
        "grants_checked",
        "mapping_ops",
        "conservation_checks",
        "attribution_checks",
        "critpath_checks",
    )

    def __init__(self, *, history: int = 32) -> None:
        #: ring buffer of recent hook records for trace-correlated reports
        self._ring: deque[str] = deque(maxlen=history)
        self._clock_us = 0.0
        #: shadow grant bookkeeping: id(resource) -> (name, free_at_us)
        self._resource_free_at: dict[int, tuple[str, float]] = {}
        self.events_checked = 0
        self.grants_checked = 0
        self.mapping_ops = 0
        self.conservation_checks = 0
        self.attribution_checks = 0
        self.critpath_checks = 0

    # ------------------------------------------------------------------
    def _record(self, entry: str) -> None:
        self._ring.append(f"t={self._clock_us:.3f}us {entry}")

    def _fail(self, invariant: str, detail: str) -> None:
        raise SanitizerError(invariant, detail, list(self._ring))

    def stats(self) -> dict[str, int]:
        """Counters proving the sanitizer actually ran its checks.

        ``attribution_checks`` / ``critpath_checks`` appear only when
        latency attribution (resp. critical-path extraction) was enabled
        for the run — an unattributed run legitimately performs zero of
        them, and consumers assert every reported counter is positive.
        """
        out = {
            "events_checked": self.events_checked,
            "grants_checked": self.grants_checked,
            "mapping_ops": self.mapping_ops,
            "conservation_checks": self.conservation_checks,
        }
        if self.attribution_checks:
            out["attribution_checks"] = self.attribution_checks
        if self.critpath_checks:
            out["critpath_checks"] = self.critpath_checks
        return out

    def recent_events(self) -> list[str]:
        """The recent-event ring, oldest first (flight-recorder bundles
        embed it so a trap arrives with its immediate history attached)."""
        return list(self._ring)

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def on_event(self, when_us: float, now_us: float) -> None:
        """Called by the loop just before dispatching an event at ``when_us``."""
        self.events_checked += 1
        if when_us < now_us - _EPSILON or when_us < self._clock_us - _EPSILON:
            self._fail(
                "event-time-monotonicity",
                f"event dispatched at t={when_us} but simulated time already "
                f"reached t={max(now_us, self._clock_us)}",
            )
        self._clock_us = max(self._clock_us, when_us)

    # ------------------------------------------------------------------
    # Resources (channel buses, dies)
    # ------------------------------------------------------------------
    def on_grant(self, resource: "Resource", start_us: float, duration_us: float) -> None:
        """Called when ``resource`` grants a job [start_us, start_us+duration_us)."""
        self.grants_checked += 1
        if duration_us < 0:
            self._fail(
                "resource-mutual-exclusion",
                f"{resource.kind} '{resource.name}' granted a negative "
                f"duration ({duration_us})",
            )
        key = id(resource)
        previous = self._resource_free_at.get(key)
        if previous is not None:
            name, free_at_us = previous
            if start_us < free_at_us - _EPSILON:
                self._fail(
                    "resource-mutual-exclusion",
                    f"{resource.kind} '{name}' double-granted: new grant "
                    f"starts at t={start_us} before the previous grant "
                    f"releases at t={free_at_us}",
                )
        self._resource_free_at[key] = (resource.name, start_us + duration_us)
        self._record(
            f"grant {resource.kind}/{resource.name} "
            f"[{start_us:.3f}, {start_us + duration_us:.3f}]"
        )

    # ------------------------------------------------------------------
    # Latency attribution
    # ------------------------------------------------------------------
    def on_attribution(
        self,
        workload_id: int,
        op: str,
        phase_sum_us: float,
        latency_us: float,
        tolerance_us: float,
    ) -> None:
        """Called per recorded request: phases must reproduce the latency."""
        self.attribution_checks += 1
        gap_us = phase_sum_us - latency_us
        if gap_us > tolerance_us or gap_us < -tolerance_us:
            self._fail(
                "attribution-exact-sum",
                f"w{workload_id} {op}: attributed phases sum to "
                f"{phase_sum_us!r}us but the recorded latency is "
                f"{latency_us!r}us (gap {gap_us:g}, tolerance {tolerance_us:g})",
            )
        self._record(f"attribution w{workload_id} {op} {latency_us:.3f}us")

    def on_critpath(
        self,
        covered_us: float,
        makespan_us: float,
        tolerance_us: float,
    ) -> None:
        """Called per bottleneck report: the per-resource critical-path
        times must reproduce the run makespan."""
        self.critpath_checks += 1
        gap_us = covered_us - makespan_us
        if gap_us > tolerance_us or gap_us < -tolerance_us:
            self._fail(
                "critpath-exact-sum",
                f"critical-path segments sum to {covered_us!r}us but the "
                f"run makespan is {makespan_us!r}us (gap {gap_us:g}, "
                f"tolerance {tolerance_us:g})",
            )
        self._record(f"critpath {covered_us:.3f}us over {makespan_us:.3f}us")

    # ------------------------------------------------------------------
    # Mapping table
    # ------------------------------------------------------------------
    def on_bind(self, mapping: "MappingTable", lpn: int, ppn: int) -> None:
        """Called after ``mapping.bind(lpn, ppn)`` committed."""
        self.mapping_ops += 1
        self._record(f"bind lpn={lpn} -> ppn={ppn}")
        if mapping.lookup(lpn) != ppn or mapping.reverse(ppn) != lpn:
            self._fail(
                "mapping-bijectivity",
                f"bind(lpn={lpn}, ppn={ppn}) did not commit symmetrically: "
                f"l2p[{lpn}]={mapping.lookup(lpn)} p2l[{ppn}]={mapping.reverse(ppn)}",
            )

    def on_unbind(self, mapping: "MappingTable", lpn: int, ppn: int) -> None:
        """Called after ``mapping.unbind_ppn(ppn)`` removed ``lpn``."""
        self.mapping_ops += 1
        self._record(f"unbind ppn={ppn} (held lpn={lpn})")
        if mapping.lookup(lpn) is not None or mapping.reverse(ppn) is not None:
            self._fail(
                "mapping-bijectivity",
                f"unbind_ppn({ppn}) left a dangling half-entry: "
                f"l2p[{lpn}]={mapping.lookup(lpn)} p2l[{ppn}]={mapping.reverse(ppn)}",
            )

    def check_mapping(self, mapping: "MappingTable") -> None:
        """Full bijection scan (used after GC passes and in tests)."""
        forward = mapping._l2p  # shadow check reads the raw tables on purpose
        backward = mapping._p2l
        if len(forward) != len(backward):
            self._fail(
                "mapping-bijectivity",
                f"table sizes diverged: {len(forward)} LPN entries vs "
                f"{len(backward)} PPN entries",
            )
        for lpn, ppn in forward.items():
            if backward.get(ppn) != lpn:
                self._fail(
                    "mapping-bijectivity",
                    f"l2p[{lpn}]={ppn} but p2l[{ppn}]={backward.get(ppn)}",
                )

    # ------------------------------------------------------------------
    # Plane capacity conservation
    # ------------------------------------------------------------------
    def check_plane(self, plane: "PlaneState") -> None:
        """Assert ``live + dead + retired + free == total`` for ``plane``."""
        self.conservation_checks += 1
        live, dead = plane.live_pages, plane.dead_pages
        retired, free = plane.retired_pages, plane.free_pages
        total = plane.total_pages
        if live + dead + retired + free != total:
            self._fail(
                "capacity-conservation",
                f"plane {plane.plane_index}: live {live} + dead {dead} + "
                f"retired {retired} + free {free} != total {total}",
            )
        valid_sum = sum(plane.valid_count)
        if valid_sum != live:
            self._fail(
                "capacity-conservation",
                f"plane {plane.plane_index}: per-block valid counts sum to "
                f"{valid_sum} but live_pages is {live}",
            )

    def after_gc(self, state: "FlashArrayState", plane: "PlaneState") -> None:
        """Full sweep after one GC pass: plane conservation + bijection."""
        self._record(f"gc-pass plane={plane.plane_index}")
        self.check_plane(plane)
        self.check_mapping(state.mapping)

    def after_retire(self, state: "FlashArrayState", plane: "PlaneState", block: int) -> None:
        """Sweep after a block retirement committed."""
        self._record(f"retire plane={plane.plane_index} block={block}")
        self.check_plane(plane)
        self.check_mapping(state.mapping)
