"""SSDKeeper — the paper's contribution.

The pipeline, end to end::

    from repro.core import (
        LabelerConfig, StrategySpace, generate_dataset,
        StrategyLearner, ChannelAllocator, SSDKeeper,
    )

    space = StrategySpace(n_channels=8, n_tenants=4)      # 42 strategies
    cfg = LabelerConfig()
    dataset = generate_dataset(500, cfg, seed=1)          # Algorithm 1, data loop
    learner = StrategyLearner(space, activation="logistic")
    learner.train(dataset, optimizer="adam")              # Algorithm 1, training
    keeper = SSDKeeper(ChannelAllocator(learner), cfg.ssd,
                       collect_window_us=100_000,
                       intensity_quantum=cfg.intensity_quantum)
    run = keeper.run(trace)                               # Algorithm 2
"""

from .allocator import ChannelAllocator, OverheadReport, verified_allocate
from .drift import DriftConfig, DriftDetector, DriftEvent
from .evaluation import QualityReport, evaluate_learner, holdout_samples
from .features import N_INTENSITY_LEVELS, FeaturesCollector, FeatureVector, features_of_mix
from .hybrid import PagePolicy, page_modes_for
from .fleethandle import KeeperHandle
from .keeper import KeeperDecision, KeeperRun, PeriodicRun, SSDKeeper
from .online import (
    ReplayBuffer,
    ReplayWindow,
    RetrainConfig,
    RetrainEvent,
    RetrainGovernor,
)
from .labeler import (
    Dataset,
    LabeledSample,
    LabelerConfig,
    best_strategy,
    generate_dataset,
    label_sample,
    random_mix,
    random_specs,
    sweep_strategies,
)
from .learner import LearnerReport, StrategyLearner
from .strategies import Strategy, StrategyKind, StrategySpace, compositions, enumerate_strategies

__all__ = [
    "Strategy",
    "StrategyKind",
    "StrategySpace",
    "compositions",
    "enumerate_strategies",
    "N_INTENSITY_LEVELS",
    "FeatureVector",
    "FeaturesCollector",
    "features_of_mix",
    "PagePolicy",
    "page_modes_for",
    "Dataset",
    "LabeledSample",
    "LabelerConfig",
    "best_strategy",
    "generate_dataset",
    "label_sample",
    "random_mix",
    "random_specs",
    "sweep_strategies",
    "QualityReport",
    "evaluate_learner",
    "holdout_samples",
    "LearnerReport",
    "StrategyLearner",
    "ChannelAllocator",
    "OverheadReport",
    "verified_allocate",
    "KeeperDecision",
    "KeeperRun",
    "PeriodicRun",
    "SSDKeeper",
    "KeeperHandle",
    "DriftConfig",
    "DriftDetector",
    "DriftEvent",
    "ReplayBuffer",
    "ReplayWindow",
    "RetrainConfig",
    "RetrainEvent",
    "RetrainGovernor",
]
