"""Channel allocator (Section IV-D) and verified allocation.

The inference-side component that lives in the FTL: takes the features
collector's vector, runs one forward pass of the trained network, and emits
the channel allocation to apply.  Also reproduces the paper's overhead
arithmetic — storage is 16 bytes per neuron (weight + bias), compute is
``sum(N_i * N_{i+1})`` float multiplies per decision — which for the 9-64-42
network is 1,696 bytes and 3,264 multiplies: negligible for an SSD
controller.

:func:`verified_allocate` is a hardening extension beyond the paper: the
network proposes its top-k strategies, the FTL replays the just-observed
request window through the fast latency model under each candidate, and
deploys the measured best.  A handful of millisecond-scale replays per
decision converts the model's rare catastrophic mispredictions (a 42-class
argmax can land on an overloading split) into near-optimal picks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..ssd.config import SSDConfig
from ..ssd.fastmodel import fast_simulate
from ..ssd.request import IORequest
from .features import FeatureVector
from .hybrid import PagePolicy, page_modes_for
from .learner import StrategyLearner
from .strategies import Strategy

__all__ = ["OverheadReport", "ChannelAllocator", "verified_allocate"]


@dataclass(frozen=True)
class OverheadReport:
    """The Section IV-D cost model of running the allocator in the FTL."""

    storage_bytes: int
    multiplies_per_inference: int
    layer_sizes: tuple[int, ...]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        arch = "->".join(str(s) for s in self.layer_sizes)
        return (
            f"allocator overhead: {self.storage_bytes} B storage, "
            f"{self.multiplies_per_inference} multiplies per decision ({arch})"
        )


class ChannelAllocator:
    """Well-trained model + strategy vocabulary, deployed for inference."""

    def __init__(self, learner: StrategyLearner) -> None:
        self.learner = learner
        self.space = learner.space
        #: decision log: (features, chosen strategy) pairs, newest last
        self.decisions: list[tuple[FeatureVector, Strategy]] = []

    def allocate(self, features: FeatureVector) -> Strategy:
        """Pick the allocation strategy for the observed mixed workload."""
        if features.n_tenants != self.space.n_tenants:
            raise ValueError(
                f"features describe {features.n_tenants} tenants, allocator "
                f"is trained for {self.space.n_tenants}"
            )
        strategy = self.learner.predict(features)
        self.decisions.append((features, strategy))
        return strategy

    def channel_sets(self, features: FeatureVector) -> dict[int, list[int]]:
        """Allocate and expand to concrete per-tenant channel sets."""
        strategy = self.allocate(features)
        return strategy.channel_sets(
            self.space.n_channels, features.write_dominated()
        )

    def adopt(self, learner: StrategyLearner) -> None:
        """Swap the live model for ``learner`` (a promoted candidate).

        The strategy vocabulary must be shape-identical — class indices
        are the network's output layout, so a different space would
        silently remap every prediction.
        """
        if (
            learner.space.n_channels != self.space.n_channels
            or learner.space.n_tenants != self.space.n_tenants
        ):
            raise ValueError(
                f"candidate is trained for {learner.space.n_channels} channels"
                f"/{learner.space.n_tenants} tenants, allocator serves "
                f"{self.space.n_channels}/{self.space.n_tenants}"
            )
        self.learner = learner

    def prediction_health(self, features: FeatureVector) -> str | None:
        """Sanity-check one inference; returns the problem or ``None`` if OK.

        The keeper calls this before trusting :meth:`allocate` so a degraded
        network (NaN weights after a botched checkpoint load, saturated
        scaler, out-of-range argmax) triggers graceful fallback instead of
        deploying garbage.  Pure probe: nothing is appended to the decision
        log.
        """
        x = features.to_array()
        if not np.all(np.isfinite(x)):
            return "non-finite feature vector"
        scaled = self.learner.scaler.transform(x[None, :])
        if not np.all(np.isfinite(scaled)):
            return "non-finite scaled features"
        logits = self.learner.network.forward(scaled)[0]
        if not np.all(np.isfinite(logits)):
            return "non-finite network output"
        index = int(np.argmax(logits))
        if not 0 <= index < len(self.space):
            return f"predicted class {index} outside strategy space"
        return None

    def top_k(self, features: FeatureVector, k: int) -> list[Strategy]:
        """The k most likely strategies by network logit, best first."""
        if k < 1:
            raise ValueError("k must be >= 1")
        x = self.learner.scaler.transform(features.to_array()[None, :])
        logits = self.learner.network.forward(x)[0]
        order = np.argsort(-logits)[: min(k, len(self.space))]
        return [self.space[int(i)] for i in order]

    def overhead_report(self, bytes_per_neuron: int = 16) -> OverheadReport:
        """The paper's storage/compute cost estimate for this network."""
        net = self.learner.network
        return OverheadReport(
            storage_bytes=net.storage_bytes(bytes_per_neuron),
            multiplies_per_inference=net.forward_multiplies(),
            layer_sizes=tuple(net.layer_sizes),
        )


def verified_allocate(
    allocator: ChannelAllocator,
    features: FeatureVector,
    window: Sequence[IORequest],
    config: SSDConfig,
    *,
    top_k: int = 3,
    page_policy: PagePolicy = PagePolicy.HYBRID,
    faults=None,
) -> Strategy:
    """Pick among the network's top-k strategies by replaying the window.

    Each candidate's channel sets are evaluated with the vectorised fast
    model on the requests actually observed during the collection window;
    the strategy with the lowest mean-read + mean-write latency wins.  The
    decision (with the verified winner) is appended to the allocator's log.
    """
    if not window:
        return allocator.allocate(features)
    candidates = allocator.top_k(features, top_k)
    write_dominated = features.write_dominated()
    page_modes = page_modes_for(page_policy, features)
    best: Strategy | None = None
    best_cost = float("inf")
    for strategy in candidates:
        sets = strategy.channel_sets(config.channels, write_dominated)
        result = fast_simulate(list(window), config, sets, page_modes, faults=faults)
        cost = result.write.mean_us + result.read.mean_us
        if cost < best_cost:
            best_cost = cost
            best = strategy
    assert best is not None
    allocator.decisions.append((features, best))
    return best
