"""Workload-drift detection over the keeper's per-window signal stream.

The periodic keeper re-decides every collection window, but the model it
consults was trained offline: under workload drift (a migrating hotspot,
a tenant changing phase, a noisy neighbour ramping up) its predictions go
stale silently.  The decision log already carries the signal needed to
notice — the per-window feature vectors and the predicted-vs-realised
latency residuals — so this module watches both streams:

* **residual drift** — a Page–Hinkley test on the relative prediction
  residual ``(realised - predicted) / predicted``.  The cumulative
  deviation above the running mean (minus a tolerance ``residual_delta``)
  is tracked against its running minimum; when the gap exceeds
  ``residual_threshold`` the model is systematically under-predicting
  and an alarm fires.
* **feature drift** — a windowed mean-shift test on the feature stream.
  The first ``feature_window`` windows after an anchor freeze a reference
  mean/std per dimension; the rolling mean of the last ``feature_window``
  windows is compared against it, normalised per dimension, and an alarm
  fires when any dimension shifts by more than ``feature_threshold``
  reference deviations.

Both alarms **re-anchor** the detector (the post-drift distribution
becomes the new baseline) and share a cooldown so one drift episode is
reported once, not once per window.  The detector is pure computation —
no RNG, no clocks, no observability access — so two runs over the same
stream produce byte-identical event lists; the keeper owns the
``drift.*`` counters and ``drift_detected`` trace events.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = ["DriftConfig", "DriftEvent", "DriftDetector"]


@dataclass(frozen=True)
class DriftConfig:
    """Tuning knobs of the per-window drift detector."""

    #: windows to observe after an anchor before any alarm may fire
    min_windows: int = 4
    #: Page–Hinkley tolerance: residual excursions below this magnitude
    #: (in relative-residual units) accumulate nothing
    residual_delta: float = 0.05
    #: Page–Hinkley alarm threshold on the cumulative excess
    residual_threshold: float = 0.6
    #: windows per block for the feature mean-shift comparison
    feature_window: int = 3
    #: alarm threshold in per-dimension reference deviations
    feature_threshold: float = 3.0
    #: windows after an alarm during which further alarms are suppressed
    cooldown_windows: int = 2
    #: consecutive unhealthy drifted windows before the keeper degrades
    #: to Shared (consumed by :meth:`SSDKeeper.run_adaptive`, not here)
    degrade_after: int = 3
    #: a window is "unhealthy" when its relative residual exceeds this
    #: (realised latency more than ``1 + unhealthy_residual`` times the
    #: prediction); consumed by the keeper's degradation path
    unhealthy_residual: float = 0.5

    def __post_init__(self) -> None:
        if self.min_windows < 1:
            raise ValueError("min_windows must be >= 1")
        if self.residual_delta < 0:
            raise ValueError("residual_delta must be non-negative")
        if self.residual_threshold <= 0:
            raise ValueError("residual_threshold must be positive")
        if self.feature_window < 1:
            raise ValueError("feature_window must be >= 1")
        if self.feature_threshold <= 0:
            raise ValueError("feature_threshold must be positive")
        if self.cooldown_windows < 0:
            raise ValueError("cooldown_windows must be non-negative")
        if self.degrade_after < 1:
            raise ValueError("degrade_after must be >= 1")
        if self.unhealthy_residual <= 0:
            raise ValueError("unhealthy_residual must be positive")


@dataclass(frozen=True)
class DriftEvent:
    """One detected drift episode (also emitted as a trace event)."""

    time_us: float
    window_index: int
    #: ``"residual"`` (Page–Hinkley) or ``"feature"`` (mean shift)
    kind: str
    #: the statistic that crossed (PH excess or max normalised shift)
    statistic: float
    threshold: float

    def to_dict(self) -> dict:
        return {
            "time_us": self.time_us,
            "window_index": self.window_index,
            "kind": self.kind,
            "statistic": self.statistic,
            "threshold": self.threshold,
        }


#: floor added to per-dimension reference deviations so near-constant
#: dimensions (e.g. a tenant's R/W characteristic) don't divide by ~0
_SCALE_FLOOR = 0.05


class DriftDetector:
    """Deterministic drift detector over (features, residual) windows."""

    def __init__(self, config: DriftConfig | None = None) -> None:
        self.config = config if config is not None else DriftConfig()
        #: total windows observed (never reset)
        self.windows = 0
        #: total alarms fired (never reset)
        self.detections = 0
        self.residual_alarms = 0
        self.feature_alarms = 0
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Re-anchor: the next windows define a fresh baseline."""
        cfg = self.config
        # Page–Hinkley state over the residual stream
        self._res_n = 0
        self._res_mean = 0.0
        self._res_cum = 0.0
        self._res_min = 0.0
        # feature mean-shift state
        self._ref_block: list[np.ndarray] = []
        self._ref_mean: np.ndarray | None = None
        self._ref_scale: np.ndarray | None = None
        self._recent: deque[np.ndarray] = deque(maxlen=cfg.feature_window)
        self._since_anchor = 0
        self._cooldown = 0

    # ------------------------------------------------------------------
    def _update_residual(self, residual: float) -> float:
        """Advance the Page–Hinkley statistic; returns the current excess."""
        self._res_n += 1
        self._res_mean += (residual - self._res_mean) / self._res_n
        self._res_cum += residual - self._res_mean - self.config.residual_delta
        self._res_min = min(self._res_min, self._res_cum)
        return self._res_cum - self._res_min

    def _update_features(self, x: np.ndarray) -> float | None:
        """Advance the mean-shift blocks; returns the shift statistic
        once both the reference and the recent block are full."""
        cfg = self.config
        if self._ref_mean is None:
            self._ref_block.append(x)
            if len(self._ref_block) == cfg.feature_window:
                block = np.vstack(self._ref_block)
                self._ref_mean = block.mean(axis=0)
                self._ref_scale = block.std(axis=0) + _SCALE_FLOOR
                self._ref_block = []
            return None
        self._recent.append(x)
        if len(self._recent) < cfg.feature_window:
            return None
        recent_mean = np.vstack(list(self._recent)).mean(axis=0)
        shifts = np.abs(recent_mean - self._ref_mean) / self._ref_scale
        return float(shifts.max())

    # ------------------------------------------------------------------
    def update(
        self,
        time_us: float,
        features: np.ndarray,
        residual: float | None,
    ) -> list[DriftEvent]:
        """Feed one window; returns the drift events it triggered.

        ``features`` is the window's feature vector as an array;
        ``residual`` is the relative prediction residual of the strategy
        deployed during the window (``None`` when no prediction exists
        yet, e.g. the first window).
        """
        cfg = self.config
        self.windows += 1
        self._since_anchor += 1
        window_index = self.windows - 1

        ph_excess = (
            self._update_residual(float(residual)) if residual is not None else 0.0
        )
        shift = self._update_features(np.asarray(features, dtype=float))

        if self._cooldown > 0:
            self._cooldown -= 1
            return []
        if self._since_anchor < cfg.min_windows:
            return []

        events: list[DriftEvent] = []
        if residual is not None and ph_excess > cfg.residual_threshold:
            events.append(
                DriftEvent(
                    time_us=time_us,
                    window_index=window_index,
                    kind="residual",
                    statistic=ph_excess,
                    threshold=cfg.residual_threshold,
                )
            )
            self.residual_alarms += 1
        if shift is not None and shift > cfg.feature_threshold:
            events.append(
                DriftEvent(
                    time_us=time_us,
                    window_index=window_index,
                    kind="feature",
                    statistic=shift,
                    threshold=cfg.feature_threshold,
                )
            )
            self.feature_alarms += 1
        if events:
            self.detections += len(events)
            self.reset()
            self._cooldown = cfg.cooldown_windows
        return events
