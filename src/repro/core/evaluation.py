"""Learner quality evaluation in the units that matter: latency regret.

Exact-match accuracy under-sells a strategy learner when many allocations
are near-equivalent: predicting a strategy 1 % slower than the optimum is a
miss for accuracy but a non-event for tenants.  This module evaluates a
trained learner on *labelled samples that carry their full sweep results*
(:class:`~repro.core.labeler.LabeledSample`), reporting

* exact top-1 accuracy against the recorded labels,
* top-k accuracy from the network's logits,
* the latency **regret** distribution — predicted strategy's total latency
  over the optimal one, per sample — and the fraction of predictions within
  an ε band of optimal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.metrics import top_k_accuracy
from .labeler import LabeledSample, LabelerConfig, label_sample
from .learner import StrategyLearner
from .strategies import StrategySpace

__all__ = ["QualityReport", "evaluate_learner", "holdout_samples"]


@dataclass(frozen=True)
class QualityReport:
    """Deployment-quality summary of a strategy learner."""

    n_samples: int
    top1_accuracy: float
    top3_accuracy: float
    top5_accuracy: float
    mean_regret: float
    median_regret: float
    p95_regret: float
    worst_regret: float
    within_5pct: float
    within_10pct: float

    def rows(self) -> list[list[str]]:
        """Table rows for the reporting helpers."""
        return [
            ["samples", str(self.n_samples)],
            ["top-1 accuracy", f"{self.top1_accuracy:.1%}"],
            ["top-3 accuracy", f"{self.top3_accuracy:.1%}"],
            ["top-5 accuracy", f"{self.top5_accuracy:.1%}"],
            ["mean regret", f"{self.mean_regret:.3f}"],
            ["median regret", f"{self.median_regret:.3f}"],
            ["p95 regret", f"{self.p95_regret:.3f}"],
            ["worst regret", f"{self.worst_regret:.2f}"],
            ["within 5% of optimal", f"{self.within_5pct:.1%}"],
            ["within 10% of optimal", f"{self.within_10pct:.1%}"],
        ]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "; ".join(f"{k}={v}" for k, v in self.rows())


def holdout_samples(
    config: LabelerConfig,
    space: StrategySpace,
    n_samples: int,
    *,
    seed: int = 987,
) -> list[LabeledSample]:
    """Fresh labelled samples (with sweep results) for evaluation.

    Uses a seed stream disjoint from the training dataset's so the samples
    are genuinely held out.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    rng = np.random.default_rng(seed)
    return [label_sample(config, rng, space) for _ in range(n_samples)]


def evaluate_learner(
    learner: StrategyLearner,
    samples: list[LabeledSample],
) -> QualityReport:
    """Score ``learner`` on labelled samples that carry sweep latencies."""
    if not samples:
        raise ValueError("need at least one sample")
    features = np.vstack([s.features.to_array() for s in samples])
    labels = np.array([s.label for s in samples])
    totals = np.vstack([s.total_latencies_us for s in samples])

    scaled = learner.scaler.transform(features)
    logits = learner.network.forward(scaled)
    predictions = logits.argmax(axis=1)

    regret = totals[np.arange(len(samples)), predictions] / totals.min(axis=1)
    return QualityReport(
        n_samples=len(samples),
        top1_accuracy=float((predictions == labels).mean()),
        top3_accuracy=top_k_accuracy(logits, labels, 3),
        top5_accuracy=top_k_accuracy(logits, labels, 5),
        mean_regret=float(regret.mean()),
        median_regret=float(np.median(regret)),
        p95_regret=float(np.percentile(regret, 95)),
        worst_regret=float(regret.max()),
        within_5pct=float((regret <= 1.05).mean()),
        within_10pct=float((regret <= 1.10).mean()),
    )
