"""Features collector (Section IV-B / V-A).

The collector watches the mixed request stream over a window and produces
the paper's nine-dimensional feature vector (for four tenants):

* **overall intensity level** (1-D) — total request count over the window,
  quantised into twenty levels;
* **R/W characteristic of each workload** (4-D) — 0 for write-dominated,
  1 for read-dominated;
* **request proportion of each workload** (4-D) — each tenant's share of
  the merged request count; the shares sum to 1.

Example from the paper: ``[5] [1, 0, 1, 0] [0.1, 0.2, 0.3, 0.4]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ssd.request import IORequest
from ..workloads.mixer import MixedWorkload

__all__ = ["FeatureVector", "FeaturesCollector", "features_of_mix", "N_INTENSITY_LEVELS"]

#: The paper divides overall intensity into twenty levels.
N_INTENSITY_LEVELS = 20


@dataclass(frozen=True)
class FeatureVector:
    """The 2n+1-dimensional input of the strategy learner."""

    intensity_level: int
    #: per tenant: 0 = write-dominated, 1 = read-dominated
    characteristics: tuple[int, ...]
    #: per tenant: share of total requests, sums to ~1
    proportions: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.characteristics) != len(self.proportions):
            raise ValueError("characteristics and proportions must align")
        if not 0 <= self.intensity_level < N_INTENSITY_LEVELS:
            raise ValueError(
                f"intensity level {self.intensity_level} outside "
                f"[0, {N_INTENSITY_LEVELS})"
            )
        if any(c not in (0, 1) for c in self.characteristics):
            raise ValueError("characteristics must be 0 (write) or 1 (read)")
        if any(p < 0 for p in self.proportions):
            raise ValueError("proportions must be non-negative")
        total = sum(self.proportions)
        if total > 0 and abs(total - 1.0) > 1e-6:
            raise ValueError(f"proportions must sum to 1, got {total}")

    @property
    def n_tenants(self) -> int:
        return len(self.characteristics)

    @property
    def dimensions(self) -> int:
        """9 for the paper's four-tenant setting."""
        return 1 + 2 * self.n_tenants

    def write_dominated(self) -> list[bool]:
        """Group membership used by two-part strategies."""
        return [c == 0 for c in self.characteristics]

    def total_write_proportion(self) -> float:
        """Figure 6's Y axis: summed shares of the write-dominated tenants."""
        return sum(
            p for c, p in zip(self.characteristics, self.proportions) if c == 0
        )

    def to_array(self) -> np.ndarray:
        """Flatten to the network's input layout: [level, chars..., props...]."""
        return np.array(
            [float(self.intensity_level), *map(float, self.characteristics), *self.proportions]
        )

    @classmethod
    def from_array(cls, data: np.ndarray, n_tenants: int) -> "FeatureVector":
        data = np.asarray(data, dtype=float).ravel()
        if data.size != 1 + 2 * n_tenants:
            raise ValueError(
                f"expected {1 + 2 * n_tenants} dims for {n_tenants} tenants, "
                f"got {data.size}"
            )
        return cls(
            intensity_level=int(round(data[0])),
            characteristics=tuple(int(round(v)) for v in data[1 : 1 + n_tenants]),
            proportions=tuple(data[1 + n_tenants :]),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        chars = ",".join(str(c) for c in self.characteristics)
        props = ",".join(f"{p:.2f}" for p in self.proportions)
        return f"[{self.intensity_level}] [{chars}] [{props}]"


class FeaturesCollector:
    """Online per-window statistics over the mixed request stream.

    ``intensity_quantum`` is the request count per intensity level: a window
    with ``total`` requests lands in level ``min(total // quantum, 19)``.
    The experiments derive the quantum from the trace scale so the observed
    mixes span all twenty levels.
    """

    def __init__(self, n_tenants: int, *, intensity_quantum: float) -> None:
        if n_tenants < 1:
            raise ValueError("need at least one tenant")
        if intensity_quantum <= 0:
            raise ValueError("intensity_quantum must be positive")
        self.n_tenants = n_tenants
        self.intensity_quantum = intensity_quantum
        self._reads = [0] * n_tenants
        self._writes = [0] * n_tenants

    # ------------------------------------------------------------------
    def observe(self, request: IORequest) -> None:
        """Record one submitted request."""
        wid = request.workload_id
        if not 0 <= wid < self.n_tenants:
            raise ValueError(f"workload id {wid} outside [0, {self.n_tenants})")
        if request.is_read:
            self._reads[wid] += 1
        else:
            self._writes[wid] += 1

    @property
    def total_observed(self) -> int:
        return sum(self._reads) + sum(self._writes)

    def reset(self) -> None:
        self._reads = [0] * self.n_tenants
        self._writes = [0] * self.n_tenants

    # ------------------------------------------------------------------
    def collect(self) -> FeatureVector:
        """Produce the feature vector for the current window."""
        total = self.total_observed
        if total == 0:
            raise RuntimeError("no requests observed in this window")
        level = min(int(total / self.intensity_quantum), N_INTENSITY_LEVELS - 1)
        characteristics = []
        proportions = []
        for wid in range(self.n_tenants):
            reads, writes = self._reads[wid], self._writes[wid]
            # A tenant with no traffic defaults to read-dominated (harmless:
            # its proportion is 0 so allocation barely depends on it).
            characteristics.append(0 if writes > reads else 1)
            proportions.append((reads + writes) / total)
        # Normalise away float dust so the invariant sum==1 holds exactly.
        scale = sum(proportions)
        proportions = [p / scale for p in proportions]
        return FeatureVector(
            intensity_level=level,
            characteristics=tuple(characteristics),
            proportions=tuple(proportions),
        )


def features_of_mix(
    mixed: MixedWorkload, *, intensity_quantum: float
) -> FeatureVector:
    """Feature vector of a whole pre-built mixed workload."""
    collector = FeaturesCollector(
        mixed.n_tenants, intensity_quantum=intensity_quantum
    )
    for request in mixed.requests:
        collector.observe(request)
    return collector.collect()
