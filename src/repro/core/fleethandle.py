"""Per-device keeper handle for fleet composition.

A fleet runs one SSDKeeper-shaped decision maker per device, but fleet
scenarios must stay cheap and deterministic even when no trained model is
available.  :class:`KeeperHandle` is the thin per-device surface the fleet
observability plane reads: it owns the device's current channel allocation,
optionally wraps a live :class:`~repro.core.allocator.ChannelAllocator`
(running the same ``prediction_health`` probe + graceful-fallback protocol
as :class:`~repro.core.keeper.SSDKeeper`), and publishes its health into
the device's metrics registry so :class:`repro.obs.fleet.FleetRegistry`
can roll device health up fleet-wide.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["KeeperHandle"]


class KeeperHandle:
    """One device's keeper state, as seen by the fleet.

    Parameters
    ----------
    device_id:
        index of the device in the fleet.
    channel_sets:
        the allocation currently deployed on the device
        (workload id -> channel list).
    allocator:
        optional live :class:`~repro.core.allocator.ChannelAllocator`.
        Without one the handle is a static keeper: it keeps the deployed
        allocation, reports healthy, and never falls back.
    strategy_label:
        paper-style label of the deployed strategy (``"Shared"``, ``"7:1"``,
        ...) — carried into fleet reports.
    """

    __slots__ = (
        "device_id", "channel_sets", "allocator", "strategy_label",
        "decisions", "fallbacks", "healthy", "last_problem",
    )

    def __init__(
        self,
        device_id: int,
        channel_sets: Mapping[int, Sequence[int]],
        *,
        allocator=None,
        strategy_label: str = "Shared",
    ) -> None:
        if device_id < 0:
            raise ValueError("device_id must be non-negative")
        if not channel_sets:
            raise ValueError("channel_sets must name at least one workload")
        self.device_id = device_id
        self.channel_sets = {wid: list(chs) for wid, chs in channel_sets.items()}
        self.allocator = allocator
        self.strategy_label = strategy_label
        #: number of allocation decisions taken (0 for a static handle)
        self.decisions = 0
        #: number of decisions that fell back to the deployed allocation
        #: because the model failed its health probe
        self.fallbacks = 0
        #: last health-probe verdict (True until a probe fails)
        self.healthy = True
        #: the most recent health-probe problem string, if any
        self.last_problem: str | None = None

    def decide(self, features) -> Mapping[int, Sequence[int]]:
        """Run one allocation decision; returns the (possibly new) sets.

        Mirrors the keeper's inference protocol: probe
        ``prediction_health`` first and keep the deployed allocation on
        any problem (graceful fallback), otherwise deploy the model's
        choice.  A static handle (no allocator) always keeps its sets.
        """
        self.decisions += 1
        if self.allocator is None:
            return self.channel_sets
        problem = self.allocator.prediction_health(features)
        if problem is not None:
            self.fallbacks += 1
            self.healthy = False
            self.last_problem = problem
            return self.channel_sets
        self.healthy = True
        strategy = self.allocator.allocate(features)
        self.strategy_label = strategy.label
        self.channel_sets = {
            wid: list(chs)
            for wid, chs in strategy.channel_sets(
                self.allocator.space.n_channels, features.write_dominated()
            ).items()
        }
        return self.channel_sets

    def publish(self, registry) -> None:
        """Publish keeper health into a device metrics registry.

        Emits ``keeper.prediction_healthy`` (1.0/0.0), the
        ``keeper.fallbacks`` counter and ``keeper.decisions`` — the
        gauges :class:`repro.obs.fleet.FleetRegistry` folds into
        per-device health.
        """
        registry.gauge("keeper.prediction_healthy").set(
            1.0 if self.healthy else 0.0
        )
        registry.counter("keeper.fallbacks").value = self.fallbacks
        registry.counter("keeper.decisions").value = self.decisions

    def summary(self) -> dict:
        """Deterministic dict for fleet reports."""
        return {
            "device": self.device_id,
            "strategy": self.strategy_label,
            "decisions": self.decisions,
            "fallbacks": self.fallbacks,
            "healthy": self.healthy,
        }
