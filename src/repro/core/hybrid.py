"""Hybrid page allocator (Section IV-E).

The policy layer deciding each tenant's page-allocation mode:

* **static** for read-dominated tenants — successive logical pages land on
  different channels/chips, so later sequential reads exploit channel
  parallelism;
* **dynamic** for write-dominated tenants — writes go to whichever
  channel/chip is idle, so they never queue behind a busy die while an idle
  one exists.

``ALL_STATIC`` and ``ALL_DYNAMIC`` are the single-mode baselines used by the
hybrid ablation bench (the paper's "+2.1 % average overall performance"
claim for hybrid).
"""

from __future__ import annotations

import enum
from typing import Sequence

from ..ssd.ftl.page_alloc import PageAllocMode
from .features import FeatureVector

__all__ = ["PagePolicy", "page_modes_for"]


class PagePolicy(enum.Enum):
    """Device-wide page-allocation policy."""

    ALL_STATIC = "all-static"
    ALL_DYNAMIC = "all-dynamic"
    HYBRID = "hybrid"

    @classmethod
    def from_str(cls, text: str) -> "PagePolicy":
        try:
            return cls(text.strip().lower())
        except ValueError:
            raise ValueError(f"unknown page policy {text!r}") from None


def page_modes_for(
    policy: PagePolicy,
    characteristics: Sequence[int] | FeatureVector,
) -> dict[int, PageAllocMode]:
    """Per-tenant page modes under ``policy``.

    ``characteristics`` follows the collector's encoding (0 write-dominated,
    1 read-dominated) or may be a full :class:`FeatureVector`.
    """
    if isinstance(characteristics, FeatureVector):
        characteristics = characteristics.characteristics
    if any(c not in (0, 1) for c in characteristics):
        raise ValueError("characteristics must be 0 (write) or 1 (read)")
    if policy is PagePolicy.ALL_STATIC:
        return {wid: PageAllocMode.STATIC for wid in range(len(characteristics))}
    if policy is PagePolicy.ALL_DYNAMIC:
        return {wid: PageAllocMode.DYNAMIC for wid in range(len(characteristics))}
    return {
        wid: PageAllocMode.STATIC if c == 1 else PageAllocMode.DYNAMIC
        for wid, c in enumerate(characteristics)
    }
