"""SSDKeeper online workflow (Algorithm 2).

One :class:`SSDKeeper` run plays the paper's Algorithm 2 against a trace:

1. **collect phase** (``t < T``): the device runs with the traditional
   *Shared* allocation while the features collector observes every
   submitted request;
2. **decide** (``t == T``): the collector's vector goes through the trained
   channel allocator, producing a strategy;
3. **apply** (``t > T``): the FTL switches to the chosen channel allocation
   and the hybrid page-allocation modes; data written before the switch
   stays where it is (reads keep resolving through the mapping table).

The switch happens *inside* the event-driven simulation via a scheduled
reallocation event, so phase-1 conflicts, in-flight requests across the
boundary, and residual old-channel traffic are all modelled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..ssd.config import SSDConfig
from ..ssd.fastmodel import fast_simulate
from ..ssd.faults import FaultConfig
from ..ssd.metrics import SimulationResult
from ..ssd.request import IORequest, OpType
from ..ssd.simulator import SSDSimulator
from .allocator import ChannelAllocator, verified_allocate
from .drift import DriftConfig, DriftDetector, DriftEvent
from .features import FeaturesCollector, FeatureVector
from .hybrid import PagePolicy, page_modes_for
from .online import ReplayBuffer, ReplayWindow, RetrainConfig, RetrainEvent, RetrainGovernor
from .strategies import Strategy, StrategyKind

__all__ = ["KeeperDecision", "KeeperRun", "PeriodicRun", "SSDKeeper"]


@dataclass
class KeeperDecision:
    """Structured log record of one keeper decision (observability).

    ``predicted_mean_us`` is the fast-model estimate of the chosen
    strategy's mean request latency on the observed window (filled when
    the keeper has the window's requests, i.e. one-shot runs with
    observability attached); ``realised_mean_us`` is the measured mean —
    per adaptation window in periodic runs, over the whole run for the
    one-shot workflow.
    """

    time_us: float
    features: FeatureVector
    strategy: str
    window_requests: int
    predicted_mean_us: float | None = None
    realised_mean_us: float | None = None
    #: non-``None`` when this decision was a graceful degradation (the model
    #: was bypassed); holds the trigger, e.g. ``"unhealthy prediction: ..."``
    fallback_reason: str | None = None

    def to_dict(self) -> dict:
        return {
            "time_us": self.time_us,
            "features": self.features.to_array().tolist(),
            "strategy": self.strategy,
            "window_requests": self.window_requests,
            "predicted_mean_us": self.predicted_mean_us,
            "realised_mean_us": self.realised_mean_us,
            "fallback_reason": self.fallback_reason,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "KeeperDecision":
        """Rebuild a decision from :meth:`to_dict` output (round-trip)."""
        flat = data["features"]
        n_tenants = (len(flat) - 1) // 2
        return cls(
            time_us=data["time_us"],
            features=FeatureVector.from_array(flat, n_tenants),
            strategy=data["strategy"],
            window_requests=data["window_requests"],
            predicted_mean_us=data["predicted_mean_us"],
            realised_mean_us=data["realised_mean_us"],
            fallback_reason=data.get("fallback_reason"),
        )


@dataclass
class KeeperRun:
    """Outcome of one Algorithm-2 run."""

    result: SimulationResult
    features: FeatureVector | None
    strategy: Strategy | None
    switched_at_us: float | None
    #: set when the deployed strategy came from graceful degradation rather
    #: than the model (see :meth:`SSDKeeper._decide`)
    fallback_reason: str | None = None

    @property
    def switched(self) -> bool:
        return self.strategy is not None


@dataclass
class PeriodicRun:
    """Outcome of a periodic (multi-window) adaptation run.

    ``decisions`` holds one ``(time_us, features, strategy)`` triple per
    window in which the keeper re-decided; windows with no traffic are
    skipped (the previous allocation stays).  ``realised_us`` is aligned
    with ``decisions``: entry *i* is the measured mean latency of the
    window that followed decision *i* (``None`` when nothing completed
    in it) — populated whether or not observability is attached.  The
    ``drift_events`` / ``retrain_events`` / degradation fields are only
    populated by adaptive runs (:meth:`SSDKeeper.run_adaptive`).
    """

    result: SimulationResult
    decisions: list[tuple[float, FeatureVector, Strategy]]
    #: per-decision realised mean latency of the following window
    realised_us: list[float | None] = field(default_factory=list)
    drift_events: list[DriftEvent] = field(default_factory=list)
    retrain_events: list[RetrainEvent] = field(default_factory=list)
    #: healthy re-decisions the switch-rate limiter refused to deploy
    suppressed_switches: int = 0
    #: windows decided while degraded to Shared on persistent drift
    degraded_windows: int = 0

    @property
    def switches(self) -> int:
        return len(self.decisions)

    @property
    def retrains(self) -> int:
        return len(self.retrain_events)

    @property
    def promotions(self) -> int:
        return sum(1 for e in self.retrain_events if e.promoted)

    @property
    def rollbacks(self) -> int:
        return sum(1 for e in self.retrain_events if not e.promoted)

    def distinct_strategies(self) -> list[str]:
        seen: list[str] = []
        for _, _, strategy in self.decisions:
            if strategy.label not in seen:
                seen.append(strategy.label)
        return seen


class SSDKeeper:
    """Self-adapting channel allocation over one simulated device."""

    def __init__(
        self,
        allocator: ChannelAllocator,
        config: SSDConfig,
        *,
        collect_window_us: float,
        intensity_quantum: float,
        page_policy: PagePolicy = PagePolicy.HYBRID,
        record_latencies: bool = False,
        verify_top_k: int = 0,
        obs=None,
        faults: FaultConfig | None = None,
        sanitizer=None,
        fallback_error_rate: float = 0.5,
    ) -> None:
        if collect_window_us <= 0:
            raise ValueError("collect_window_us must be positive")
        if verify_top_k < 0:
            raise ValueError("verify_top_k must be non-negative")
        if not 0.0 < fallback_error_rate <= 1.0:
            raise ValueError("fallback_error_rate must be in (0, 1]")
        if config.channels != allocator.space.n_channels:
            raise ValueError(
                f"device has {config.channels} channels, allocator is trained "
                f"for {allocator.space.n_channels}"
            )
        self.allocator = allocator
        self.config = config
        self.collect_window_us = collect_window_us
        self.intensity_quantum = intensity_quantum
        self.page_policy = page_policy
        self.record_latencies = record_latencies
        #: >0 enables verified allocation: the network's top-k candidates
        #: are replayed on the observed window (fast model) and the
        #: measured best is deployed.  Extension beyond the paper.
        self.verify_top_k = verify_top_k
        #: optional :class:`repro.obs.Observability`: decisions are logged
        #: as :class:`KeeperDecision` records, a ``keeper_switch`` trace
        #: event marks each mid-run switch, and the underlying simulator
        #: inherits the same sink.
        self.obs = obs
        #: optional :class:`repro.ssd.faults.FaultConfig` applied to the
        #: underlying device (and to fast-model replays, as an expected-value
        #: derating)
        self.faults = faults
        #: optional :class:`repro.analysis.Sanitizer` threaded into every
        #: simulator this keeper constructs (runtime invariant checking)
        self.sanitizer = sanitizer
        #: graceful-degradation trigger: when the unhealthiest channel's
        #: observed error rate reaches this fraction, the keeper stops
        #: trusting the model and falls back (see :meth:`_decide`)
        self.fallback_error_rate = fallback_error_rate

    # ------------------------------------------------------------------
    def _decide(
        self,
        sim: SSDSimulator,
        features: FeatureVector,
        window_requests: Sequence[IORequest],
        last_good: Strategy | None = None,
    ) -> tuple[Strategy, str | None]:
        """Choose the strategy to deploy, degrading gracefully when needed.

        Two triggers bypass the model entirely: a channel whose observed
        error rate has reached ``fallback_error_rate`` (the window's
        features describe a device the training distribution never saw), and
        an unhealthy forward pass (NaN/out-of-range prediction).  Either way
        the keeper deploys ``last_good`` — the last strategy a healthy
        decision produced — or the traditional Shared allocation when there
        is none, and logs a ``keeper_fallback`` event.

        Returns ``(strategy, fallback_reason)``; ``fallback_reason`` is
        ``None`` on the normal path.
        """
        reason = None
        if sim.faults is not None:
            channel, rate = sim.faults.worst_channel()
            if channel >= 0 and rate >= self.fallback_error_rate:
                reason = (
                    f"channel {channel} error rate {rate:.3f} >= "
                    f"{self.fallback_error_rate:.3f}"
                )
        if reason is None:
            health = self.allocator.prediction_health(features)
            if health is not None:
                reason = f"unhealthy prediction: {health}"
        if reason is not None:
            strategy = (
                last_good if last_good is not None else Strategy(StrategyKind.SHARED)
            )
            if self.obs is not None:
                self.obs.registry.counter("keeper.fallbacks").inc()
                self.obs.trace.emit(
                    sim.loop.now, "keeper_fallback", "keeper", "keeper",
                    args={"strategy": strategy.label, "reason": reason},
                )
            return strategy, reason
        if self.verify_top_k:
            strategy = verified_allocate(
                self.allocator,
                features,
                window_requests,
                self.config,
                top_k=self.verify_top_k,
                page_policy=self.page_policy,
                faults=self.faults,
            )
        else:
            strategy = self.allocator.allocate(features)
        return strategy, None

    # ------------------------------------------------------------------
    def run(self, requests: Iterable[IORequest]) -> KeeperRun:
        """Play Algorithm 2 over ``requests``; returns latencies + decision."""
        n_tenants = self.allocator.space.n_tenants
        collector = FeaturesCollector(
            n_tenants, intensity_quantum=self.intensity_quantum
        )
        window_end = self.collect_window_us
        observing = True
        window_requests: list[IORequest] = []

        keep_window = bool(self.verify_top_k) or self.obs is not None

        def on_submit(req: IORequest) -> None:
            if observing and req.arrival_us < window_end:
                collector.observe(req)
                if keep_window:
                    window_requests.append(req)

        shared = {
            wid: list(range(self.config.channels)) for wid in range(n_tenants)
        }
        sim = SSDSimulator(
            self.config,
            shared,
            page_modes=None,  # collection phase: traditional static placement
            record_latencies=self.record_latencies,
            on_submit=on_submit,
            obs=self.obs,
            faults=self.faults,
            sanitizer=self.sanitizer,
        )

        decision: dict = {
            "features": None, "strategy": None, "at_us": None, "fallback": None,
        }

        def switch() -> None:
            nonlocal observing
            observing = False
            if collector.total_observed == 0:
                return  # nothing observed: stay on Shared
            features = collector.collect()
            strategy, fallback_reason = self._decide(
                sim, features, window_requests
            )
            channel_sets = strategy.channel_sets(
                self.config.channels, features.write_dominated()
            )
            page_modes = page_modes_for(self.page_policy, features)
            sim.controller.reallocate(channel_sets, page_modes)
            decision["features"] = features
            decision["strategy"] = strategy
            decision["at_us"] = sim.loop.now
            decision["fallback"] = fallback_reason
            if self.obs is not None:
                self._log_decision(
                    sim, features, strategy, channel_sets, page_modes,
                    window_requests, fallback_reason=fallback_reason,
                )

        sim.loop.schedule(window_end, switch)  # repro-lint: disable=R004 (window_end is an absolute pre-run boundary)
        result = sim.run(requests)
        if self.obs is not None and self.obs.decisions:
            # run-level realised latency for the one-shot decision
            last = self.obs.decisions[-1]
            if last.realised_mean_us is None:
                last.realised_mean_us = result.mean_total_us
        return KeeperRun(
            result=result,
            features=decision["features"],
            strategy=decision["strategy"],
            switched_at_us=decision["at_us"],
            fallback_reason=decision["fallback"],
        )

    # ------------------------------------------------------------------
    def _log_decision(
        self,
        sim: SSDSimulator,
        features: FeatureVector,
        strategy: Strategy,
        channel_sets,
        page_modes,
        window_requests: Sequence[IORequest],
        observed: int | None = None,
        fallback_reason: str | None = None,
    ) -> KeeperDecision:
        """Record one decision: trace event + registry + decision log.

        The ``keeper_switch`` trace timestamp is the simulated time the
        reallocation took effect (== ``KeeperRun.switched_at_us``).
        """
        obs = self.obs
        assert obs is not None  # every caller guards on self.obs
        predicted_us = None
        if window_requests:
            replay = fast_simulate(
                list(window_requests), self.config, channel_sets, page_modes,
                faults=self.faults,
            )
            predicted_us = replay.mean_total_us
        record = KeeperDecision(
            time_us=sim.loop.now,
            features=features,
            strategy=strategy.label,
            window_requests=observed if observed is not None else len(window_requests),
            predicted_mean_us=predicted_us,
            fallback_reason=fallback_reason,
        )
        obs.decisions.append(record)
        obs.registry.counter("keeper.switches").inc()
        obs.trace.emit(
            sim.loop.now, "keeper_switch", "keeper", "keeper",
            args={
                "strategy": strategy.label,
                "features": features.to_array().tolist(),
                "predicted_mean_us": predicted_us,
            },
        )
        return record

    # ------------------------------------------------------------------
    def run_periodic(
        self,
        requests: Sequence[IORequest],
        *,
        horizon_us: float | None = None,
        drift: DriftConfig | DriftDetector | None = None,
        retrain: RetrainConfig | None = None,
        switch_gap_windows: int = 0,
        switch_margin: float = 0.1,
    ) -> PeriodicRun:
        """Self-adapt **every** collection window, not just once.

        An extension beyond the paper's one-shot Algorithm 2: at the end of
        each window of ``collect_window_us`` the keeper re-collects the
        window's features, re-runs the allocator, and switches the live FTL
        if the decision changed.  Data stays where it was written; only new
        placements follow each new allocation — exactly the semantics of the
        single switch, repeated.

        ``horizon_us`` bounds the scheduling of adaptation events (defaults
        to the last arrival); the simulation itself always runs to
        completion.

        The optional hardening layer (see :meth:`run_adaptive` for the
        all-on entry point):

        * ``drift`` — a :class:`DriftConfig` (or pre-built
          :class:`DriftDetector`) watches the per-window feature stream
          and the predicted-vs-realised residuals; detections surface as
          ``drift.*`` counters, ``drift_detected`` trace events, and
          :attr:`PeriodicRun.drift_events`.  Persistent drift with
          unhealthy residuals degrades the keeper to Shared (the PR 2
          fallback path) until a promoted retrain or recovered residuals
          lift it.
        * ``retrain`` — a :class:`RetrainConfig` arms the replay buffer
          and the guarded retraining flow: candidates are fine-tuned on
          harvested windows, shadow-validated on held-back ones, and
          promoted or rolled back (``keeper.retrains`` /
          ``keeper.promotions`` / ``keeper.rollbacks``).
        * ``switch_gap_windows`` / ``switch_margin`` — the switch-rate
          limiter: within ``switch_gap_windows`` windows of the last
          switch a *different* healthy decision is deployed only when
          its fast-model win over the incumbent allocation exceeds
          ``switch_margin`` (relative); otherwise the switch is
          suppressed (``keeper.suppressed_switches``) and the incumbent
          stays — hysteresis against allocation thrash.
        """
        requests = list(requests)
        if not requests:
            raise ValueError("run_periodic needs a non-empty trace")
        if switch_gap_windows < 0:
            raise ValueError("switch_gap_windows must be non-negative")
        if switch_margin < 0:
            raise ValueError("switch_margin must be non-negative")
        adaptive = drift is not None or retrain is not None
        detector: DriftDetector | None = None
        if isinstance(drift, DriftDetector):
            detector = drift
        elif adaptive:
            detector = DriftDetector(drift)
        governor: RetrainGovernor | None = None
        buffer: ReplayBuffer | None = None
        if retrain is not None:
            governor = RetrainGovernor(
                self.config, retrain,
                page_policy=self.page_policy, faults=self.faults,
            )
            buffer = ReplayBuffer(retrain.capacity)

        n_tenants = self.allocator.space.n_tenants
        collector = FeaturesCollector(
            n_tenants, intensity_quantum=self.intensity_quantum
        )
        window_requests: list[IORequest] = []
        keep_window = adaptive or bool(self.verify_top_k)

        def on_submit(req: IORequest) -> None:
            collector.observe(req)
            if keep_window:
                window_requests.append(req)

        shared = {
            wid: list(range(self.config.channels)) for wid in range(n_tenants)
        }
        sim = SSDSimulator(
            self.config,
            shared,
            page_modes=None,
            record_latencies=self.record_latencies,
            on_submit=on_submit if keep_window else collector.observe,
            obs=self.obs,
            faults=self.faults,
            sanitizer=self.sanitizer,
        )
        run = PeriodicRun(result=None, decisions=[])  # result filled after sim.run
        last_label: str | None = None
        last_strategy: Strategy | None = None
        last_good: Strategy | None = None
        obs = self.obs
        # Per-window realised latency: cumulative totals at the previous
        # adaptation tick, the obs decision record and the decision index
        # the next delta belongs to, plus adaptive bookkeeping.
        window_state = {
            "total_us": 0.0, "count": 0, "record": None, "pending": None,
            "windows": 0, "predicted_us": None, "last_switch": None,
            "unhealthy": 0, "healthy": 0, "drifted": False, "degraded": False,
        }

        def window_delta_us() -> float | None:
            """Realised mean latency of the window that just ended."""
            reads = sim.acc.op_totals(OpType.READ)
            writes = sim.acc.op_totals(OpType.WRITE)
            total_latency_us = reads.total_us + writes.total_us
            count = reads.count + writes.count
            delta_us = total_latency_us - window_state["total_us"]
            delta_n = count - window_state["count"]
            window_state["total_us"] = total_latency_us
            window_state["count"] = count
            return delta_us / delta_n if delta_n else None

        def settle_window(realised_us: float | None) -> None:
            """Attribute ``realised_us`` to the decision awaiting it."""
            record = window_state["record"]
            if record is not None and realised_us is not None:
                record.realised_mean_us = realised_us
            window_state["record"] = None
            pending = window_state["pending"]
            if pending is not None and realised_us is not None:
                run.realised_us[pending] = realised_us
            window_state["pending"] = None

        def deployed_cost_us(strategy: Strategy, features, window) -> float:
            sets = strategy.channel_sets(
                self.config.channels, features.write_dominated()
            )
            modes = page_modes_for(self.page_policy, features)
            replay = fast_simulate(
                list(window), self.config, sets, modes, faults=self.faults
            )
            return replay.mean_total_us

        def adapt() -> None:
            nonlocal last_label, last_strategy, last_good
            realised_us = window_delta_us()
            settle_window(realised_us)
            # relative residual of the strategy deployed over the window
            residual = None
            predicted_us = window_state["predicted_us"]
            if realised_us is not None and predicted_us:
                residual = (realised_us - predicted_us) / predicted_us
            if collector.total_observed == 0:
                window_requests.clear()
                return
            observed = collector.total_observed
            features = collector.collect()
            collector.reset()
            window = tuple(window_requests)
            window_requests.clear()

            drift_fired = False
            if adaptive:
                widx = window_state["windows"]
                window_state["windows"] = widx + 1
                if buffer is not None and window:
                    buffer.add(ReplayWindow(
                        time_us=sim.loop.now,
                        features=features,
                        deployed=last_label if last_label is not None else "Shared",
                        realised_mean_us=realised_us,
                        requests=window,
                    ))
                events = detector.update(
                    sim.loop.now, features.to_array(), residual
                )
                drift_fired = bool(events)
                if drift_fired:
                    window_state["drifted"] = True
                run.drift_events.extend(events)
                if obs is not None:
                    obs.registry.counter("drift.windows").inc()
                    for event in events:
                        obs.registry.counter("drift.detections").inc()
                        obs.registry.counter(f"drift.{event.kind}_alarms").inc()
                        obs.trace.emit(
                            sim.loop.now, "drift_detected", "keeper", "drift",
                            args=event.to_dict(),
                        )
                self._update_degradation(detector.config, window_state, residual, obs)
                if governor is not None and governor.due(
                    widx, drift_fired or window_state["degraded"]
                ):
                    event = governor.attempt(
                        self.allocator, buffer,
                        time_us=sim.loop.now, window_index=widx,
                    )
                    if event is not None:
                        run.retrain_events.append(event)
                        if obs is not None:
                            obs.registry.counter("keeper.retrains").inc()
                            obs.registry.counter(
                                "keeper.promotions" if event.promoted
                                else "keeper.rollbacks"
                            ).inc()
                            obs.trace.emit(
                                sim.loop.now, "keeper_retrain", "keeper",
                                "keeper", args=event.to_dict(),
                            )
                        if event.promoted:
                            window_state["degraded"] = False
                            window_state["drifted"] = False
                            window_state["unhealthy"] = 0
                            window_state["healthy"] = 0
                            detector.reset()

            if adaptive and window_state["degraded"]:
                run.degraded_windows += 1
                strategy = Strategy(StrategyKind.SHARED)
                fallback_reason = (
                    "persistent drift: residual above "
                    f"{detector.config.unhealthy_residual:g} for "
                    f"{detector.config.degrade_after} consecutive windows"
                )
                if obs is not None:
                    obs.registry.counter("keeper.fallbacks").inc()
                    obs.trace.emit(
                        sim.loop.now, "keeper_fallback", "keeper", "keeper",
                        args={"strategy": strategy.label,
                              "reason": fallback_reason},
                    )
            else:
                strategy, fallback_reason = self._decide(
                    sim, features, window, last_good=last_good
                )
                if fallback_reason is None:
                    last_good = strategy

            switched = strategy.label != last_label
            if (
                adaptive
                and switched
                and fallback_reason is None
                and last_strategy is not None
                and switch_gap_windows > 0
                and window_state["last_switch"] is not None
                and window_state["windows"] - 1 - window_state["last_switch"]
                < switch_gap_windows
                and window
            ):
                # Hysteresis: inside the cooldown a different decision only
                # deploys when its measured fast-model win is large enough.
                incumbent_us = deployed_cost_us(last_strategy, features, window)
                challenger_us = deployed_cost_us(strategy, features, window)
                win = (
                    (incumbent_us - challenger_us) / incumbent_us
                    if incumbent_us > 0 else 0.0
                )
                if win < switch_margin:
                    run.suppressed_switches += 1
                    if obs is not None:
                        obs.registry.counter("keeper.suppressed_switches").inc()
                    strategy = last_strategy
                    switched = False

            run.decisions.append((sim.loop.now, features, strategy))
            run.realised_us.append(None)
            window_state["pending"] = len(run.decisions) - 1
            predicted_us = None
            if adaptive and window:
                predicted_us = deployed_cost_us(strategy, features, window)
            window_state["predicted_us"] = predicted_us
            if obs is not None:
                record = KeeperDecision(
                    time_us=sim.loop.now,
                    features=features,
                    strategy=strategy.label,
                    window_requests=observed,
                    predicted_mean_us=predicted_us,
                    fallback_reason=fallback_reason,
                )
                obs.decisions.append(record)
                window_state["record"] = record
                if switched:
                    obs.registry.counter("keeper.switches").inc()
                    obs.trace.emit(
                        sim.loop.now, "keeper_switch", "keeper", "keeper",
                        args={"strategy": strategy.label,
                              "features": features.to_array().tolist()},
                    )
            if not switched:
                return  # same allocation: nothing to switch
            last_label = strategy.label
            last_strategy = strategy
            if adaptive:
                window_state["last_switch"] = window_state["windows"] - 1
            sim.controller.reallocate(
                strategy.channel_sets(
                    self.config.channels, features.write_dominated()
                ),
                page_modes_for(self.page_policy, features),
            )

        end = horizon_us if horizon_us is not None else max(
            r.arrival_us for r in requests
        )
        t = self.collect_window_us
        while t <= end + self.collect_window_us:
            sim.loop.schedule(t, adapt)  # repro-lint: disable=R004 (absolute pre-run window boundary)
            t += self.collect_window_us
        run.result = sim.run(requests)
        # Tail window: completions after the final adaptation tick would
        # otherwise leave the last decision's realised latency dangling.
        settle_window(window_delta_us())
        return run

    @staticmethod
    def _update_degradation(
        config: DriftConfig, window_state: dict, residual, obs
    ) -> None:
        """Track unhealthy/healthy residual streaks and flip degradation.

        Degradation arms after ``degrade_after`` consecutive unhealthy
        windows *following a drift detection* and disarms after the same
        number of healthy ones (or a promoted retrain, handled by the
        caller) — symmetric hysteresis so one noisy window flips nothing.
        """
        if residual is None:
            return
        if residual > config.unhealthy_residual:
            window_state["unhealthy"] += 1
            window_state["healthy"] = 0
        else:
            window_state["healthy"] += 1
            window_state["unhealthy"] = 0
        if (
            not window_state["degraded"]
            and window_state["drifted"]
            and window_state["unhealthy"] >= config.degrade_after
        ):
            window_state["degraded"] = True
            if obs is not None:
                obs.registry.counter("keeper.degradations").inc()
        elif (
            window_state["degraded"]
            and window_state["healthy"] >= config.degrade_after
        ):
            window_state["degraded"] = False
            window_state["drifted"] = False

    # ------------------------------------------------------------------
    def run_adaptive(
        self,
        requests: Sequence[IORequest],
        *,
        horizon_us: float | None = None,
        drift: DriftConfig | DriftDetector | None = None,
        retrain: RetrainConfig | None = None,
        switch_gap_windows: int = 2,
        switch_margin: float = 0.1,
    ) -> PeriodicRun:
        """Periodic adaptation with the full hardening layer armed.

        Convenience entry point: drift detection, guarded incremental
        retraining, and the switch-rate limiter all default on (pass
        explicit configs to tune them).  See :meth:`run_periodic` for the
        semantics of each knob.
        """
        return self.run_periodic(
            requests,
            horizon_us=horizon_us,
            drift=drift if drift is not None else DriftConfig(),
            retrain=retrain if retrain is not None else RetrainConfig(),
            switch_gap_windows=switch_gap_windows,
            switch_margin=switch_margin,
        )

    # ------------------------------------------------------------------
    def baseline_run(
        self,
        requests: Sequence[IORequest],
        strategy: Strategy,
        features: FeatureVector,
        *,
        page_policy: PagePolicy | None = None,
    ) -> SimulationResult:
        """Run the same trace under one fixed strategy (no adaptation).

        Used by the Figure-5 comparisons: Shared / Isolated baselines with
        the device's default static placement, or SSDKeeper's chosen
        strategy with hybrid placement.
        """
        channel_sets = strategy.channel_sets(
            self.config.channels, features.write_dominated()
        )
        modes = (
            page_modes_for(page_policy, features) if page_policy is not None else None
        )
        sim = SSDSimulator(
            self.config,
            channel_sets,
            page_modes=modes,
            record_latencies=self.record_latencies,
            faults=self.faults,
            sanitizer=self.sanitizer,
        )
        return sim.run(requests)
