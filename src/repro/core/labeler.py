"""Label generation (Algorithm 1, lines 3-8).

For each synthetic mixed workload, run **every** channel-allocation strategy
and record the one with the lowest total (read + write) response latency as
the label.  Repeated over thousands of random mixes this produces the
training set of Section V-B (the paper: 5,000 mixes x 42 strategies =
210,000 simulation records).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable
import zlib

import numpy as np

from ..ssd.config import SSDConfig
from ..ssd.fastmodel import fast_simulate
from ..ssd.metrics import SimulationResult
from ..ssd.simulator import simulate
from ..workloads.mixer import MixedWorkload, synthesize_mix
from ..workloads.spec import WorkloadSpec
from .features import N_INTENSITY_LEVELS, FeatureVector, features_of_mix
from .hybrid import PagePolicy, page_modes_for
from .strategies import StrategySpace

__all__ = [
    "LabelerConfig",
    "LabeledSample",
    "Dataset",
    "sweep_strategies",
    "objective_us",
    "pick_label",
    "best_strategy",
    "random_specs",
    "random_mix",
    "label_sample",
    "generate_dataset",
]

#: engine name -> simulate callable
_ENGINES: dict[str, Callable] = {"fast": fast_simulate, "event": simulate}


@dataclass(frozen=True)
class LabelerConfig:
    """Knobs of the label-generation process.

    ``window_requests_max`` is the merged request count of a top-intensity
    window; the intensity quantum follows as ``window_requests_max / 20`` so
    the twenty feature levels tile the generated range.  ``window_s`` is the
    observation window in simulated seconds; the defaults put the top
    intensity levels near device saturation (where channel conflicts — and
    therefore the choice of allocation strategy — matter most, the regime of
    the paper's Figure 2), while low levels leave the device mostly idle.
    """

    ssd: SSDConfig = field(default_factory=SSDConfig.small)
    n_tenants: int = 4
    window_requests_max: int = 3000
    window_s: float = 0.05
    engine: str = "fast"
    page_policy: PagePolicy = PagePolicy.HYBRID
    #: independent trace replications averaged per label (argmin over the
    #: *mean* total latency), suppressing single-trace noise in the label
    replications: int = 3
    #: indifference band for the label argmin: among strategies within
    #: ``tie_epsilon`` of the minimum total latency, the earliest in the
    #: canonical order wins (Shared, Isolated, two-part, four-part).  Real
    #: sweeps are noisy estimates, so an exact argmin would scatter labels
    #: across statistically indistinguishable strategies; the band collapses
    #: those ties onto the simplest allocation, the one an operator would
    #: deploy.  0 restores the paper's literal argmin.
    tie_epsilon: float = 0.03
    #: vary request-shape nuisance parameters (size/sequentiality/skew) per
    #: sample.  The paper's synthetic recipe keeps them fixed and "mainly
    #: change[s] the read/write characteristics and read/write proportion";
    #: turning this on is the harder, noisier setting used by an ablation.
    vary_shape: bool = False
    #: per-tenant request-share grid.  The paper's own feature examples are
    #: quantised ([0.1, 0.2, 0.3, 0.4]; [0.4, 0.2, 0.2, 0.2]), so shares are
    #: drawn on a 0.05 grid by default; 0 draws continuous Dirichlet shares.
    share_grid: float = 0.05
    #: draw tenants as pure streams (write-dominated = all writes,
    #: read-dominated = all reads), as in the paper's motivation study.
    #: False draws each tenant's write ratio uniformly on the dominated side,
    #: which hides label-relevant state from the features (harder setting).
    pure_ratios: bool = True
    #: the latency objective minimised by the label:
    #: "mean-sum" — mean write latency + mean read latency, the paper's
    #: Figure-2(c) metric ("the sum of write response latency and read
    #: response latency"), which weights the read and write classes equally
    #: regardless of their counts; "total-sum" — count-weighted sum of all
    #: response latencies.
    objective: str = "mean-sum"

    def __post_init__(self) -> None:
        if self.n_tenants < 2:
            raise ValueError("need at least two tenants")
        if self.window_requests_max < N_INTENSITY_LEVELS:
            raise ValueError("window_requests_max must cover the level range")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.replications < 1:
            raise ValueError("replications must be >= 1")
        if self.tie_epsilon < 0:
            raise ValueError("tie_epsilon must be non-negative")
        if self.share_grid < 0 or self.share_grid > 0.25:
            raise ValueError("share_grid must be in [0, 0.25]")
        if self.engine not in _ENGINES:
            raise ValueError(f"engine must be one of {sorted(_ENGINES)}")
        if self.objective not in ("mean-sum", "total-sum"):
            raise ValueError("objective must be 'mean-sum' or 'total-sum'")

    @property
    def intensity_quantum(self) -> float:
        return self.window_requests_max / N_INTENSITY_LEVELS

    @property
    def footprint_pages(self) -> int:
        """Per-tenant address footprint sized well inside the device."""
        per_tenant = self.ssd.logical_pages // self.n_tenants
        return max(1024, min(1 << 16, per_tenant // 2))


@dataclass
class LabeledSample:
    """One training record: features, winning strategy, full sweep results."""

    features: FeatureVector
    label: int
    total_latencies_us: list[float]

    @property
    def best_latency_us(self) -> float:
        return self.total_latencies_us[self.label]


@dataclass
class Dataset:
    """Feature matrix + integer labels for the strategy learner."""

    features: np.ndarray
    labels: np.ndarray
    n_classes: int
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=float)
        self.labels = np.asarray(self.labels, dtype=int)
        if len(self.features) != len(self.labels):
            raise ValueError("features and labels must align")
        if self.labels.size and not (
            0 <= self.labels.min() and self.labels.max() < self.n_classes
        ):
            raise ValueError("label outside class range")

    def __len__(self) -> int:
        return len(self.labels)

    def save(self, path: str | Path) -> None:
        """Write the dataset as a compressed npz archive."""
        np.savez_compressed(
            path,
            features=self.features,
            labels=self.labels,
            n_classes=np.array([self.n_classes]),
        )

    @classmethod
    def load(cls, path: str | Path) -> "Dataset":
        """Read a dataset saved by :meth:`save`."""
        with np.load(path) as data:
            return cls(
                features=data["features"],
                labels=data["labels"],
                n_classes=int(data["n_classes"][0]),
            )


# ----------------------------------------------------------------------
def sweep_strategies(
    mixed: MixedWorkload,
    features: FeatureVector,
    space: StrategySpace,
    config: LabelerConfig,
) -> list[SimulationResult]:
    """Simulate ``mixed`` under every strategy in ``space``."""
    engine = _ENGINES[config.engine]
    write_dominated = features.write_dominated()
    page_modes = page_modes_for(config.page_policy, features)
    results = []
    for strategy in space:
        channel_sets = strategy.channel_sets(space.n_channels, write_dominated)
        results.append(engine(mixed.requests, config.ssd, channel_sets, page_modes))
    return results


def objective_us(result: SimulationResult, objective: str) -> float:
    """The latency value a label minimises (see ``LabelerConfig.objective``)."""
    if objective == "mean-sum":
        return result.write.mean_us + result.read.mean_us
    if objective == "total-sum":
        return result.total_latency_us
    raise ValueError(f"unknown objective {objective!r}")


def pick_label(totals: "np.ndarray | list[float]", tie_epsilon: float) -> int:
    """Index of the winning strategy: earliest within the indifference band."""
    totals = np.asarray(totals, dtype=float)
    if totals.size == 0:
        raise ValueError("empty sweep")
    threshold = totals.min() * (1.0 + tie_epsilon)
    return int(np.flatnonzero(totals <= threshold)[0])


def best_strategy(
    mixed: MixedWorkload,
    features: FeatureVector,
    space: StrategySpace,
    config: LabelerConfig,
) -> LabeledSample:
    """Label one mixed workload from a single sweep (no replication)."""
    results = sweep_strategies(mixed, features, space, config)
    totals_us = [objective_us(r, config.objective) for r in results]
    label = pick_label(totals_us, config.tie_epsilon)
    return LabeledSample(features=features, label=label, total_latencies_us=totals_us)


# ----------------------------------------------------------------------
def random_specs(
    config: LabelerConfig,
    rng: np.random.Generator,
    *,
    intensity_level: int | None = None,
) -> tuple[list[WorkloadSpec], int]:
    """Random per-tenant specs per the paper's synthetic recipe.

    The paper "mainly change[s] the read/write characteristics and
    read/write proportion"; so by default only the per-tenant R/W
    characteristic, the per-tenant shares, and the overall intensity vary —
    request-shape parameters stay fixed unless ``config.vary_shape``.

    Returns ``(specs, total_requests)`` for the window.
    """
    n = config.n_tenants
    if intensity_level is None:
        intensity_level = int(rng.integers(0, N_INTENSITY_LEVELS))
    elif not 0 <= intensity_level < N_INTENSITY_LEVELS:
        raise ValueError("intensity_level outside the level range")
    # Total request count in the middle of the chosen level's bucket (pure
    # mode pins it to the bucket centre so features determine the workload).
    if config.pure_ratios:
        jitter = 0.5
    else:
        jitter = float(rng.uniform(0.25, 0.75))
    total = int(config.intensity_quantum * (intensity_level + jitter))
    total = max(total, 4 * n)
    shares = rng.dirichlet(np.ones(n) * 1.5)
    shares = np.maximum(shares, 0.02)
    shares /= shares.sum()
    if config.share_grid > 0:
        shares = _snap_to_grid(shares, config.share_grid)
    window_s = config.window_s
    specs = []
    for wid in range(n):
        write_dom = bool(rng.random() < 0.5)
        if config.pure_ratios:
            write_ratio = 1.0 if write_dom else 0.0
        else:
            write_ratio = (
                float(rng.uniform(0.55, 1.0))
                if write_dom
                else float(rng.uniform(0.0, 0.45))
            )
        if config.vary_shape:
            shape = dict(
                mean_request_pages=float(rng.uniform(1.0, 4.0)),
                sequential_fraction=float(rng.uniform(0.1, 0.6)),
                skew=float(rng.uniform(0.0, 1.0)),
            )
        else:
            shape = dict(
                mean_request_pages=2.0, sequential_fraction=0.3, skew=0.5
            )
        specs.append(
            WorkloadSpec(
                name=f"tenant{wid}",
                write_ratio=write_ratio,
                rate_rps=max(1.0, total * float(shares[wid]) / window_s),
                max_request_pages=16,
                footprint_pages=config.footprint_pages,
                **shape,
            )
        )
    return specs, total


def random_mix(
    config: LabelerConfig,
    rng: np.random.Generator,
    *,
    intensity_level: int | None = None,
) -> MixedWorkload:
    """One random synthetic mixed workload (one realisation of
    :func:`random_specs`)."""
    specs, total = random_specs(config, rng, intensity_level=intensity_level)
    return synthesize_mix(
        specs,
        total_requests=total,
        seed=int(rng.integers(0, 2**31 - 1)),
        name="random-mix",
    )


def _snap_to_grid(shares: np.ndarray, grid: float) -> np.ndarray:
    """Quantise shares to multiples of ``grid`` (each >= grid, sum == 1).

    Works in integer grid units with largest-remainder rounding so the
    result sums to exactly 1 whatever the input.
    """
    n = len(shares)
    units_total = int(round(1.0 / grid))
    if units_total < n:
        raise ValueError("grid too coarse for the tenant count")
    raw = shares * units_total
    units = np.maximum(1, np.floor(raw).astype(int))
    # Distribute the remaining units by largest fractional remainder.
    while units.sum() < units_total:
        remainders = raw - units
        units[int(np.argmax(remainders))] += 1
        raw = raw  # remainders shrink as units grow; loop terminates
    while units.sum() > units_total:
        # Over-allocation can only come from the >=1 floor; shave the
        # largest allocation that stays positive.
        candidates = np.where(units > 1)[0]
        victim = candidates[int(np.argmax(units[candidates]))]
        units[victim] -= 1
    return units / units_total


def _spec_seed(specs: list[WorkloadSpec], total: int) -> int:
    """Deterministic trace seed derived from the spec parameters.

    Labeling must be a *function* of the workload description — the paper
    labels each synthetic workload by simulating that exact workload — so
    the trace realisations underlying a label are pinned to the specs.  Two
    draws of the same mix family therefore always get the same label, which
    keeps the learning target deterministic.
    """
    material = repr([(s.name, s.write_ratio, s.rate_rps, s.mean_request_pages,
                      s.sequential_fraction, s.skew) for s in specs]) + f"|{total}"
    return zlib.crc32(material.encode()) & 0x7FFFFFFF


def label_sample(
    config: LabelerConfig,
    rng: np.random.Generator,
    space: StrategySpace,
    *,
    intensity_level: int | None = None,
) -> LabeledSample:
    """Draw one random mix family and label it.

    ``config.replications`` trace realisations of the same specs are swept
    (with seeds derived deterministically from the specs); the label is the
    argmin of the *mean* total latency, which suppresses single-trace noise
    in the near-tie strategies.
    """
    specs, total = random_specs(config, rng, intensity_level=intensity_level)
    base_seed = _spec_seed(specs, total)
    sum_totals_us: np.ndarray | None = None
    features: FeatureVector | None = None
    for rep in range(config.replications):
        mixed = synthesize_mix(specs, total_requests=total, seed=base_seed + rep)
        if features is None:
            features = features_of_mix(
                mixed, intensity_quantum=config.intensity_quantum
            )
        results = sweep_strategies(mixed, features, space, config)
        totals_us = np.array([objective_us(r, config.objective) for r in results])
        sum_totals_us = (
            totals_us if sum_totals_us is None else sum_totals_us + totals_us
        )
    assert sum_totals_us is not None and features is not None
    mean_totals_us = sum_totals_us / config.replications
    return LabeledSample(
        features=features,
        label=pick_label(mean_totals_us, config.tie_epsilon),
        total_latencies_us=mean_totals_us.tolist(),
    )


def generate_dataset(
    n_samples: int,
    config: LabelerConfig | None = None,
    *,
    seed: int = 0,
    space: StrategySpace | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> Dataset:
    """Generate ``n_samples`` labelled mixes (Algorithm 1's data loop)."""
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    config = config or LabelerConfig()
    space = space or StrategySpace(config.ssd.channels, config.n_tenants)
    rng = np.random.default_rng(seed)
    rows = []
    labels = []
    for i in range(n_samples):
        sample = label_sample(config, rng, space)
        rows.append(sample.features.to_array())
        labels.append(sample.label)
        if progress is not None:
            progress(i + 1, n_samples)
    return Dataset(
        features=np.vstack(rows),
        labels=np.array(labels),
        n_classes=len(space),
        meta={
            "engine": config.engine,
            "page_policy": config.page_policy.value,
            "window_requests_max": config.window_requests_max,
            "n_tenants": config.n_tenants,
            "seed": seed,
        },
    )
