"""Strategy learner (Section IV-C).

Couples the feature pipeline with the from-scratch MLP: standard-scale the
feature matrix, train a ``(2n+1) -> hidden -> |strategies|`` classifier on
the labelled dataset (7:3 split), and expose prediction over
:class:`~repro.core.features.FeatureVector` objects.

The trained bundle (scaler + network + space shape) serialises to a single
JSON file — the parameter blob the paper "sends to the FTL".
"""

from __future__ import annotations

from dataclasses import dataclass
import json
from pathlib import Path

from ..nn.network import MLP
from ..nn.preprocessing import StandardScaler, train_test_split
from ..nn.serialization import from_dict as network_from_dict
from ..nn.serialization import to_dict as network_to_dict
from ..nn.training import History, Trainer
from .features import FeatureVector
from .labeler import Dataset
from .strategies import Strategy, StrategySpace

__all__ = ["LearnerReport", "StrategyLearner"]


@dataclass(frozen=True)
class LearnerReport:
    """Table-III row: final loss, test accuracy, training time."""

    optimizer: str
    activation: str
    final_loss: float
    test_accuracy: float
    training_time_ms: float

    def row(self) -> str:
        return (
            f"{self.optimizer:<14} loss={self.final_loss:.2f} "
            f"acc={self.test_accuracy:.1%} time={self.training_time_ms:.0f}ms"
        )


class StrategyLearner:
    """Trainable mapping from workload features to allocation strategies."""

    def __init__(
        self,
        space: StrategySpace,
        *,
        hidden: int = 64,
        activation: str = "logistic",
        seed: int | None = None,
    ) -> None:
        self.space = space
        self.hidden = hidden
        self.activation = activation
        n_features = 1 + 2 * space.n_tenants
        self.network = MLP(
            [n_features, hidden, len(space)],
            hidden_activation=activation,
            seed=seed,
        )
        self.scaler = StandardScaler()
        self._trained = False

    # ------------------------------------------------------------------
    def train(
        self,
        dataset: Dataset,
        *,
        optimizer: str = "adam",
        iterations: int = 200,
        batch_size: int = 64,
        train_fraction: float = 0.7,
        seed: int | None = 0,
        **optimizer_kwargs,
    ) -> History:
        """Fit on a labelled dataset; returns the Figure-4 history."""
        if dataset.n_classes != len(self.space):
            raise ValueError(
                f"dataset has {dataset.n_classes} classes, space has "
                f"{len(self.space)}"
            )
        x_train, x_test, y_train, y_test = train_test_split(
            dataset.features, dataset.labels, train_fraction=train_fraction, seed=seed
        )
        x_train = self.scaler.fit_transform(x_train)
        x_test = self.scaler.transform(x_test)
        trainer = Trainer(
            self.network,
            optimizer,
            batch_size=batch_size,
            seed=seed,
            **optimizer_kwargs,
        )
        history = trainer.fit(
            x_train,
            y_train,
            iterations=iterations,
            x_test=x_test,
            y_test=y_test,
        )
        self._trained = True
        self._last_history = history
        self._last_optimizer = optimizer
        return history

    def report(self) -> LearnerReport:
        """Summarise the last training run as a Table-III row."""
        if not self._trained:
            raise RuntimeError("learner has not been trained")
        history = self._last_history
        return LearnerReport(
            optimizer=self._last_optimizer,
            activation=self.activation,
            final_loss=history.final_loss,
            test_accuracy=history.final_accuracy,
            training_time_ms=history.training_time_ms,
        )

    # ------------------------------------------------------------------
    def predict_index(self, features: FeatureVector) -> int:
        """Class index of the predicted best strategy."""
        if not self._trained:
            raise RuntimeError("learner has not been trained")
        x = self.scaler.transform(features.to_array()[None, :])
        return int(self.network.predict(x)[0])

    def predict(self, features: FeatureVector) -> Strategy:
        """The predicted best allocation strategy for ``features``."""
        return self.space[self.predict_index(features)]

    def accuracy(self, dataset: Dataset) -> float:
        """Fraction of dataset rows whose argmax matches the label."""
        if not self._trained:
            raise RuntimeError("learner has not been trained")
        x = self.scaler.transform(dataset.features)
        return float((self.network.predict(x) == dataset.labels).mean())

    def clone(self) -> "StrategyLearner":
        """Deep copy of this trained learner (network weights + scaler).

        The adaptive retraining flow fine-tunes the clone while the
        original keeps serving, so a rejected candidate leaves the live
        model untouched.
        """
        if not self._trained:
            raise RuntimeError("refusing to clone an untrained learner")
        copy = StrategyLearner(
            self.space, hidden=self.hidden, activation=self.activation
        )
        copy.network = network_from_dict(network_to_dict(self.network))
        copy.scaler = StandardScaler.from_state(self.scaler.state())
        copy._trained = True
        copy._last_history = History()
        copy._last_optimizer = "cloned"
        return copy

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist scaler + network + space shape (the FTL parameter blob)."""
        if not self._trained:
            raise RuntimeError("refusing to save an untrained learner")
        payload = {
            "format": "repro-learner-v1",
            "n_channels": self.space.n_channels,
            "n_tenants": self.space.n_tenants,
            "hidden": self.hidden,
            "activation": self.activation,
            "scaler": self.scaler.state(),
            "network": network_to_dict(self.network),
        }
        Path(path).write_text(json.dumps(payload), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "StrategyLearner":
        """Rebuild a learner from :meth:`save` output (inference-ready)."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if payload.get("format") != "repro-learner-v1":
            raise ValueError(f"unsupported learner format {payload.get('format')!r}")
        space = StrategySpace(payload["n_channels"], payload["n_tenants"])
        learner = cls(
            space,
            hidden=payload["hidden"],
            activation=payload["activation"],
        )
        learner.network = network_from_dict(payload["network"])
        learner.scaler = StandardScaler.from_state(payload["scaler"])
        learner._trained = True
        learner._last_history = History()
        learner._last_optimizer = "loaded"
        return learner
