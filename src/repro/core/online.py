"""Guarded incremental retraining from the keeper's own decision stream.

The offline learner is frozen at deployment; this module lets the
adaptive keeper refresh it **without ever trusting a fresh model
blindly**:

* a :class:`ReplayBuffer` harvests one :class:`ReplayWindow` per
  adaptation window — the observed feature vector, the requests of the
  window, the strategy that was actually deployed, and the realised mean
  latency;
* on a retrain trigger the :class:`RetrainGovernor` labels the buffered
  training windows by an exhaustive fast-model sweep (the same
  Algorithm-1 objective the offline labeler uses), fine-tunes a **clone**
  of the live learner on them, and then *shadow-validates* the candidate
  against the incumbent on held-back replay windows the candidate never
  trained on: each model predicts a strategy per window and the window's
  requests are replayed under it with the fast model;
* the candidate is **promoted** only when its held-back cost is no worse
  than the incumbent's (within ``promote_margin``) and its predictions
  are healthy; otherwise it is **rolled back** and the live model is
  untouched.

Everything is seeded and free of wall-clock reads, so two runs over the
same decision stream retrain identically; the keeper owns the
``keeper.retrains`` / ``keeper.promotions`` / ``keeper.rollbacks``
counters and logs the returned :class:`RetrainEvent` records.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..nn.training import Trainer
from ..ssd.config import SSDConfig
from ..ssd.fastmodel import fast_simulate
from ..ssd.request import IORequest
from .allocator import ChannelAllocator
from .features import FeatureVector
from .hybrid import PagePolicy, page_modes_for
from .labeler import pick_label
from .learner import StrategyLearner

__all__ = [
    "ReplayWindow",
    "ReplayBuffer",
    "RetrainConfig",
    "RetrainEvent",
    "RetrainGovernor",
]


@dataclass
class ReplayWindow:
    """One adaptation window harvested from the live decision stream."""

    time_us: float
    features: FeatureVector
    #: label of the strategy that was live during the window
    deployed: str
    realised_mean_us: float | None
    requests: tuple[IORequest, ...]
    #: best-strategy class index from the fast-model sweep (labelled
    #: lazily at retrain time, then memoised)
    label: int | None = None


class ReplayBuffer:
    """Bounded FIFO of the most recent replay windows."""

    def __init__(self, capacity: int) -> None:
        if capacity < 2:
            raise ValueError("capacity must be >= 2")
        self._windows: deque[ReplayWindow] = deque(maxlen=capacity)

    def add(self, window: ReplayWindow) -> None:
        self._windows.append(window)

    def __len__(self) -> int:
        return len(self._windows)

    @property
    def windows(self) -> list[ReplayWindow]:
        return list(self._windows)

    def split(self, holdback: int) -> tuple[list[ReplayWindow], list[ReplayWindow]]:
        """(training windows, held-back windows); newest go to holdback."""
        windows = self.windows
        holdback = min(holdback, max(len(windows) - 1, 0))
        if holdback == 0:
            return windows, []
        return windows[:-holdback], windows[-holdback:]


@dataclass(frozen=True)
class RetrainConfig:
    """Tuning knobs of the guarded retraining flow."""

    #: replay-buffer capacity in windows
    capacity: int = 32
    #: newest windows held back from training for shadow validation
    holdback: int = 3
    #: minimum labelled training windows before an attempt is made
    min_train_windows: int = 5
    #: fine-tuning epochs over the replay dataset
    iterations: int = 40
    batch_size: int = 8
    #: minibatch-shuffle seed (training is deterministic given it)
    seed: int = 0
    #: also retrain every this many windows, drift or not (None = only
    #: on drift detections)
    interval_windows: int | None = None
    #: minimum windows between two attempts
    min_gap_windows: int = 3
    #: candidate must achieve held-back cost <= incumbent * (1 + margin)
    promote_margin: float = 0.0
    #: indifference band when picking sweep labels (mirrors the labeler)
    tie_epsilon: float = 1e-9
    #: test hook: corrupt the candidate after training (non-finite
    #: weights) so the shadow-validation rollback path is provable
    poison: bool = False

    def __post_init__(self) -> None:
        if self.capacity < 2:
            raise ValueError("capacity must be >= 2")
        if self.holdback < 1:
            raise ValueError("holdback must be >= 1")
        if self.min_train_windows < 1:
            raise ValueError("min_train_windows must be >= 1")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.interval_windows is not None and self.interval_windows < 1:
            raise ValueError("interval_windows must be >= 1")
        if self.min_gap_windows < 0:
            raise ValueError("min_gap_windows must be non-negative")
        if self.promote_margin < 0:
            raise ValueError("promote_margin must be non-negative")
        if self.tie_epsilon < 0:
            raise ValueError("tie_epsilon must be non-negative")


@dataclass(frozen=True)
class RetrainEvent:
    """Outcome of one guarded retraining attempt."""

    time_us: float
    window_index: int
    train_windows: int
    holdback_windows: int
    #: mean held-back cost (read + write mean latency) per model;
    #: ``None`` when validation never ran (unhealthy candidate)
    candidate_cost_us: float | None
    incumbent_cost_us: float | None
    #: ``"promoted"`` or ``"rolled-back"``
    outcome: str
    reason: str

    @property
    def promoted(self) -> bool:
        return self.outcome == "promoted"

    def to_dict(self) -> dict:
        return {
            "time_us": self.time_us,
            "window_index": self.window_index,
            "train_windows": self.train_windows,
            "holdback_windows": self.holdback_windows,
            "candidate_cost_us": self.candidate_cost_us,
            "incumbent_cost_us": self.incumbent_cost_us,
            "outcome": self.outcome,
            "reason": self.reason,
        }


class RetrainGovernor:
    """Labels replay windows, trains candidates, and arbitrates promotion."""

    def __init__(
        self,
        config: SSDConfig,
        retrain: RetrainConfig,
        *,
        page_policy: PagePolicy = PagePolicy.HYBRID,
        faults=None,
    ) -> None:
        self.config = config
        self.retrain = retrain
        self.page_policy = page_policy
        self.faults = faults
        self._last_attempt_window: int | None = None

    # ------------------------------------------------------------------
    def due(self, window_index: int, drift_fired: bool) -> bool:
        """Whether an attempt should run at this adaptation window."""
        cfg = self.retrain
        if (
            self._last_attempt_window is not None
            and window_index - self._last_attempt_window < cfg.min_gap_windows
        ):
            return False
        if drift_fired:
            return True
        return (
            cfg.interval_windows is not None
            and (window_index + 1) % cfg.interval_windows == 0
        )

    # ------------------------------------------------------------------
    def _window_cost_us(
        self, window: ReplayWindow, strategy_sets, page_modes
    ) -> float:
        result = fast_simulate(
            list(window.requests), self.config, strategy_sets, page_modes,
            faults=self.faults,
        )
        return result.read.mean_us + result.write.mean_us

    def _label_window(self, window: ReplayWindow, space) -> int:
        """Best strategy index for the window by exhaustive fast sweep."""
        if window.label is not None:
            return window.label
        write_dominated = window.features.write_dominated()
        page_modes = page_modes_for(self.page_policy, window.features)
        costs = []
        for strategy in space:
            sets = strategy.channel_sets(space.n_channels, write_dominated)
            costs.append(self._window_cost_us(window, sets, page_modes))
        window.label = pick_label(costs, self.retrain.tie_epsilon)
        return window.label

    def _model_cost_us(
        self, learner: StrategyLearner, windows: Sequence[ReplayWindow]
    ) -> float:
        """Mean held-back cost of deploying ``learner``'s predictions."""
        total_us = 0.0
        for window in windows:
            strategy = learner.predict(window.features)
            sets = strategy.channel_sets(
                learner.space.n_channels, window.features.write_dominated()
            )
            page_modes = page_modes_for(self.page_policy, window.features)
            total_us += self._window_cost_us(window, sets, page_modes)
        return total_us / len(windows)

    # ------------------------------------------------------------------
    def attempt(
        self,
        allocator: ChannelAllocator,
        buffer: ReplayBuffer,
        *,
        time_us: float,
        window_index: int,
    ) -> RetrainEvent | None:
        """One guarded retraining attempt; ``None`` when data is short.

        On promotion the allocator's live learner is swapped for the
        candidate; on rollback the live model is untouched — the only
        side effect is the returned event.
        """
        cfg = self.retrain
        train_windows, holdback = buffer.split(cfg.holdback)
        train_windows = [w for w in train_windows if w.requests]
        holdback = [w for w in holdback if w.requests]
        if len(train_windows) < cfg.min_train_windows or not holdback:
            return None
        self._last_attempt_window = window_index

        incumbent = allocator.learner
        space = allocator.space
        labels = np.array(
            [self._label_window(w, space) for w in train_windows]
        )
        features = np.vstack([w.features.to_array() for w in train_windows])

        candidate = incumbent.clone()
        trainer = Trainer(
            candidate.network,
            "adam",
            batch_size=min(cfg.batch_size, len(train_windows)),
            seed=cfg.seed,
        )
        trainer.fit(
            candidate.scaler.transform(features), labels,
            iterations=cfg.iterations,
        )
        if cfg.poison:
            # Test hook: a catastrophically bad candidate (non-finite
            # weights) must be caught by the health probe below.
            for param in candidate.network.parameters():
                param.fill(np.nan)

        health = ChannelAllocator(candidate).prediction_health(
            holdback[0].features
        )
        if health is not None:
            return RetrainEvent(
                time_us=time_us,
                window_index=window_index,
                train_windows=len(train_windows),
                holdback_windows=len(holdback),
                candidate_cost_us=None,
                incumbent_cost_us=None,
                outcome="rolled-back",
                reason=f"unhealthy candidate: {health}",
            )

        candidate_cost_us = self._model_cost_us(candidate, holdback)
        incumbent_cost_us = self._model_cost_us(incumbent, holdback)
        if candidate_cost_us <= incumbent_cost_us * (1.0 + cfg.promote_margin):
            allocator.adopt(candidate)
            outcome, reason = "promoted", (
                f"held-back cost {candidate_cost_us:.1f}us <= "
                f"incumbent {incumbent_cost_us:.1f}us"
            )
        else:
            outcome, reason = "rolled-back", (
                f"held-back cost {candidate_cost_us:.1f}us > "
                f"incumbent {incumbent_cost_us:.1f}us"
            )
        return RetrainEvent(
            time_us=time_us,
            window_index=window_index,
            train_windows=len(train_windows),
            holdback_windows=len(holdback),
            candidate_cost_us=candidate_cost_us,
            incumbent_cost_us=incumbent_cost_us,
            outcome=outcome,
            reason=reason,
        )
