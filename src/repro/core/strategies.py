"""Channel-allocation strategy space.

The paper's strategy vocabulary (Section IV-C):

* **Shared** — every tenant stripes over all channels (a traditional SSD);
* **Isolated** — tenants split the channels equally (4:4 for two tenants,
  2:2:2:2 for four);
* **two-part splits** ``a:b`` — the write-dominated tenants share ``a``
  channels, the read-dominated tenants share the remaining ``b``
  (Figure 2's 7:1 … 1:7);
* **four-part splits** ``a:b:c:d`` — every tenant gets its own exclusive
  channel range (5:1:1:1, 4:2:1:1, …).

For two tenants on an 8-channel device the space has **8** strategies
(Shared, Isolated, 7:1, 6:2, 5:3, 3:5, 2:6, 1:7); for four tenants it has
**42** — the same 8 plus the 34 remaining ordered compositions of 8 into 4
positive parts (2:2:2:2 is already counted as Isolated).  These counts are
asserted against the paper in the tests.

The canonical enumeration order of :func:`enumerate_strategies` defines the
ANN's class labels, so it must stay stable.
"""

from __future__ import annotations

from dataclasses import dataclass
import enum
import itertools
from typing import Sequence

__all__ = [
    "StrategyKind",
    "Strategy",
    "enumerate_strategies",
    "StrategySpace",
    "compositions",
]


class StrategyKind(enum.Enum):
    """The four allocation shapes of Section IV-C."""

    SHARED = "shared"
    ISOLATED = "isolated"
    TWO_PART = "two-part"
    PER_TENANT = "per-tenant"


@dataclass(frozen=True)
class Strategy:
    """One channel-allocation strategy.

    ``parts`` is empty for SHARED/ISOLATED, ``(write_channels,
    read_channels)`` for TWO_PART, and one entry per tenant for PER_TENANT.
    """

    kind: StrategyKind
    parts: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.kind in (StrategyKind.SHARED, StrategyKind.ISOLATED):
            if self.parts:
                raise ValueError(f"{self.kind.value} takes no parts")
        elif self.kind is StrategyKind.TWO_PART:
            if len(self.parts) != 2:
                raise ValueError("two-part strategy needs exactly 2 parts")
        elif len(self.parts) < 2:
            raise ValueError("per-tenant strategy needs >= 2 parts")
        if any(p < 1 for p in self.parts):
            raise ValueError("every part must get at least one channel")

    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """Paper-style name: "Shared", "Isolated", "7:1", "5:1:1:1"."""
        if self.kind is StrategyKind.SHARED:
            return "Shared"
        if self.kind is StrategyKind.ISOLATED:
            return "Isolated"
        return ":".join(str(p) for p in self.parts)

    def simplified_label(self) -> str:
        """Figure-6 grouping: per-tenant permutations collapse to the
        descending-sorted form (5:1:1:1 covers 1:5:1:1 etc.)."""
        if self.kind is StrategyKind.PER_TENANT:
            return ":".join(str(p) for p in sorted(self.parts, reverse=True))
        return self.label

    # ------------------------------------------------------------------
    def channel_sets(
        self,
        n_channels: int,
        write_dominated: Sequence[bool],
    ) -> dict[int, list[int]]:
        """Concrete per-tenant channel sets for this strategy.

        ``write_dominated[i]`` is the collector's R/W characteristic of
        tenant ``i`` and decides group membership for two-part splits.
        """
        n_tenants = len(write_dominated)
        if n_tenants < 1:
            raise ValueError("need at least one tenant")
        all_channels = list(range(n_channels))

        if self.kind is StrategyKind.SHARED:
            return {wid: all_channels for wid in range(n_tenants)}

        if self.kind is StrategyKind.ISOLATED:
            if n_channels % n_tenants != 0:
                raise ValueError(
                    f"Isolated needs channels ({n_channels}) divisible by "
                    f"tenants ({n_tenants})"
                )
            per = n_channels // n_tenants
            return {
                wid: all_channels[wid * per : (wid + 1) * per]
                for wid in range(n_tenants)
            }

        if self.kind is StrategyKind.TWO_PART:
            w, r = self.parts
            if w + r != n_channels:
                raise ValueError(
                    f"two-part {self.label} does not cover {n_channels} channels"
                )
            write_set = all_channels[:w]
            read_set = all_channels[w:]
            return {
                wid: (write_set if write_dominated[wid] else read_set)
                for wid in range(n_tenants)
            }

        # PER_TENANT
        if len(self.parts) != n_tenants:
            raise ValueError(
                f"per-tenant strategy has {len(self.parts)} parts for "
                f"{n_tenants} tenants"
            )
        if sum(self.parts) != n_channels:
            raise ValueError(
                f"per-tenant {self.label} does not cover {n_channels} channels"
            )
        sets: dict[int, list[int]] = {}
        cursor = 0
        for wid, width in enumerate(self.parts):
            sets[wid] = all_channels[cursor : cursor + width]
            cursor += width
        return sets

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


def compositions(total: int, parts: int) -> list[tuple[int, ...]]:
    """Ordered compositions of ``total`` into ``parts`` positive integers,
    in lexicographically descending order (7:1 before 1:7, 5:1:1:1 before
    1:1:1:5) to match the paper's listing style."""
    if parts < 1:
        raise ValueError("parts must be >= 1")
    out = [
        tuple(c)
        for c in itertools.product(range(1, total - parts + 2), repeat=parts)
        if sum(c) == total
    ]
    out.sort(reverse=True)
    return out


def enumerate_strategies(n_channels: int = 8, n_tenants: int = 4) -> list["Strategy"]:
    """Canonical strategy list (the ANN's class vocabulary).

    Order: Shared, Isolated, two-part splits (excluding the equal split,
    which Isolated already covers for 2 tenants), then per-tenant
    compositions (excluding the equal one, which Isolated covers for
    n_tenants > 2).
    """
    if n_channels < 2:
        raise ValueError("need at least 2 channels")
    if n_tenants < 2:
        raise ValueError("need at least 2 tenants")
    strategies = [Strategy(StrategyKind.SHARED), Strategy(StrategyKind.ISOLATED)]
    # The paper's vocabulary never lists the equal two-way split: for 2
    # tenants Isolated covers it, and for 4 tenants it is simply absent
    # (8 + 34 = 42 strategies).  Odd channel counts have no equal split.
    equal_two = (
        (n_channels // 2, n_channels // 2) if n_channels % 2 == 0 else None
    )
    for parts in compositions(n_channels, 2):
        if parts == equal_two:
            continue
        strategies.append(Strategy(StrategyKind.TWO_PART, parts))
    if n_tenants > 2:
        if n_channels % n_tenants == 0:
            equal_n = tuple([n_channels // n_tenants] * n_tenants)
        else:
            equal_n = None
        for parts in compositions(n_channels, n_tenants):
            if parts == equal_n:
                continue  # Isolated covers the equal n-way split
            strategies.append(Strategy(StrategyKind.PER_TENANT, parts))
    return strategies


class StrategySpace:
    """Indexed strategy vocabulary for one (channels, tenants) setting."""

    def __init__(self, n_channels: int = 8, n_tenants: int = 4) -> None:
        self.n_channels = n_channels
        self.n_tenants = n_tenants
        self.strategies = enumerate_strategies(n_channels, n_tenants)
        self._index = {s: i for i, s in enumerate(self.strategies)}
        self._by_label = {s.label: s for s in self.strategies}

    def __len__(self) -> int:
        return len(self.strategies)

    def __iter__(self):
        return iter(self.strategies)

    def __getitem__(self, index: int) -> Strategy:
        return self.strategies[index]

    def index_of(self, strategy: Strategy) -> int:
        try:
            return self._index[strategy]
        except KeyError:
            raise ValueError(f"{strategy} not in this space") from None

    def by_label(self, label: str) -> Strategy:
        try:
            return self._by_label[label]
        except KeyError:
            raise ValueError(
                f"no strategy labelled {label!r} in this space"
            ) from None

    @property
    def shared(self) -> Strategy:
        return self.strategies[0]

    @property
    def isolated(self) -> Strategy:
        return self.strategies[1]

    def describe(self) -> str:
        return (
            f"{len(self)} strategies for {self.n_tenants} tenants on "
            f"{self.n_channels} channels: "
            + ", ".join(s.label for s in self.strategies[:10])
            + (" ..." if len(self) > 10 else "")
        )
