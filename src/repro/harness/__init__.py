"""Experiment harness: scales, caching, sweeps, and per-figure entry points."""

from .ablations import (
    ablation_dataset_size,
    ablation_fastmodel,
    ablation_features,
    ablation_hybrid,
    ablation_model_size,
    ablation_scheduling,
)
from .cache import ArtifactCache, default_cache
from .experiments import (
    MIX_COMPOSITIONS,
    OPTIMIZER_VARIANTS,
    build_dataset,
    build_mixes,
    cached_learner_or_none,
    fig2_motivation,
    fig5_performance,
    fig6_strategy_map,
    labeler_config,
    tab2_workloads,
    tab5_allocations,
    train_all,
    trained_learner,
)
from .reporting import banner, format_series, format_table, normalize
from .scale import Scale
from .sweep import auto_processes, run_sweep

__all__ = [
    "Scale",
    "ArtifactCache",
    "default_cache",
    "auto_processes",
    "run_sweep",
    "banner",
    "format_series",
    "format_table",
    "normalize",
    "MIX_COMPOSITIONS",
    "OPTIMIZER_VARIANTS",
    "build_dataset",
    "build_mixes",
    "fig2_motivation",
    "fig5_performance",
    "fig6_strategy_map",
    "labeler_config",
    "tab2_workloads",
    "tab5_allocations",
    "train_all",
    "trained_learner",
    "cached_learner_or_none",
    "ablation_dataset_size",
    "ablation_fastmodel",
    "ablation_features",
    "ablation_hybrid",
    "ablation_model_size",
    "ablation_scheduling",
]
