"""Ablation studies beyond the paper's figures.

These quantify the design choices DESIGN.md calls out:

* :func:`ablation_hybrid` — the paper's §V-C claim that hybrid page
  allocation adds ~2.1 % average overall improvement;
* :func:`ablation_fastmodel` — does the vectorised fast model rank
  strategies the way the exact event-driven simulator does?  (It justifies
  using the fast model for the 42-strategy label sweeps.)
* :func:`ablation_model_size` — hidden-layer width vs test accuracy (the
  paper fixes 64 neurons);
* :func:`ablation_features` — which of the three feature groups carries the
  signal (intensity level / R-W characteristics / proportions).
"""

from __future__ import annotations

import numpy as np

from ..core.allocator import ChannelAllocator
from ..core.features import features_of_mix
from ..core.hybrid import PagePolicy
from ..core.keeper import SSDKeeper
from ..core.labeler import LabelerConfig, objective_us, pick_label, random_specs, sweep_strategies
from ..core.learner import StrategyLearner
from ..core.strategies import StrategySpace
from ..nn.network import MLP
from ..nn.preprocessing import StandardScaler, train_test_split
from ..nn.training import Trainer
from ..workloads.mixer import synthesize_mix
from .cache import ArtifactCache, default_cache
from .experiments import build_dataset, build_mixes, labeler_config, trained_learner
from .scale import Scale

__all__ = [
    "ablation_hybrid",
    "ablation_fastmodel",
    "ablation_model_size",
    "ablation_features",
    "ablation_scheduling",
    "ablation_dataset_size",
]


# ----------------------------------------------------------------------
def ablation_hybrid(scale: Scale, *, cache: ArtifactCache | None = None) -> dict:
    """SSDKeeper with all-static vs hybrid vs all-dynamic page allocation."""
    cache = cache or default_cache()
    params = {"requests": scale.mix_requests, "samples": scale.dataset_samples,
              "iters": scale.train_iterations, "v": 6}
    return cache.get_or_build_json(
        "ablation-hybrid", params, build=lambda: _hybrid_build(scale, cache)
    )


def _hybrid_build(scale: Scale, cache: ArtifactCache) -> dict:
    cfg = labeler_config()
    learner = trained_learner(scale, cache=cache)
    mixes = build_mixes(scale)
    policies = [PagePolicy.ALL_STATIC, PagePolicy.HYBRID, PagePolicy.ALL_DYNAMIC]
    out: dict = {"mixes": {}, "policies": [p.value for p in policies]}
    for mix_name, mixed in mixes.items():
        row = {}
        for policy in policies:
            keeper = SSDKeeper(
                ChannelAllocator(learner),
                cfg.ssd,
                collect_window_us=cfg.window_s * 1e6,
                intensity_quantum=cfg.intensity_quantum,
                page_policy=policy,
            )
            run = keeper.run(mixed.requests)
            row[policy.value] = {
                "mean_total_us": run.result.mean_total_us,
                "total_latency_s": run.result.total_latency_us / 1e6,
                "strategy": run.strategy.label if run.strategy else "Shared",
            }
        out["mixes"][mix_name] = row
    # Headline: mean improvement of hybrid over all-static across mixes.
    gains = [
        1.0
        - row[PagePolicy.HYBRID.value]["total_latency_s"]
        / row[PagePolicy.ALL_STATIC.value]["total_latency_s"]
        for row in out["mixes"].values()
    ]
    out["hybrid_vs_static_mean_gain"] = float(np.mean(gains))
    return out


# ----------------------------------------------------------------------
def ablation_fastmodel(scale: Scale, *, cache: ArtifactCache | None = None) -> dict:
    """Strategy-ranking agreement between the fast model and the DES."""
    cache = cache or default_cache()
    params = {"mixes": scale.fidelity_mixes, "v": 6}
    return cache.get_or_build_json(
        "ablation-fastmodel", params, build=lambda: _fastmodel_build(scale)
    )


def _spearman(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation (no scipy dependency in the hot path)."""
    ra = np.argsort(np.argsort(a)).astype(float)
    rb = np.argsort(np.argsort(b)).astype(float)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = float(np.sqrt((ra * ra).sum() * (rb * rb).sum()))
    return float((ra * rb).sum() / denom) if denom else 1.0


def _fastmodel_build(scale: Scale) -> dict:
    cfg = labeler_config()
    space = StrategySpace()
    rng = np.random.default_rng(99)
    rows = []
    for i in range(scale.fidelity_mixes):
        specs, total = random_specs(cfg, rng)
        mixed = synthesize_mix(specs, total_requests=total, seed=1000 + i)
        features = features_of_mix(mixed, intensity_quantum=cfg.intensity_quantum)
        fast = np.array(
            [
                objective_us(r, cfg.objective)
                for r in sweep_strategies(mixed, features, space, cfg)
            ]
        )
        event_cfg = LabelerConfig(
            ssd=cfg.ssd,
            n_tenants=cfg.n_tenants,
            window_requests_max=cfg.window_requests_max,
            window_s=cfg.window_s,
            engine="event",
            page_policy=cfg.page_policy,
        )
        event = np.array(
            [
                objective_us(r, cfg.objective)
                for r in sweep_strategies(mixed, features, space, event_cfg)
            ]
        )
        fast_best = pick_label(fast, cfg.tie_epsilon)
        event_best = pick_label(event, cfg.tie_epsilon)
        # Regret of deploying the fast model's winner per the exact engine.
        regret = float(event[fast_best] / event.min())
        rows.append(
            {
                "spearman": _spearman(fast, event),
                "same_winner": bool(fast_best == event_best),
                "fast_winner": space[fast_best].label,
                "event_winner": space[event_best].label,
                "cross_regret": regret,
            }
        )
    return {
        "per_mix": rows,
        "mean_spearman": float(np.mean([r["spearman"] for r in rows])),
        "winner_agreement": float(np.mean([r["same_winner"] for r in rows])),
        "mean_cross_regret": float(np.mean([r["cross_regret"] for r in rows])),
    }


# ----------------------------------------------------------------------
def ablation_model_size(
    scale: Scale, *, cache: ArtifactCache | None = None, widths=(8, 32, 64, 128)
) -> dict:
    """Test accuracy as a function of hidden-layer width."""
    cache = cache or default_cache()
    params = {"samples": scale.dataset_samples, "iters": scale.train_iterations,
              "widths": list(widths), "v": 6}
    return cache.get_or_build_json(
        "ablation-width", params, build=lambda: _width_build(scale, cache, widths)
    )


def _width_build(scale: Scale, cache: ArtifactCache, widths) -> dict:
    dataset = build_dataset(scale, cache=cache)
    space = StrategySpace()
    out = {}
    for width in widths:
        learner = StrategyLearner(space, hidden=width, activation="logistic", seed=1)
        history = learner.train(
            dataset,
            optimizer="adam",
            learning_rate=0.02,
            iterations=scale.train_iterations,
            seed=1,
        )
        out[str(width)] = {
            "final_accuracy": history.final_accuracy,
            "final_loss": history.final_loss,
            "parameters": learner.network.n_parameters,
        }
    return out


# ----------------------------------------------------------------------
def ablation_dataset_size(
    scale: Scale,
    *,
    cache: ArtifactCache | None = None,
    fractions=(0.125, 0.25, 0.5, 1.0),
) -> dict:
    """Learning curve: test accuracy vs training-set size.

    The paper trains on 5,000 labelled mixes; this ablation re-trains the
    Adam-logistic learner on nested prefixes of the cached dataset and
    shows how accuracy converges with data — the scaling argument behind
    the reproduction's dataset-size choice.
    """
    cache = cache or default_cache()
    params = {"samples": scale.dataset_samples, "iters": scale.train_iterations,
              "fractions": list(fractions), "v": 6}
    return cache.get_or_build_json(
        "ablation-datasize", params,
        build=lambda: _datasize_build(scale, cache, fractions),
    )


def _datasize_build(scale: Scale, cache: ArtifactCache, fractions) -> dict:
    from ..core.labeler import Dataset

    dataset = build_dataset(scale, cache=cache)
    space = StrategySpace()
    out = {}
    for fraction in fractions:
        n = max(42, int(len(dataset) * fraction))
        subset = Dataset(
            features=dataset.features[:n],
            labels=dataset.labels[:n],
            n_classes=dataset.n_classes,
        )
        learner = StrategyLearner(space, activation="logistic", seed=1)
        history = learner.train(
            subset,
            optimizer="adam",
            learning_rate=0.02,
            iterations=scale.train_iterations,
            seed=1,
        )
        out[f"{fraction:.3f}"] = {
            "rows": n,
            "final_accuracy": history.final_accuracy,
            "final_loss": history.final_loss,
        }
    return out


# ----------------------------------------------------------------------
def ablation_scheduling(scale: Scale, *, cache: ArtifactCache | None = None) -> dict:
    """FIFO vs read-priority queue discipline (simulator design choice).

    SSDSim — and therefore this reproduction's default — serves host
    operations FIFO per resource; the paper's "reads have priority to
    respond" is the tR << tPROG service-time asymmetry.  This ablation
    quantifies what a genuinely preemptive read-priority queue would change:
    reads gain, writes pay, and the Shared-vs-isolated trade-off of
    Figure 2 weakens (reads no longer suffer behind queued writes).
    """
    cache = cache or default_cache()
    params = {"mixes": scale.fidelity_mixes, "v": 6}
    return cache.get_or_build_json(
        "ablation-scheduling", params, build=lambda: _scheduling_build(scale)
    )


def _scheduling_build(scale: Scale) -> dict:
    from ..ssd.simulator import SSDSimulator

    cfg = labeler_config()
    rng = np.random.default_rng(123)
    rows = []
    for i in range(max(3, scale.fidelity_mixes // 2)):
        specs, total = random_specs(cfg, rng, intensity_level=14)
        mixed = synthesize_mix(specs, total_requests=total, seed=500 + i)
        shared = {w: list(range(cfg.ssd.channels)) for w in range(cfg.n_tenants)}
        results = {}
        for name, read_priority in (("fifo", False), ("read-priority", True)):
            sim = SSDSimulator(cfg.ssd, shared, read_priority=read_priority)
            results[name] = sim.run(list(mixed.requests))
        rows.append(
            {
                "fifo_read_us": results["fifo"].read.mean_us,
                "prio_read_us": results["read-priority"].read.mean_us,
                "fifo_write_us": results["fifo"].write.mean_us,
                "prio_write_us": results["read-priority"].write.mean_us,
            }
        )
    return {
        "per_mix": rows,
        "mean_read_speedup": float(
            np.mean([r["fifo_read_us"] / max(r["prio_read_us"], 1e-9) for r in rows])
        ),
        "mean_write_slowdown": float(
            np.mean([r["prio_write_us"] / max(r["fifo_write_us"], 1e-9) for r in rows])
        ),
    }


# ----------------------------------------------------------------------
#: feature-group column slices for the 4-tenant 9-dim layout
_FEATURE_GROUPS = {
    "all": list(range(9)),
    "no-intensity": list(range(1, 9)),
    "no-characteristics": [0] + list(range(5, 9)),
    "no-proportions": list(range(0, 5)),
    "intensity-only": [0],
}


def ablation_features(scale: Scale, *, cache: ArtifactCache | None = None) -> dict:
    """Test accuracy with feature groups removed."""
    cache = cache or default_cache()
    params = {"samples": scale.dataset_samples, "iters": scale.train_iterations,
              "v": 6}
    return cache.get_or_build_json(
        "ablation-features", params, build=lambda: _features_build(scale, cache)
    )


def _features_build(scale: Scale, cache: ArtifactCache) -> dict:
    dataset = build_dataset(scale, cache=cache)
    out = {}
    for name, columns in _FEATURE_GROUPS.items():
        x = dataset.features[:, columns]
        x_train, x_test, y_train, y_test = train_test_split(
            x, dataset.labels, train_fraction=0.7, seed=1
        )
        scaler = StandardScaler()
        x_train = scaler.fit_transform(x_train)
        x_test = scaler.transform(x_test)
        network = MLP(
            [len(columns), 64, dataset.n_classes],
            hidden_activation="logistic",
            seed=1,
        )
        trainer = Trainer(network, "adam", learning_rate=0.02, seed=1)
        history = trainer.fit(
            x_train,
            y_train,
            iterations=scale.train_iterations,
            x_test=x_test,
            y_test=y_test,
        )
        out[name] = {
            "columns": columns,
            "final_accuracy": history.final_accuracy,
        }
    return out
