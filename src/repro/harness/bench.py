"""``repro bench`` — fixed benchmark suite with perf-regression tracking.

The ROADMAP's north star is "as fast as the hardware allows", but until
now the repo had no perf trajectory at all: a PR could halve the
simulator's throughput and nothing would notice.  This module runs a
**fixed suite of seeded scenarios** — tenant mixes on the event-driven
simulator, a GC-heavy device, a fault-injected run, and the vectorised
fast model — and records, per scenario:

* **wall-clock metrics** (``wall_s``, ``requests_per_s``) — noisy,
  machine-dependent, compared with a generous threshold;
* **simulated-latency metrics** (``sim_mean_read_us`` etc.) — fully
  deterministic for a given seed, so *any* drift beyond float noise
  means the model's behaviour changed;
* the **attribution breakdown** (phase totals/fractions) where the
  scenario runs the event-driven simulator, so "it got slower" comes
  with "and the time went into die waits".

Results land in a schema-versioned ``BENCH_<timestamp>.json``;
``--baseline <file> --max-regression <pct>`` compares against a
committed baseline and exits nonzero when any metric regresses past the
threshold, which is the CI tripwire.  ``--quick`` shrinks the traces
for smoke runs (quick and full results are never comparable — request
counts differ — so the comparison refuses mismatched files).
``--update-baseline`` writes the current run to the baseline path
(default ``benchmarks/baseline.json``) instead of comparing, so a
deliberate perf change refreshes the tripwire in one command.
``--trajectory [DIR]`` skips running entirely and renders the perf
history instead: every committed ``BENCH_*.json`` under DIR (default
``benchmarks/``) in timestamp order, with per-scenario wall-clock and
simulated-latency deltas between consecutive comparable runs.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

__all__ = [
    "SCHEMA_VERSION",
    "SCENARIOS",
    "BenchRegression",
    "run_bench",
    "run_scenario",
    "load_bench",
    "load_trajectory",
    "format_trajectory",
    "compare",
    "write_bench",
    "main",
]

#: Bump when the document layout changes shape (not when scenarios or
#: metrics are merely added); comparison refuses mismatched versions.
SCHEMA_VERSION = 1

#: Comparable metrics by direction: LOWER_BETTER regresses when it
#: grows, HIGHER_BETTER when it shrinks.  Unknown metrics are ignored by
#: comparison (forward compatibility: new metrics don't fail against old
#: baselines).
LOWER_BETTER = frozenset(
    {"wall_s", "sim_mean_read_us", "sim_mean_write_us", "sim_total_latency_us"}
)
HIGHER_BETTER = frozenset({"requests_per_s"})

#: request counts per scenario (full / --quick)
_FULL_REQUESTS = 3000
_QUICK_REQUESTS = 600

#: Wall-clock metrics are skipped when both runs finished faster than
#: this: below ~20ms a scenario is dominated by interpreter warm-up and
#: percent thresholds are meaningless.
_WALL_NOISE_FLOOR_S = 0.02


def _mix(specs, total_requests: int, seed: int):
    from ..workloads.mixer import synthesize_mix

    return synthesize_mix(specs, total_requests=total_requests, seed=seed).requests


def _spec(name: str, write_ratio: float, rate_rps: float, footprint_pages: int):
    from ..workloads.spec import WorkloadSpec

    return WorkloadSpec(
        name=name,
        write_ratio=write_ratio,
        rate_rps=rate_rps,
        mean_request_pages=2.0,
        sequential_fraction=0.3,
        skew=0.5,
        footprint_pages=footprint_pages,
    )


# ----------------------------------------------------------------------
# Scenario definitions.  Each builder returns (kind, requests, run_fn)
# where run_fn() executes one full run and returns a SimulationResult.
# Everything is seeded: two invocations produce identical simulated
# metrics, so only the wall-clock numbers carry noise.
# ----------------------------------------------------------------------
def _scenario_mix2(total: int):
    from ..ssd.config import SSDConfig

    cfg = SSDConfig.small()
    requests = _mix(
        [
            _spec("writer", 0.9, 8000.0, 4096),
            _spec("reader", 0.1, 6000.0, 4096),
        ],
        total,
        seed=101,
    )
    sets = {0: list(range(cfg.channels)), 1: list(range(cfg.channels))}
    return "simulator", requests, cfg, sets, None


def _scenario_mix4(total: int):
    from ..ssd.config import SSDConfig

    cfg = SSDConfig.small()
    requests = _mix(
        [
            _spec("writer-a", 0.9, 4000.0, 2048),
            _spec("writer-b", 0.8, 4000.0, 2048),
            _spec("reader-a", 0.1, 3000.0, 2048),
            _spec("reader-b", 0.05, 3000.0, 2048),
        ],
        total,
        seed=202,
    )
    half = cfg.channels // 2
    sets = {
        0: list(range(half)),
        1: list(range(half)),
        2: list(range(half, cfg.channels)),
        3: list(range(half, cfg.channels)),
    }
    return "simulator", requests, cfg, sets, None


def _scenario_gc_heavy(total: int):
    from ..ssd.config import SSDConfig

    # Tiny blocks, one channel per writer, footprints near capacity: the
    # trace overwrites each channel several times, keeping GC busy.
    cfg = SSDConfig(blocks_per_plane=4, pages_per_block=16)
    requests = _mix(
        [
            _spec("writer-a", 0.95, 4000.0, 190),
            _spec("writer-b", 0.85, 3000.0, 190),
        ],
        total,
        seed=303,
    )
    sets = {0: [0], 1: [1]}
    return "simulator", requests, cfg, sets, None


def _scenario_faulted(total: int):
    from ..ssd.config import SSDConfig
    from ..ssd.faults import FaultConfig

    cfg = SSDConfig(blocks_per_plane=24, pages_per_block=16)
    requests = _mix(
        [
            _spec("writer", 0.9, 6000.0, 4000),
            _spec("reader", 0.1, 5000.0, 4000),
        ],
        total,
        seed=404,
    )
    sets = {0: [0, 1, 2, 3], 1: [4, 5, 6, 7]}
    faults = FaultConfig(
        seed=17, read_ber=0.05, program_fail_rate=0.002, erase_fail_rate=0.01
    )
    return "simulator", requests, cfg, sets, faults


def _scenario_fastmodel(total: int):
    from ..ssd.config import SSDConfig

    cfg = SSDConfig.small()
    requests = _mix(
        [
            _spec("writer-a", 0.9, 4000.0, 2048),
            _spec("writer-b", 0.8, 4000.0, 2048),
            _spec("reader-a", 0.1, 3000.0, 2048),
            _spec("reader-b", 0.05, 3000.0, 2048),
        ],
        total,
        seed=202,
    )
    half = cfg.channels // 2
    sets = {
        0: list(range(half)),
        1: list(range(half)),
        2: list(range(half, cfg.channels)),
        3: list(range(half, cfg.channels)),
    }
    return "fastmodel", requests, cfg, sets, None


def _adversarial(builder_name: str, total: int, seed: int, **kwargs):
    """Shared plumbing of the adversarial scenarios: build, truncate, share.

    The generators size the trace from rates and phase durations, so the
    chronological truncation to ``total`` mirrors the paper's "mix then
    take the first N" recipe; channel sets stay fully shared — the bench
    measures the simulator under hostile traffic, not the keeper.
    """
    from ..ssd.config import SSDConfig
    from ..workloads.adversarial import build_scenario

    cfg = SSDConfig.small()
    workload = build_scenario(builder_name, seed=seed, **kwargs)
    requests = workload.requests[:total]
    sets = {
        wid: list(range(cfg.channels)) for wid in range(workload.n_tenants)
    }
    return "simulator", requests, cfg, sets, None


def _scenario_drift_hotspot(total: int):
    return _adversarial(
        "migrating_hotspot", total, seed=505,
        base_rate_rps=3000.0, hot_rate_factor=6.0,
    )


def _scenario_phase_change(total: int):
    return _adversarial(
        "phase_change", total, seed=606,
        base_rate_rps=3000.0, changer_rate_rps=9000.0,
    )


def _scenario_noisy_neighbor(total: int):
    return _adversarial(
        "noisy_neighbor", total, seed=707,
        base_rate_rps=3000.0, noise_factor=8.0,
    )


#: scenario name -> builder(total_requests); insertion order is report order
SCENARIOS: dict[str, Callable] = {
    "mix2_shared": _scenario_mix2,
    "mix4_split": _scenario_mix4,
    "gc_heavy": _scenario_gc_heavy,
    "faulted": _scenario_faulted,
    "fastmodel": _scenario_fastmodel,
    "drift_hotspot": _scenario_drift_hotspot,
    "phase_change": _scenario_phase_change,
    "noisy_neighbor": _scenario_noisy_neighbor,
}


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------
def run_scenario(
    name: str, *, quick: bool = False, repeat: int = 1,
    attribution: bool = True, slo=None, flight_dir=None, baseline_entry=None,
) -> dict:
    """Run one scenario ``repeat`` times; best wall-clock is recorded.

    Simulated metrics are deterministic, so repeats only damp host noise
    in ``wall_s`` / ``requests_per_s``.

    ``slo`` (a spec dict or :class:`~repro.obs.slo.SloSpec`) arms the SLO
    watchdog per event-driven scenario — the spec is re-validated against
    the scenario's tenants — and the entry gains an ``"slo"`` section
    (window/alert counts; comparison ignores it, so SLO'd runs stay
    baseline-compatible).  ``flight_dir`` arms a flight recorder under
    ``<flight_dir>/<scenario>``, so a paged regression comes with a
    reproducible bundle attached; when ``baseline_entry`` (this
    scenario's entry from a baseline document) is also given, its
    attribution phases become the recorder's last-known-good reference,
    so any bundle carries a ``diff.json`` against the baseline run.
    """
    builder = SCENARIOS[name]
    total = _QUICK_REQUESTS if quick else _FULL_REQUESTS
    kind, requests, cfg, sets, faults = builder(total)
    slo_spec = None
    if slo is not None and kind != "fastmodel":
        from ..obs import SloSpec

        slo_spec = (
            slo if isinstance(slo, SloSpec)
            else SloSpec.from_dict(slo, known_tenants=set(sets))
        )
    best_wall_s = None
    result = None
    breakdown = None
    obs = None
    for _ in range(max(1, repeat)):
        t0_s = time.perf_counter()
        if kind == "fastmodel":
            from ..ssd.fastmodel import fast_simulate

            result = fast_simulate(requests, cfg, sets)
        else:
            from ..obs import Observability
            from ..ssd.simulator import simulate

            recorder = None
            if flight_dir is not None:
                from ..obs import FlightRecorder

                replay = ["python", "-m", "repro", "bench", "--scenario", name]
                explain = ["python", "-m", "repro", "explain",
                           "--scenario", name]
                if quick:
                    replay.append("--quick")
                    explain.append("--quick")
                last_good = None
                if baseline_entry and baseline_entry.get("attribution"):
                    last_good = {
                        "attribution": baseline_entry["attribution"],
                    }
                recorder = FlightRecorder(
                    Path(flight_dir) / name,
                    context={"scenario": name, "quick": quick,
                             "requests": len(requests)},
                    replay_argv=replay,
                    explain_argv=explain,
                    last_good=last_good,
                )
            obs = Observability(
                trace=False, attribution=attribution, slo=slo_spec,
                flight_recorder=recorder,
            )
            result = simulate(
                requests, cfg, sets, record_latencies=True, obs=obs, faults=faults
            )
            breakdown = result.breakdown
        wall_s = time.perf_counter() - t0_s
        if best_wall_s is None or wall_s < best_wall_s:
            best_wall_s = wall_s
    metrics = {
        "wall_s": best_wall_s,
        "requests_per_s": len(requests) / best_wall_s if best_wall_s else 0.0,
        "sim_mean_read_us": result.mean_read_us,
        "sim_mean_write_us": result.mean_write_us,
        "sim_total_latency_us": result.total_latency_us,
    }
    out = {"kind": kind, "requests": len(requests), "metrics": metrics}
    if breakdown is not None:
        out["attribution"] = {
            "requests": breakdown.requests,
            "phase_totals_us": {**breakdown.phase_totals_us},
            "phase_fractions": breakdown.phase_fractions(),
        }
    if obs is not None and obs.slo is not None:
        rollup = obs.slo.summary()
        out["slo"] = {
            "windows": rollup["windows"],
            "warn_alerts": rollup["warn_alerts"],
            "page_alerts": rollup["page_alerts"],
            "bundles": (
                [str(p) for p in obs.flight_recorder.bundles]
                if obs.flight_recorder is not None else []
            ),
        }
    return out


def run_bench(
    *,
    quick: bool = False,
    repeat: int = 1,
    attribution: bool = True,
    scenarios: list[str] | None = None,
    slo=None,
    flight_dir=None,
    baseline=None,
    log=None,
) -> dict:
    """Run the suite; returns the schema-versioned result document."""
    names = list(SCENARIOS) if scenarios is None else scenarios
    for name in names:
        if name not in SCENARIOS:
            raise KeyError(
                f"unknown scenario {name!r}; available: {', '.join(SCENARIOS)}"
            )
    doc: dict = {
        "schema_version": SCHEMA_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": quick,
        "repeat": max(1, repeat),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scenarios": {},
    }
    baseline_scenarios = (baseline or {}).get("scenarios", {})
    for name in names:
        entry = run_scenario(
            name, quick=quick, repeat=repeat, attribution=attribution,
            slo=slo, flight_dir=flight_dir,
            baseline_entry=baseline_scenarios.get(name),
        )
        doc["scenarios"][name] = entry
        if log is not None:
            m = entry["metrics"]
            line = (
                f"{name:<12} {entry['requests']:>6} reqs  "
                f"{m['wall_s']:.3f}s wall  {m['requests_per_s']:>9.0f} req/s  "
                f"mean read {m['sim_mean_read_us']:.1f}us "
                f"write {m['sim_mean_write_us']:.1f}us"
            )
            slo_entry = entry.get("slo")
            if slo_entry is not None:
                line += (
                    f"  slo[{slo_entry['windows']}w "
                    f"{slo_entry['warn_alerts']}warn "
                    f"{slo_entry['page_alerts']}page]"
                )
            log(line)
    return doc


#: top-level fields every bench document carries (round-trip contract
#: with run_bench — R007 checks writer and reader agree on this set)
_BENCH_FIELDS = frozenset({
    "schema_version", "created", "quick", "repeat", "python", "platform",
    "scenarios",
})


def load_bench(doc: dict, *, side: str = "bench") -> dict:
    """Validate a bench result document produced by :func:`run_bench`.

    The round-trip reader for the bench schema: refuses version
    mismatches and structurally truncated documents so comparison never
    operates on half a result.
    """
    if doc.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"{side} document has schema_version "
            f"{doc.get('schema_version')!r}; this tool expects "
            f"{SCHEMA_VERSION}"
        )
    missing = _BENCH_FIELDS - set(doc)
    if missing:
        raise ValueError(
            f"{side} document is missing fields: {sorted(missing)}"
        )
    return doc


def write_bench(doc: dict, out_dir) -> Path:
    """Write ``doc`` as ``BENCH_<timestamp>.json`` under ``out_dir``."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    stamp = doc["created"].replace(":", "").replace("-", "")
    path = out_dir / f"BENCH_{stamp}.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


# ----------------------------------------------------------------------
# Perf trajectory across committed BENCH_*.json files
# ----------------------------------------------------------------------
#: per-scenario metrics the trajectory view tracks between runs
_TRAJECTORY_METRICS = ("wall_s", "sim_mean_read_us", "sim_mean_write_us")


def load_trajectory(bench_dir, *, on_skip=None) -> list[dict]:
    """Load every ``BENCH_*.json`` under ``bench_dir`` in timestamp order.

    Each entry is ``{"name": filename, "doc": validated document}``;
    ordering follows the documents' ``created`` stamps (ties broken by
    filename), so the list reads as the repo's perf history.  Files that
    cannot be read or fail :func:`load_bench` validation (older schema
    versions, truncated JSON) are **skipped, not fatal** — the committed
    history must stay readable as the schema evolves.  Each skip invokes
    ``on_skip(filename, reason)`` (default: a ``UserWarning``), so silent
    data loss is impossible.
    """
    if on_skip is None:
        def on_skip(name: str, reason: str) -> None:
            warnings.warn(
                f"skipping {name}: {reason}", UserWarning, stacklevel=3
            )
    runs = []
    for path in sorted(Path(bench_dir).glob("BENCH_*.json")):
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
            load_bench(doc, side=path.name)
        except (OSError, json.JSONDecodeError, ValueError) as exc:
            on_skip(path.name, str(exc))
            continue
        if not isinstance(doc.get("created"), str):
            on_skip(path.name, "document has no usable 'created' stamp")
            continue
        runs.append({"name": path.name, "doc": doc})
    runs.sort(key=lambda run: (run["doc"]["created"], run["name"]))
    return runs


def _delta_pct(base: float, value: float) -> "float | None":
    if not base:
        return None
    return (value - base) / base * 100.0


def format_trajectory(runs: list[dict]) -> str:
    """Human-readable perf trajectory with deltas between consecutive runs.

    For each consecutive pair of comparable runs (same quick/full size)
    every shared scenario shows wall-clock and simulated-latency deltas;
    incomparable neighbours (a ``--quick`` run next to a full one) are
    listed but not diffed.
    """
    if not runs:
        return "no BENCH_*.json files found"
    lines = []
    for i, run in enumerate(runs):
        doc = run["doc"]
        size = "quick" if doc.get("quick") else "full"
        lines.append(
            f"{i}: {run['name']}  ({size}, created {doc['created']}, "
            f"python {doc.get('python', '?')})"
        )
    for prev, curr in zip(runs, runs[1:]):
        lines.append("")
        header = f"{prev['name']} -> {curr['name']}"
        if bool(prev["doc"].get("quick")) != bool(curr["doc"].get("quick")):
            lines.append(f"{header}: incomparable (quick/full size mismatch)")
            continue
        lines.append(header)
        prev_scen = prev["doc"].get("scenarios", {})
        curr_scen = curr["doc"].get("scenarios", {})
        shared = [name for name in curr_scen if name in prev_scen]
        if not shared:
            lines.append("  (no shared scenarios)")
            continue
        for name in shared:
            cells = []
            for metric in _TRAJECTORY_METRICS:
                base = prev_scen[name].get("metrics", {}).get(metric)
                value = curr_scen[name].get("metrics", {}).get(metric)
                if base is None or value is None:
                    continue
                delta = _delta_pct(base, value)
                delta_text = f"{delta:+.1f}%" if delta is not None else "n/a"
                cells.append(f"{metric} {base:.4g}->{value:.4g} ({delta_text})")
            lines.append(f"  {name:<16} " + "  ".join(cells))
        only_new = sorted(set(curr_scen) - set(prev_scen))
        if only_new:
            lines.append(f"  new scenarios: {', '.join(only_new)}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Baseline comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BenchRegression:
    """One metric that moved past the allowed threshold."""

    scenario: str
    metric: str
    baseline: float
    current: float
    change_pct: float

    def describe(self) -> str:
        return (
            f"{self.scenario}.{self.metric}: {self.baseline:.6g} -> "
            f"{self.current:.6g} ({self.change_pct:+.1f}%)"
        )


def compare(
    current: dict, baseline: dict, *, max_regression_pct: float
) -> list[BenchRegression]:
    """Regressions of ``current`` against ``baseline``.

    Only metrics present in both documents and named in
    :data:`METRIC_DIRECTIONS` are compared; scenarios missing on either
    side are skipped (suites may grow).  Raises :class:`ValueError` when
    the documents are structurally incomparable (schema version or
    quick/full mismatch).
    """
    if max_regression_pct < 0:
        raise ValueError("max_regression_pct must be non-negative")
    for doc, side in ((current, "current"), (baseline, "baseline")):
        load_bench(doc, side=side)
    if bool(current.get("quick")) != bool(baseline.get("quick")):
        raise ValueError(
            "cannot compare a --quick run against a full-size baseline "
            "(request counts differ); regenerate the baseline at the "
            "same size"
        )
    regressions: list[BenchRegression] = []
    for name, entry in current.get("scenarios", {}).items():
        base_entry = baseline.get("scenarios", {}).get(name)
        if base_entry is None:
            continue
        base_metrics = base_entry.get("metrics", {})
        wall_s = entry.get("metrics", {}).get("wall_s") or 0.0
        base_wall_s = base_metrics.get("wall_s") or 0.0
        below_floor = max(wall_s, base_wall_s) < _WALL_NOISE_FLOOR_S
        for metric, value in entry.get("metrics", {}).items():
            lower_better = metric in LOWER_BETTER
            base = base_metrics.get(metric)
            if not lower_better and metric not in HIGHER_BETTER:
                continue
            if base is None or base == 0:
                continue
            if below_floor and metric in ("wall_s", "requests_per_s"):
                continue
            if lower_better:
                change_pct = (value - base) / base * 100.0
            else:
                change_pct = (base - value) / base * 100.0
            if change_pct > max_regression_pct:
                regressions.append(
                    BenchRegression(name, metric, base, value, change_pct)
                )
    return regressions


# ----------------------------------------------------------------------
def _write_forensics(
    baseline: dict, current: dict, baseline_name: str, out_dir,
    *, wall_tolerance_pct: float,
) -> "Path | None":
    """Emit ``diff_report.json`` next to the bench results on a failure.

    A failing ``--baseline`` check prints *that* something regressed; the
    forensics report says *where* — per-scenario classified deltas plus
    the attribution-delta waterfall (which latency phase the time moved
    into).  CI uploads it alongside the ``BENCH_*.json`` artifact.
    Failures here never mask the regression exit code.
    """
    from ..obs.diff import build_diff_report, diff_bench_docs, write_diff

    try:
        section = diff_bench_docs(
            baseline, current, wall_tolerance_pct=wall_tolerance_pct
        )
        report = build_diff_report(
            "bench", baseline_name, "current run", {"bench": section}
        )
        return write_diff(report, Path(out_dir) / "diff_report.json")
    except (OSError, ValueError) as exc:
        print(f"repro bench: cannot write forensics bundle: {exc}",
              file=sys.stderr)
        return None


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    """``repro bench`` entry point; returns a process exit code.

    Exit codes: 0 = suite ran (and passed any baseline check); 1 = a
    metric regressed past ``--max-regression``; 2 = usage error or
    incomparable baseline.
    """
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Run the fixed benchmark suite and track perf regressions.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"small traces ({_QUICK_REQUESTS} requests/scenario instead of "
        f"{_FULL_REQUESTS}); CI smoke size",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="run each scenario N times and keep the best wall-clock "
        "(damps host noise; simulated metrics are deterministic)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        default=None,
        help=f"run only this scenario (repeatable); available: "
        f"{', '.join(SCENARIOS)}",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=".",
        help="directory for BENCH_<timestamp>.json (default: current dir)",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="skip writing the BENCH_*.json file",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="compare against this BENCH_*.json; exit 1 on regression",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=30.0,
        metavar="PCT",
        help="allowed regression per metric in percent (default 30)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write this run to the --baseline path (default "
        "benchmarks/baseline.json) instead of comparing against it",
    )
    parser.add_argument(
        "--slo",
        metavar="FILE",
        default=None,
        help="arm the SLO watchdog per event-driven scenario with this "
        "JSON spec (re-validated against each scenario's tenants)",
    )
    parser.add_argument(
        "--flight-dir",
        metavar="DIR",
        default=None,
        help="arm the flight recorder: page alerts and failures dump "
        "reproducible bundles under DIR/<scenario>",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the full result document to stdout as JSON",
    )
    parser.add_argument(
        "--trajectory",
        nargs="?",
        const="benchmarks",
        default=None,
        metavar="DIR",
        help="do not run the suite: list committed BENCH_*.json under DIR "
        "(default benchmarks/) in timestamp order with per-scenario "
        "wall-clock and simulated-latency deltas between consecutive runs",
    )
    args = parser.parse_args(argv)
    if args.repeat < 1:
        parser.error("--repeat must be >= 1")

    if args.trajectory is not None:
        def _skip(name: str, reason: str) -> None:
            print(f"repro bench: skipping {name}: {reason}", file=sys.stderr)

        try:
            runs = load_trajectory(args.trajectory, on_skip=_skip)
        except OSError as exc:
            print(f"repro bench: cannot read trajectory: {exc}",
                  file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(
                [{"name": r["name"], "doc": r["doc"]} for r in runs],
                indent=2, sort_keys=True,
            ))
        else:
            print(format_trajectory(runs))
        return 0

    slo = None
    if args.slo is not None:
        try:
            with open(args.slo, encoding="utf-8") as fh:
                slo = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"repro bench: cannot read SLO spec: {exc}", file=sys.stderr)
            return 2

    baseline = None
    baseline_path = args.baseline
    if args.update_baseline and baseline_path is None:
        baseline_path = "benchmarks/baseline.json"
    if baseline_path is not None and not args.update_baseline:
        try:
            with open(baseline_path, encoding="utf-8") as fh:
                baseline = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"repro bench: cannot read baseline: {exc}", file=sys.stderr)
            return 2

    try:
        doc = run_bench(
            quick=args.quick,
            repeat=args.repeat,
            scenarios=args.scenario,
            slo=slo,
            flight_dir=args.flight_dir,
            baseline=baseline,
            log=None if args.json else print,
        )
    except KeyError as exc:
        print(f"repro bench: {exc.args[0]}", file=sys.stderr)
        return 2
    except Exception as exc:
        from ..obs import SloSpecError

        if isinstance(exc, SloSpecError):
            print(f"repro bench: invalid SLO spec: {exc}", file=sys.stderr)
            return 2
        raise

    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    if not args.no_write:
        path = write_bench(doc, args.out)
        print(f"wrote {path}")

    if args.update_baseline:
        target = Path(baseline_path)
        if target.parent != Path(""):
            target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"updated baseline {target}")
        return 0

    if baseline is not None:
        try:
            regressions = compare(
                doc, baseline, max_regression_pct=args.max_regression
            )
        except ValueError as exc:
            print(f"repro bench: {exc}", file=sys.stderr)
            return 2
        if regressions:
            print(
                f"REGRESSION: {len(regressions)} metric(s) moved more than "
                f"{args.max_regression:g}% past {args.baseline}:",
                file=sys.stderr,
            )
            for reg in regressions:
                print(f"  {reg.describe()}", file=sys.stderr)
            forensics = _write_forensics(
                baseline, doc, args.baseline, args.out,
                wall_tolerance_pct=args.max_regression,
            )
            if forensics is not None:
                print(f"forensics bundle: {forensics}", file=sys.stderr)
            return 1
        print(
            f"baseline check passed (threshold {args.max_regression:g}%, "
            f"vs {args.baseline})"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the repro CLI
    sys.exit(main())
