"""Disk cache for expensive experiment artifacts.

Label datasets and trained models take minutes to build; every bench and
example that needs them goes through :class:`ArtifactCache` so the cost is
paid once per (key, parameters) combination.  Keys hash the full parameter
dict, so changing any knob invalidates cleanly.

The cache lives in ``.repro-cache/`` next to the repository root (or
``$REPRO_CACHE_DIR``); entries are plain files, safe to delete at any time.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Callable, TypeVar

T = TypeVar("T")

__all__ = ["ArtifactCache", "default_cache"]


def _stable_hash(params: dict) -> str:
    """Deterministic short hash of a JSON-serialisable parameter dict."""
    blob = json.dumps(params, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


class ArtifactCache:
    """File-per-artifact cache with save/load callbacks."""

    def __init__(self, root: str | Path | None = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or Path.cwd() / ".repro-cache"
        self.root = Path(root)

    def path_for(self, name: str, params: dict, suffix: str) -> Path:
        """Deterministic on-disk location for one artifact."""
        return self.root / f"{name}-{_stable_hash(params)}{suffix}"

    def get_or_build(
        self,
        name: str,
        params: dict,
        *,
        build: Callable[[], T],
        save: Callable[[T, Path], None],
        load: Callable[[Path], T],
        suffix: str = ".bin",
    ) -> T:
        """Return the cached artifact, building and saving it on first use."""
        path = self.path_for(name, params, suffix)
        if path.exists():
            try:
                return load(path)
            except Exception:
                path.unlink(missing_ok=True)  # corrupt entry: rebuild
        artifact = build()
        self.root.mkdir(parents=True, exist_ok=True)
        # Keep the real suffix last: writers like np.savez append their own
        # extension when they don't recognise the file name's suffix.
        tmp = path.with_name(f"{path.stem}.tmp{path.suffix}")
        save(artifact, tmp)
        os.replace(tmp, path)
        return artifact

    def get_or_build_json(
        self, name: str, params: dict, *, build: Callable[[], dict]
    ) -> dict:
        """JSON-document convenience wrapper around :meth:`get_or_build`."""
        return self.get_or_build(
            name,
            params,
            build=build,
            save=lambda doc, p: p.write_text(json.dumps(doc), encoding="utf-8"),
            load=lambda p: json.loads(p.read_text(encoding="utf-8")),
            suffix=".json",
        )

    def clear(self, name: str | None = None) -> int:
        """Delete entries (all, or those with the given name prefix)."""
        if not self.root.exists():
            return 0
        removed = 0
        for path in self.root.iterdir():
            if name is None or path.name.startswith(f"{name}-"):
                path.unlink()
                removed += 1
        return removed


_DEFAULT: ArtifactCache | None = None


def default_cache() -> ArtifactCache:
    """Process-wide cache instance (respects ``$REPRO_CACHE_DIR``)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = ArtifactCache()
    return _DEFAULT
