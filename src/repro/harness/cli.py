"""Command-line interface: regenerate any paper table or figure.

Usage::

    python -m repro info
    python -m repro fig2 --scale smoke
    python -m repro tab3
    python -m repro fig5 --scale default
    python -m repro all --scale smoke
    python -m repro stats --trace run.jsonl --chrome-trace run.chrome.json
    python -m repro stats --json --metrics-out metrics.json
    python -m repro stats --sanitize
    python -m repro stats --telemetry-out run.telemetry.jsonl --slo examples/slo.json
    python -m repro stats --openmetrics metrics.om --flight-dir flight/
    python -m repro faults --read-ber 0.02 --program-fail-rate 0.001
    python -m repro lint src/repro/ssd --select R001,R004 --json
    python -m repro bench --quick --baseline benchmarks/baseline.json
    python -m repro explain --scenario gc_heavy --sanitize
    python -m repro profile --scenario gc_heavy --top 25
    python -m repro drift --scenario migrating_hotspot --sanitize
    python -m repro drift --scenario phase_change --poison --json
    python -m repro fleet --devices 3 --tenants 6 --seed 7
    python -m repro fleet --quick --slo-tight --out fleet_report.json
    python -m repro bench --trajectory
    python -m repro diff bench BENCH_A.json BENCH_B.json
    python -m repro diff run --scenario gc_heavy --scale bus_bandwidth=0.5
    python -m repro diff critpath explain_a.json explain_b.json --out d.json

Each experiment prints its regenerated table; expensive artifacts are
cached under ``.repro-cache`` exactly as in the benches.  ``stats`` runs
one fully-instrumented event-driven simulation and pretty-prints the
metrics registry (or dumps it as JSON); ``--trace`` / ``--chrome-trace``
export the structured event trace as JSONL and in Chrome trace format
(loadable in ``chrome://tracing`` or Perfetto).  ``faults`` is the same
instrumented run with the seeded NAND fault model switched on
(``--read-ber`` / ``--program-fail-rate`` / ``--erase-fail-rate`` / ...);
the report includes the ``faults.*`` counters.  ``--sanitize`` attaches
the runtime :class:`~repro.analysis.Sanitizer` to the ``stats`` /
``faults`` run (invariant checks on every event, grant, mapping op and GC
pass).  ``lint`` runs the repro domain lints — per-file R001-R004 plus the
whole-program rules R005-R007 (seed provenance, pool safety, schema
round-trip) — and forwards its arguments to ``python -m repro.analysis``
(``--json`` / ``--sarif`` / ``--changed`` / ``--baseline`` included).  ``bench`` runs the fixed
benchmark suite (:mod:`repro.harness.bench`) and, with ``--baseline``,
exits nonzero when a metric regresses past ``--max-regression``.
``explain`` reconstructs the run-level critical path of a seeded bench
scenario and sweeps exact counterfactuals (:mod:`repro.harness.explain`);
``profile`` cProfiles a scenario's host hot paths
(:mod:`repro.harness.hostprofile`).  ``drift`` plays an adversarial
tenant scenario through the hardened adaptive keeper and the one-shot
paper keeper side by side (:mod:`repro.harness.driftlab`): drift
detections, guarded retrains with promote-or-rollback outcomes, and the
latency comparison, all seeded and byte-identical across invocations.
``fleet`` runs a seeded N-device, M-tenant scenario under the fleet
observability plane (:mod:`repro.harness.fleetlab`): federated metric
rollups, ``tenant_migration`` trace spans, fleet-level SLO burn-rate
alerting, and a deterministic schema-versioned ``fleet_report.json``.
``diff`` is the differential forensics layer over all of the above
(:mod:`repro.harness.difflab`): compare two bench documents, re-simulate
a scenario under two configs to localize the first divergent trace
event, or rank the critical-path resource shifts between two runs.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable

import numpy as np

from ..core.strategies import StrategySpace
from ..ssd.config import SSDConfig
from .ablations import (
    ablation_fastmodel,
    ablation_features,
    ablation_hybrid,
    ablation_model_size,
    ablation_scheduling,
)
from .experiments import (
    MIX_COMPOSITIONS,
    fig2_motivation,
    fig5_performance,
    fig6_strategy_map,
    labeler_config,
    tab2_workloads,
    tab5_allocations,
    train_all,
    trained_learner,
)
from .reporting import banner, format_metrics, format_series, format_table
from .scale import Scale

__all__ = ["main"]


def _cmd_info(scale: Scale) -> str:
    config = SSDConfig.paper()
    space = StrategySpace(8, 4)
    lines = [
        banner("SSDKeeper reproduction"),
        config.describe(),
        space.describe(),
        f"scale: {scale.name} (dataset {scale.dataset_samples} mixes, "
        f"{scale.train_iterations} iterations, fig2 {scale.fig2_requests} "
        f"requests/point, mixes {scale.mix_requests} requests)",
        "mix compositions: "
        + "; ".join(f"{k}={'+'.join(v)}" for k, v in MIX_COMPOSITIONS.items()),
    ]
    return "\n".join(lines)


def _cmd_fig2(scale: Scale) -> str:
    data = fig2_motivation(scale)
    parts = []
    for key, title in (
        ("write_latency_us", "Figure 2(a): mean write latency (us)"),
        ("read_latency_us", "Figure 2(b): mean read latency (us)"),
        ("total_latency_us", "Figure 2(c): total (write+read) latency (us)"),
    ):
        parts.append(
            format_series(
                "write_prop",
                data["write_proportions"],
                {s: data[key][s] for s in data["strategies"]},
                title=title,
            )
        )
    return "\n\n".join(parts)


def _cmd_fig4(scale: Scale) -> str:
    data = train_all(scale)
    idx = np.linspace(
        0, scale.train_iterations - 1, min(12, scale.train_iterations)
    ).astype(int)
    loss = {
        name: [row["loss_curve"][i] for i in idx]
        for name, row in data["variants"].items()
    }
    acc = {
        name: [row["accuracy_curve"][i] for i in idx]
        for name, row in data["variants"].items()
    }
    return "\n\n".join(
        [
            format_series("iter", idx.tolist(), loss,
                          title="Figure 4(a): training loss"),
            format_series("iter", idx.tolist(), acc,
                          title="Figure 4(b): test accuracy"),
        ]
    )


def _cmd_tab3(scale: Scale) -> str:
    data = train_all(scale)
    return format_table(
        ["optimizer", "loss", "accuracy", "time (ms)"],
        [
            [n, f"{r['final_loss']:.2f}", f"{r['final_accuracy']:.1%}",
             f"{r['training_time_ms']:.0f}"]
            for n, r in data["variants"].items()
        ],
        title="Table III",
    )


def _cmd_tab2(scale: Scale) -> str:
    rows = tab2_workloads()
    return format_table(
        ["workload", "write ratio (paper)", "write ratio (measured)", "#requests (paper)"],
        [
            [n, f"{r['paper_write_ratio']:.0%}", f"{r['measured_write_ratio']:.1%}",
             f"{r['paper_request_count']:,}"]
            for n, r in sorted(rows.items())
        ],
        title="Table II",
    )


def _cmd_fig5(scale: Scale) -> str:
    data = fig5_performance(scale)
    rows = []
    for mix_name, entry in data["mixes"].items():
        for tag, vals in entry["rows"].items():
            rows.append([mix_name, tag, f"{vals['mean_write_us']:.0f}",
                         f"{vals['mean_read_us']:.0f}",
                         f"{vals['total_latency_s']:.3f}"])
    return format_table(
        ["mix", "allocation", "write us", "read us", "total (s)"],
        rows,
        title="Figure 5",
    )


def _cmd_tab5(scale: Scale) -> str:
    data = tab5_allocations(scale)
    return format_table(
        ["mix", "features", "allocation"],
        [[n, e["features"], e["strategy"]] for n, e in data.items()],
        title="Table V",
    )


def _cmd_fig6(scale: Scale) -> str:
    data = fig6_strategy_map(scale)
    from collections import Counter

    histogram = Counter(p["simplified"] for p in data["points"])
    rows = [[name, count] for name, count in histogram.most_common()]
    return format_table(
        ["strategy (simplified)", "decisions"],
        rows,
        title=f"Figure 6: {len(data['points'])} decisions",
    )


def _cmd_quality(scale: Scale) -> str:
    """Held-out regret evaluation of the deployed model."""
    from ..core.evaluation import evaluate_learner, holdout_samples
    from ..core.strategies import StrategySpace

    cfg = labeler_config()
    learner = trained_learner(scale)
    samples = holdout_samples(cfg, StrategySpace(), max(30, scale.fig6_samples // 4))
    return format_table(
        ["metric", "value"],
        evaluate_learner(learner, samples).rows(),
        title=f"model quality on {len(samples)} held-out mixes",
    )


def _cmd_ablations(scale: Scale) -> str:
    parts = [banner("ablations")]
    hybrid = ablation_hybrid(scale)
    parts.append(
        f"hybrid vs all-static mean gain: "
        f"{hybrid['hybrid_vs_static_mean_gain']:+.1%} (paper: +2.1%)"
    )
    fidelity = ablation_fastmodel(scale)
    parts.append(
        f"fast-model fidelity: spearman {fidelity['mean_spearman']:.3f}, "
        f"winner agreement {fidelity['winner_agreement']:.0%}, "
        f"cross regret {fidelity['mean_cross_regret']:.3f}"
    )
    widths = ablation_model_size(scale)
    parts.append(format_table(
        ["hidden", "accuracy"],
        [[w, f"{r['final_accuracy']:.1%}"] for w, r in sorted(widths.items(), key=lambda kv: int(kv[0]))],
        title="hidden-width ablation",
    ))
    feats = ablation_features(scale)
    parts.append(format_table(
        ["features", "accuracy"],
        [[n, f"{r['final_accuracy']:.1%}"] for n, r in feats.items()],
        title="feature-group ablation",
    ))
    sched = ablation_scheduling(scale)
    parts.append(
        f"read-priority scheduling: reads {sched['mean_read_speedup']:.2f}x "
        f"faster, writes {sched['mean_write_slowdown']:.2f}x slower vs FIFO"
    )
    return "\n\n".join(parts)


#: tenant ids the ``stats``/``faults`` run actually has (see
#: :func:`repro.harness.experiments.stats_run` — a fixed 4-workload mix)
_STATS_TENANTS = range(4)


def _cmd_stats(scale: Scale, args: argparse.Namespace, faults=None,
               argv: list[str] | None = None) -> str:
    """Run one instrumented simulation and report/export its observability."""
    from ..obs import Observability, SloSpec, SloSpecError
    from .experiments import stats_run

    interval_us = args.utilization_interval  # repro-lint: disable=R001 (--utilization-interval is documented as microseconds)
    slo_spec = None
    if args.slo:
        try:
            slo_spec = SloSpec.load(args.slo, known_tenants=_STATS_TENANTS)
        except (OSError, SloSpecError) as exc:
            raise SystemExit(f"repro stats: cannot load SLO spec: {exc}")
    telemetry = args.telemetry_interval  # repro-lint: disable=R001 (--telemetry-interval is documented as microseconds)
    if telemetry is None and (args.telemetry_out or args.openmetrics):
        # an export was requested without an explicit interval: sample at
        # the SLO window (when given) or the utilization interval
        telemetry = slo_spec.window_us if slo_spec is not None else 500.0
    flight = None
    if args.flight_dir:
        from ..obs import FlightRecorder

        flight = FlightRecorder(
            args.flight_dir,
            context={"command": "faults" if faults is not None else "stats",
                     "scale": scale.name},
            replay_argv=(
                ["python", "-m", "repro", *argv] if argv is not None else None
            ),
        )
    obs = Observability(
        utilization_interval_us=interval_us if interval_us > 0 else None,
        attribution=True,
        telemetry=telemetry,
        slo=slo_spec,
        flight_recorder=flight,
    )
    sanitizer = None
    if args.sanitize:
        from ..analysis import Sanitizer

        sanitizer = Sanitizer()
    result = stats_run(scale, obs=obs, faults=faults, sanitizer=sanitizer)
    notes: list[str] = []
    if sanitizer is not None:
        checks = ", ".join(f"{k} {v}" for k, v in sanitizer.stats().items())
        notes.append(f"sanitizer: all invariants held ({checks})")
    if args.trace:
        written = obs.trace.write_jsonl(args.trace)
        notes.append(f"wrote {written} trace events to {args.trace}")
    if args.chrome_trace:
        written = obs.write_chrome_trace(args.chrome_trace)
        notes.append(f"wrote chrome trace ({written} records) to {args.chrome_trace}")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(obs.export(), fh, indent=2)
        notes.append(f"wrote metrics to {args.metrics_out}")
    if args.telemetry_out:
        windows = obs.telemetry.write_jsonl(args.telemetry_out)
        notes.append(
            f"wrote {windows} telemetry windows to {args.telemetry_out}"
        )
    if args.openmetrics:
        with open(args.openmetrics, "w", encoding="utf-8") as fh:
            fh.write(obs.registry.to_openmetrics())
        notes.append(f"wrote OpenMetrics exposition to {args.openmetrics}")
    if obs.slo is not None:
        rollup = obs.slo.summary()
        notes.append(
            f"slo: {rollup['windows']} windows evaluated, "
            f"{rollup['warn_alerts']} warn / {rollup['page_alerts']} page "
            f"alerts"
        )
    if obs.flight_recorder is not None and obs.flight_recorder.bundles:
        for bundle in obs.flight_recorder.bundles:
            notes.append(f"flight-recorder bundle: {bundle}")
    if args.json:
        payload = obs.export()
        if result.alerts is not None:
            payload["alerts"] = result.alerts
        body = json.dumps(payload, indent=2)
    else:
        body = result.summary() + "\n\n" + format_metrics(obs.registry.snapshot())
        if result.breakdown is not None:
            body += "\n\n" + result.breakdown.format()
    return "\n".join([*notes, "", body]) if notes else body


def _cmd_faults(scale: Scale, args: argparse.Namespace,
                argv: list[str] | None = None) -> str:
    """The ``stats`` run with the seeded NAND fault model switched on."""
    from ..ssd.faults import FaultConfig

    try:
        faults = FaultConfig(
            seed=args.fault_seed,
            read_ber=args.read_ber,
            program_fail_rate=args.program_fail_rate,
            erase_fail_rate=args.erase_fail_rate,
            max_read_retries=args.max_read_retries,
            wear_coupling=args.wear_coupling,
        )
    except ValueError as exc:
        raise SystemExit(f"repro faults: {exc}")
    return _cmd_stats(scale, args, faults=faults, argv=argv)


_COMMANDS: dict[str, Callable[[Scale], str]] = {
    "info": _cmd_info,
    "fig2": _cmd_fig2,
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "tab2": _cmd_tab2,
    "tab3": _cmd_tab3,
    "tab5": _cmd_tab5,
    "quality": _cmd_quality,
    "ablations": _cmd_ablations,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro``; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # the lint subcommand has its own argument surface; delegate
        from ..analysis.__main__ import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "bench":
        # same pattern: the bench suite owns its own argument surface
        from .bench import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "explain":
        from .explain import main as explain_main

        return explain_main(argv[1:])
    if argv and argv[0] == "profile":
        from .hostprofile import main as profile_main

        return profile_main(argv[1:])
    if argv and argv[0] == "drift":
        from .driftlab import main as drift_main

        return drift_main(argv[1:])
    if argv and argv[0] == "fleet":
        from .fleetlab import main as fleet_main

        return fleet_main(argv[1:])
    if argv and argv[0] == "diff":
        from .difflab import main as diff_main

        return diff_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate SSDKeeper paper tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*_COMMANDS, "stats", "faults", "all"],
        help="which table/figure to regenerate ('all' runs everything; "
        "'stats' runs one instrumented simulation and reports its metrics; "
        "'faults' is the same run under the seeded NAND fault model; "
        "'repro lint [paths]' runs the domain lints R001-R007; "
        "'repro bench' runs the benchmark suite with regression tracking; "
        "'repro explain' reconstructs a scenario's critical path and sweeps "
        "exact counterfactuals; 'repro profile' cProfiles its host hot paths; "
        "'repro drift' runs the adaptive keeper against adversarial tenant "
        "scenarios; 'repro fleet' runs a seeded multi-device scenario with "
        "fleet-level observability rollups; 'repro diff' compares two "
        "runs/bench reports and localizes the first divergence)",
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=["smoke", "default", "paper"],
        help="experiment scale (default: $REPRO_SCALE or 'default')",
    )
    obs_group = parser.add_argument_group("observability (stats command)")
    obs_group.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="export the structured event trace as JSONL",
    )
    obs_group.add_argument(
        "--chrome-trace",
        metavar="PATH",
        default=None,
        help="export the trace in Chrome trace format (chrome://tracing)",
    )
    obs_group.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the full metrics/utilization export as JSON",
    )
    obs_group.add_argument(
        "--utilization-interval",
        metavar="US",
        type=float,
        default=500.0,
        help="per-channel/die utilization sampling interval in simulated "
        "microseconds (0 disables; default 500)",
    )
    obs_group.add_argument(
        "--telemetry-out",
        metavar="PATH",
        default=None,
        help="stream delta-encoded telemetry windows to PATH as "
        "schema-versioned JSONL (enables telemetry sampling)",
    )
    obs_group.add_argument(
        "--telemetry-interval",
        metavar="US",
        type=float,
        default=None,
        help="telemetry window length in simulated microseconds (default: "
        "the SLO spec's window_us, else 500)",
    )
    obs_group.add_argument(
        "--slo",
        metavar="PATH",
        default=None,
        help="arm the SLO watchdog with a JSON spec (see examples/slo.json); "
        "burn-rate alerts surface as slo.* counters, slo_alert trace "
        "events, and an alerts section in --json output",
    )
    obs_group.add_argument(
        "--openmetrics",
        metavar="PATH",
        default=None,
        help="write the final registry as OpenMetrics text exposition",
    )
    obs_group.add_argument(
        "--flight-dir",
        metavar="DIR",
        default=None,
        help="arm the flight recorder: sanitizer traps, page-severity SLO "
        "alerts and unrecoverable reads dump reproducible debug bundles "
        "under DIR",
    )
    obs_group.add_argument(
        "--json",
        action="store_true",
        help="dump the metrics export as JSON to stdout instead of tables",
    )
    obs_group.add_argument(
        "--sanitize",
        action="store_true",
        help="attach the runtime sanitizer: assert event-time monotonicity, "
        "resource mutual exclusion, mapping bijectivity and capacity "
        "conservation throughout the run (stats/faults commands)",
    )
    fault_group = parser.add_argument_group("fault injection (faults command)")
    fault_group.add_argument(
        "--fault-seed",
        type=int,
        default=1234,
        metavar="N",
        help="fault-model RNG seed; same seed + trace => identical run "
        "(default 1234)",
    )
    fault_group.add_argument(
        "--read-ber",
        type=float,
        default=0.01,
        metavar="P",
        help="probability a read attempt needs an ECC retry (default 0.01)",
    )
    fault_group.add_argument(
        "--program-fail-rate",
        type=float,
        default=0.0005,
        metavar="P",
        help="probability one page program fails and retires its block "
        "(default 0.0005)",
    )
    fault_group.add_argument(
        "--erase-fail-rate",
        type=float,
        default=0.0005,
        metavar="P",
        help="probability one block erase fails and retires the block "
        "(default 0.0005)",
    )
    fault_group.add_argument(
        "--max-read-retries",
        type=int,
        default=3,
        metavar="N",
        help="ECC retries before a read is declared unrecoverable (default 3)",
    )
    fault_group.add_argument(
        "--wear-coupling",
        type=float,
        default=0.0,
        metavar="K",
        help="linear wear escalation: rate *= 1 + K * block erase count "
        "(default 0)",
    )
    args = parser.parse_args(argv)
    if args.utilization_interval < 0:
        parser.error("--utilization-interval must be >= 0 (0 disables)")
    if args.telemetry_interval is not None and args.telemetry_interval <= 0:
        parser.error("--telemetry-interval must be > 0")
    # Fail fast on unwritable export paths: the simulation itself can take
    # minutes at larger scales, so probe before running (append mode leaves
    # any existing export intact if a later step dies).
    for path in (args.trace, args.chrome_trace, args.metrics_out,
                 args.telemetry_out, args.openmetrics):
        if path:
            try:
                with open(path, "a"):
                    pass
            except OSError as exc:
                parser.error(f"cannot write {path}: {exc}")
    scale = Scale.from_name(args.scale) if args.scale else Scale.from_env("default")

    names = list(_COMMANDS) if args.experiment == "all" else [args.experiment]
    if args.experiment == "stats":
        print(banner("stats"))
        print(_cmd_stats(scale, args, argv=list(argv)))
        print()
        return 0
    if args.experiment == "faults":
        print(banner("faults"))
        print(_cmd_faults(scale, args, argv=list(argv)))
        print()
        return 0
    for name in names:
        print(banner(name))
        print(_COMMANDS[name](scale))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
