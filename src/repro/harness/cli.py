"""Command-line interface: regenerate any paper table or figure.

Usage::

    python -m repro info
    python -m repro fig2 --scale smoke
    python -m repro tab3
    python -m repro fig5 --scale default
    python -m repro all --scale smoke

Each experiment prints its regenerated table; expensive artifacts are
cached under ``.repro-cache`` exactly as in the benches.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

import numpy as np

from ..core.strategies import StrategySpace
from ..ssd.config import SSDConfig
from .ablations import (
    ablation_fastmodel,
    ablation_features,
    ablation_hybrid,
    ablation_model_size,
    ablation_scheduling,
)
from .experiments import (
    MIX_COMPOSITIONS,
    labeler_config,
    trained_learner,
    fig2_motivation,
    fig5_performance,
    fig6_strategy_map,
    tab2_workloads,
    tab5_allocations,
    train_all,
)
from .reporting import banner, format_series, format_table
from .scale import Scale

__all__ = ["main"]


def _cmd_info(scale: Scale) -> str:
    config = SSDConfig.paper()
    space = StrategySpace(8, 4)
    lines = [
        banner("SSDKeeper reproduction"),
        config.describe(),
        space.describe(),
        f"scale: {scale.name} (dataset {scale.dataset_samples} mixes, "
        f"{scale.train_iterations} iterations, fig2 {scale.fig2_requests} "
        f"requests/point, mixes {scale.mix_requests} requests)",
        "mix compositions: "
        + "; ".join(f"{k}={'+'.join(v)}" for k, v in MIX_COMPOSITIONS.items()),
    ]
    return "\n".join(lines)


def _cmd_fig2(scale: Scale) -> str:
    data = fig2_motivation(scale)
    parts = []
    for key, title in (
        ("write_latency_us", "Figure 2(a): mean write latency (us)"),
        ("read_latency_us", "Figure 2(b): mean read latency (us)"),
        ("total_latency_us", "Figure 2(c): total (write+read) latency (us)"),
    ):
        parts.append(
            format_series(
                "write_prop",
                data["write_proportions"],
                {s: data[key][s] for s in data["strategies"]},
                title=title,
            )
        )
    return "\n\n".join(parts)


def _cmd_fig4(scale: Scale) -> str:
    data = train_all(scale)
    idx = np.linspace(
        0, scale.train_iterations - 1, min(12, scale.train_iterations)
    ).astype(int)
    loss = {
        name: [row["loss_curve"][i] for i in idx]
        for name, row in data["variants"].items()
    }
    acc = {
        name: [row["accuracy_curve"][i] for i in idx]
        for name, row in data["variants"].items()
    }
    return "\n\n".join(
        [
            format_series("iter", idx.tolist(), loss,
                          title="Figure 4(a): training loss"),
            format_series("iter", idx.tolist(), acc,
                          title="Figure 4(b): test accuracy"),
        ]
    )


def _cmd_tab3(scale: Scale) -> str:
    data = train_all(scale)
    return format_table(
        ["optimizer", "loss", "accuracy", "time (ms)"],
        [
            [n, f"{r['final_loss']:.2f}", f"{r['final_accuracy']:.1%}",
             f"{r['training_time_ms']:.0f}"]
            for n, r in data["variants"].items()
        ],
        title="Table III",
    )


def _cmd_tab2(scale: Scale) -> str:
    rows = tab2_workloads()
    return format_table(
        ["workload", "write ratio (paper)", "write ratio (measured)", "#requests (paper)"],
        [
            [n, f"{r['paper_write_ratio']:.0%}", f"{r['measured_write_ratio']:.1%}",
             f"{r['paper_request_count']:,}"]
            for n, r in sorted(rows.items())
        ],
        title="Table II",
    )


def _cmd_fig5(scale: Scale) -> str:
    data = fig5_performance(scale)
    rows = []
    for mix_name, entry in data["mixes"].items():
        for tag, vals in entry["rows"].items():
            rows.append([mix_name, tag, f"{vals['mean_write_us']:.0f}",
                         f"{vals['mean_read_us']:.0f}",
                         f"{vals['total_latency_s']:.3f}"])
    return format_table(
        ["mix", "allocation", "write us", "read us", "total (s)"],
        rows,
        title="Figure 5",
    )


def _cmd_tab5(scale: Scale) -> str:
    data = tab5_allocations(scale)
    return format_table(
        ["mix", "features", "allocation"],
        [[n, e["features"], e["strategy"]] for n, e in data.items()],
        title="Table V",
    )


def _cmd_fig6(scale: Scale) -> str:
    data = fig6_strategy_map(scale)
    from collections import Counter

    histogram = Counter(p["simplified"] for p in data["points"])
    rows = [[name, count] for name, count in histogram.most_common()]
    return format_table(
        ["strategy (simplified)", "decisions"],
        rows,
        title=f"Figure 6: {len(data['points'])} decisions",
    )


def _cmd_quality(scale: Scale) -> str:
    """Held-out regret evaluation of the deployed model."""
    from ..core.evaluation import evaluate_learner, holdout_samples
    from ..core.strategies import StrategySpace

    cfg = labeler_config()
    learner = trained_learner(scale)
    samples = holdout_samples(cfg, StrategySpace(), max(30, scale.fig6_samples // 4))
    return format_table(
        ["metric", "value"],
        evaluate_learner(learner, samples).rows(),
        title=f"model quality on {len(samples)} held-out mixes",
    )


def _cmd_ablations(scale: Scale) -> str:
    parts = [banner("ablations")]
    hybrid = ablation_hybrid(scale)
    parts.append(
        f"hybrid vs all-static mean gain: "
        f"{hybrid['hybrid_vs_static_mean_gain']:+.1%} (paper: +2.1%)"
    )
    fidelity = ablation_fastmodel(scale)
    parts.append(
        f"fast-model fidelity: spearman {fidelity['mean_spearman']:.3f}, "
        f"winner agreement {fidelity['winner_agreement']:.0%}, "
        f"cross regret {fidelity['mean_cross_regret']:.3f}"
    )
    widths = ablation_model_size(scale)
    parts.append(format_table(
        ["hidden", "accuracy"],
        [[w, f"{r['final_accuracy']:.1%}"] for w, r in sorted(widths.items(), key=lambda kv: int(kv[0]))],
        title="hidden-width ablation",
    ))
    feats = ablation_features(scale)
    parts.append(format_table(
        ["features", "accuracy"],
        [[n, f"{r['final_accuracy']:.1%}"] for n, r in feats.items()],
        title="feature-group ablation",
    ))
    sched = ablation_scheduling(scale)
    parts.append(
        f"read-priority scheduling: reads {sched['mean_read_speedup']:.2f}x "
        f"faster, writes {sched['mean_write_slowdown']:.2f}x slower vs FIFO"
    )
    return "\n\n".join(parts)


_COMMANDS: dict[str, Callable[[Scale], str]] = {
    "info": _cmd_info,
    "fig2": _cmd_fig2,
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "tab2": _cmd_tab2,
    "tab3": _cmd_tab3,
    "tab5": _cmd_tab5,
    "quality": _cmd_quality,
    "ablations": _cmd_ablations,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro``; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate SSDKeeper paper tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*_COMMANDS, "all"],
        help="which table/figure to regenerate ('all' runs everything)",
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=["smoke", "default", "paper"],
        help="experiment scale (default: $REPRO_SCALE or 'default')",
    )
    args = parser.parse_args(argv)
    scale = Scale.from_name(args.scale) if args.scale else Scale.from_env("default")

    names = list(_COMMANDS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(banner(name))
        print(_COMMANDS[name](scale))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
