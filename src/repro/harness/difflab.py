"""``repro diff`` — differential forensics over recorded artifacts.

Front-end for :mod:`repro.obs.diff`: every mode compares two artifacts
of the same kind and emits one schema-versioned, byte-deterministic
``diff_report.json`` (plus a human summary).  Modes:

* ``repro diff bench A.json B.json`` — per-scenario metric deltas
  between two saved bench documents, classified against the bench
  suite's noise model, with the attribution-delta waterfall;
* ``repro diff run --scenario NAME [--scale KNOB=FACTOR ...]`` —
  re-simulate one seeded scenario, side B under scaled knobs, and
  localize the first divergent trace event; no ``--scale`` is the
  self-diff that must come back empty (the determinism assertion CI
  leans on);
* ``repro diff trace A.jsonl B.jsonl`` — first-divergence alignment of
  two recorded JSONL trace streams;
* ``repro diff critpath A.json B.json`` — resource-bucket shifts
  between two bottleneck reports (accepts raw critpath documents or
  ``repro explain --out`` documents);
* ``repro diff fleet FLEET.json DEV_A DEV_B`` — device-vs-device drift
  inside one fleet report.

Exit codes follow the harness contract: **0** clean (identical, or no
regressions for the artifact kinds where benign deltas are expected),
**1** localized divergence/regression, **2** usage error.  ``run`` and
``trace`` diffs are determinism assertions, so *any* divergence exits 1;
``bench`` / ``critpath`` / ``fleet`` diffs exit 1 only on regressions.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["main"]


def _load_json(path: str, *, what: str) -> dict:
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except OSError as exc:
        raise ValueError(f"cannot read {what} {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"{what} {path!r} is not valid JSON: {exc}") from exc


def _parse_scale(spec: str) -> tuple[str, float]:
    knob, sep, factor = spec.partition("=")
    if not sep or not knob:
        raise ValueError(
            f"--scale expects KNOB=FACTOR, got {spec!r}"
        )
    try:
        value = float(factor)
    except ValueError:
        raise ValueError(
            f"--scale factor must be a number, got {factor!r}"
        ) from None
    return knob, value


def _critpath_doc(doc: dict, path: str) -> dict:
    """Accept a raw critpath report or an explain document wrapping one."""
    if "critpath" in doc and "schema_version" in doc:
        from .explain import load_explain

        return load_explain(doc)["critpath"]
    return doc


def _exit_code(report: dict) -> int:
    # run/trace diffs assert determinism: any divergence is a failure;
    # the artifact diffs tolerate benign movement and fail on regressions
    if report["kind"] in ("run", "trace"):
        return 0 if report["identical"] else 1
    return 1 if report["regressions"] else 0


# ----------------------------------------------------------------------
# Human rendering
# ----------------------------------------------------------------------
def _format_metric_cells(cells: dict, *, indent: str = "  ") -> list[str]:
    lines = []
    for metric, cell in cells.items():
        if cell["classification"] == "neutral":
            continue
        pct = (
            f" ({cell['delta_pct']:+.1f}%)"
            if cell["delta_pct"] is not None else ""
        )
        lines.append(
            f"{indent}{metric}: {cell['a']:g} -> {cell['b']:g}"
            f"{pct} [{cell['classification']}]"
        )
    return lines


def _render(report: dict) -> str:
    head = (
        f"diff[{report['kind']}] {report['label_a']} vs {report['label_b']}: "
    )
    if report["identical"]:
        head += "identical"
    else:
        head += (
            f"{report['divergences']} divergences, "
            f"{report['regressions']} regressions"
        )
    lines = [head]
    sections = report["sections"]
    bench = sections.get("bench")
    if bench is not None:
        for name, entry in bench["scenarios"].items():
            cells = _format_metric_cells(entry["metrics"], indent="    ")
            if not cells:
                continue
            lines.append(f"  {name}:")
            lines.extend(cells)
            waterfall = entry.get("waterfall")
            if waterfall and waterfall[0]["delta_us"]:
                top = waterfall[0]
                lines.append(
                    f"    waterfall: {top['phase']} moved "
                    f"{top['delta_us']:+.1f}us ({top['share']:.0%} of shift)"
                )
        for side, names in (("a", bench["only_in_a"]),
                            ("b", bench["only_in_b"])):
            if names:
                lines.append(f"  only in {side}: {', '.join(names)}")
    metrics = sections.get("metrics")
    if metrics is not None:
        lines.extend(_format_metric_cells(metrics["metrics"]))
    trace = sections.get("trace")
    if trace is not None:
        first = trace["first_divergence"]
        if first is None:
            lines.append(
                f"  trace: {trace['events_a']} events, streams identical"
            )
        else:
            where = ", ".join(
                f"{key} {first[key]}"
                for key in ("tenant", "channel", "die")
                if first[key] is not None
            )
            ts = first["time_us_a"]
            if ts is None:
                ts = first["time_us_b"]
            lines.append(
                f"  trace: first divergence at event #{first['index']} "
                f"(t={ts:.2f}us, {first['kind']}"
                + (f", {where}" if where else "")
                + f"); {trace['divergent_events']} divergent downstream"
            )
    critpath = sections.get("critpath")
    if critpath is not None:
        if critpath["top_shift"] is None:
            lines.append("  critpath: no resource shifted")
        else:
            top = critpath["shifts"][0]
            line = (
                f"  critpath: {critpath['top_shift']} moved "
                f"{top['delta_us']:+.1f}us on-path "
                f"(bottleneck {critpath['bottleneck_a']} -> "
                f"{critpath['bottleneck_b']})"
            )
            device = critpath["top_resource_shift"]
            if device is not None and device != critpath["top_shift"]:
                line += f"; top device resource: {device}"
            lines.append(line)
    fleet = sections.get("fleet")
    if fleet is not None:
        lines.extend(_format_metric_cells(fleet["metrics"]))
        if fleet["health"] is not None:
            lines.append(
                f"  health: {fleet['health']['a']:.3f} -> "
                f"{fleet['health']['b']:.3f}"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Mode runners (each returns the full diff report document)
# ----------------------------------------------------------------------
def _run_bench(args) -> dict:
    from ..obs.diff import build_diff_report, diff_bench_docs

    doc_a = _load_json(args.a, what="bench document")
    doc_b = _load_json(args.b, what="bench document")
    section = diff_bench_docs(
        doc_a, doc_b, wall_tolerance_pct=args.wall_tolerance
    )
    return build_diff_report("bench", args.a, args.b, {"bench": section})


def _run_run(args) -> dict:
    from ..obs.diff import diff_run
    from .bench import _FULL_REQUESTS, _QUICK_REQUESTS, SCENARIOS

    builder = SCENARIOS.get(args.scenario)
    if builder is None:
        raise ValueError(
            f"unknown scenario {args.scenario!r}; available: "
            f"{', '.join(SCENARIOS)}"
        )
    total = _QUICK_REQUESTS if args.quick else _FULL_REQUESTS
    kind, requests, cfg, sets, faults = builder(total)
    if kind != "simulator":
        raise ValueError(
            f"scenario {args.scenario!r} runs the {kind} backend, which "
            "records no trace; run diff needs an event-driven scenario"
        )
    cfg_b = cfg
    label_b = args.scenario
    for spec in args.scale:
        knob, factor = _parse_scale(spec)
        try:
            cfg_b = cfg_b.scale_knob(knob, factor)
        except KeyError:
            from ..ssd.config import KNOBS

            raise ValueError(
                f"unknown knob {knob!r}; available: {', '.join(KNOBS)}"
            ) from None
        label_b += f"+{knob}x{factor:g}"
    return diff_run(
        requests, cfg, sets, cfg_b,
        faults=faults,
        label_a=args.scenario,
        label_b=label_b,
        keep_events=bool(args.chrome_trace),
    )


def _run_trace(args) -> dict:
    from ..obs.diff import build_diff_report, diff_traces
    from ..obs.trace import TraceRecorder

    streams = []
    for path in (args.a, args.b):
        try:
            streams.append(TraceRecorder.read_jsonl(path))
        except OSError as exc:
            raise ValueError(f"cannot read trace {path!r}: {exc}") from exc
        except (json.JSONDecodeError, KeyError) as exc:
            raise ValueError(
                f"trace {path!r} is not a JSONL trace export: {exc}"
            ) from exc
    section = diff_traces(*streams)
    return build_diff_report("trace", args.a, args.b, {"trace": section})


def _run_critpath(args) -> dict:
    from ..obs.diff import build_diff_report, diff_critpath_docs

    doc_a = _critpath_doc(_load_json(args.a, what="critpath document"), args.a)
    doc_b = _critpath_doc(_load_json(args.b, what="critpath document"), args.b)
    section = diff_critpath_docs(doc_a, doc_b)
    return build_diff_report(
        "critpath", args.a, args.b, {"critpath": section}
    )


def _run_fleet(args) -> dict:
    from ..obs.diff import build_diff_report, diff_fleet_devices

    doc = _load_json(args.fleet, what="fleet report")
    section = diff_fleet_devices(doc, args.device_a, args.device_b)
    return build_diff_report(
        "fleet",
        f"{args.fleet}#device{args.device_a}",
        f"{args.fleet}#device{args.device_b}",
        {"fleet": section},
    )


# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    """``repro diff`` entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro diff",
        description="Compare two runs, bench reports, traces, critical "
        "paths, or fleet devices; localize what diverged first.",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--json",
        action="store_true",
        help="print the full diff report to stdout as JSON",
    )
    common.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="also write the diff report to FILE as JSON",
    )
    modes = parser.add_subparsers(dest="mode", metavar="MODE")

    p_bench = modes.add_parser(
        "bench", parents=[common],
        help="diff two saved BENCH_*.json documents",
    )
    p_bench.add_argument("a", help="baseline bench document")
    p_bench.add_argument("b", help="candidate bench document")
    p_bench.add_argument(
        "--wall-tolerance",
        type=float,
        default=10.0,
        metavar="PCT",
        help="wall-clock slack before a delta counts (default 10%%); "
        "simulated metrics always use 0",
    )

    p_run = modes.add_parser(
        "run", parents=[common],
        help="re-simulate a seeded scenario under two configs and "
        "localize the first divergent event",
    )
    p_run.add_argument(
        "--scenario",
        default="mix2_shared",
        metavar="NAME",
        help="bench scenario to re-simulate (default mix2_shared); "
        "event-driven scenarios only",
    )
    p_run.add_argument(
        "--quick",
        action="store_true",
        help="small trace (CI smoke size)",
    )
    p_run.add_argument(
        "--scale",
        action="append",
        default=[],
        metavar="KNOB=FACTOR",
        help="scale a config knob on side B (repeatable); no --scale "
        "diffs the run against itself (must be empty)",
    )
    p_run.add_argument(
        "--chrome-trace",
        metavar="FILE",
        default=None,
        help="write a side-by-side Chrome trace with divergence markers",
    )

    p_trace = modes.add_parser(
        "trace", parents=[common],
        help="diff two recorded JSONL trace streams",
    )
    p_trace.add_argument("a", help="baseline trace JSONL")
    p_trace.add_argument("b", help="candidate trace JSONL")

    p_crit = modes.add_parser(
        "critpath", parents=[common],
        help="diff two bottleneck reports (critpath or explain documents)",
    )
    p_crit.add_argument("a", help="baseline critpath/explain JSON")
    p_crit.add_argument("b", help="candidate critpath/explain JSON")

    p_fleet = modes.add_parser(
        "fleet", parents=[common],
        help="diff two devices of one fleet report",
    )
    p_fleet.add_argument("fleet", help="fleet report JSON")
    p_fleet.add_argument("device_a", type=int, help="baseline device id")
    p_fleet.add_argument("device_b", type=int, help="candidate device id")

    args = parser.parse_args(argv)
    if args.mode is None:
        parser.error("a mode is required (bench, run, trace, critpath, fleet)")

    runners = {
        "bench": _run_bench,
        "run": _run_run,
        "trace": _run_trace,
        "critpath": _run_critpath,
        "fleet": _run_fleet,
    }
    try:
        report = runners[args.mode](args)
    except (ValueError, KeyError) as exc:
        print(f"repro diff: {exc}", file=sys.stderr)
        return 2

    events_a = report.pop("_events_a", None)
    events_b = report.pop("_events_b", None)
    if getattr(args, "chrome_trace", None):
        from ..obs.chrometrace import write_diff_chrome_trace

        first = report["sections"]["trace"]["first_divergence"]
        write_diff_chrome_trace(
            events_a, events_b, args.chrome_trace, first_divergence=first,
        )
        print(f"wrote {args.chrome_trace}", file=sys.stderr)

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(_render(report))
    if args.out:
        from ..obs.diff import write_diff

        try:
            write_diff(report, args.out)
        except OSError as exc:
            print(f"repro diff: cannot write {args.out}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"wrote {args.out}", file=sys.stderr)
    return _exit_code(report)


if __name__ == "__main__":  # pragma: no cover - exercised via the repro CLI
    sys.exit(main())
