"""``repro drift`` — the adaptive keeper against adversarial tenants.

One lab run takes a named adversarial scenario from
:mod:`repro.workloads.adversarial`, plays it twice over the same seeded
device, and reports the two side by side:

* **one-shot** — the paper's Algorithm 2: collect one window, decide
  once, never look back.  Under drift the single decision goes stale.
* **adaptive** — :meth:`~repro.core.keeper.SSDKeeper.run_adaptive`: the
  hardened periodic keeper with drift detection, guarded incremental
  retraining (promote-or-rollback shadow validation), the switch-rate
  limiter, and degradation to Shared on persistent drift.

Everything is seeded; two invocations with the same arguments produce
byte-identical reports (the CI ``drift-smoke`` job asserts exactly
that).  ``--poison`` corrupts every retrained candidate before shadow
validation, proving the rollback guard: the run must report
``rollbacks >= 1`` and the live model must keep serving untouched.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from ..core import (
    ChannelAllocator,
    Dataset,
    DriftConfig,
    FeatureVector,
    RetrainConfig,
    SSDKeeper,
    StrategyLearner,
    StrategySpace,
)
from ..ssd.config import SSDConfig
from ..workloads.adversarial import SCENARIOS, build_scenario

__all__ = ["heuristic_allocator", "run_driftlab", "main"]

#: lab trace geometry (full / --quick)
_PHASES = 4
_PHASE_US = 50_000.0
_QUICK_PHASE_US = 25_000.0
_COLLECT_WINDOW_US = 10_000.0
_INTENSITY_QUANTUM = 50.0


def heuristic_allocator(seed: int = 0) -> ChannelAllocator:
    """A cheap deterministic stand-in for the full Algorithm-1 pipeline.

    Trains the standard 9-64-42 network on a seeded synthetic dataset
    whose labels encode the paper's core rule — write-dominated mixes
    favour the writers' channels (7:1), read-dominated mixes the readers'
    (1:7) — so lab runs stay fast while the model is realistic enough to
    mispredict under drift.
    """
    rng = np.random.default_rng(seed)
    space = StrategySpace(8, 4)
    rows, labels = [], []
    for _ in range(160):
        fv = FeatureVector(
            int(rng.integers(0, 20)),
            tuple(int(rng.integers(0, 2)) for _ in range(4)),
            tuple(rng.dirichlet(np.ones(4))),
        )
        rows.append(fv.to_array())
        labels.append(
            space.index_of(space.by_label("7:1"))
            if fv.total_write_proportion() > 0.5
            else space.index_of(space.by_label("1:7"))
        )
    dataset = Dataset(
        features=np.vstack(rows), labels=np.array(labels), n_classes=len(space)
    )
    learner = StrategyLearner(space, seed=0)
    learner.train(dataset, iterations=80, seed=0)
    return ChannelAllocator(learner)


def _lab_keeper(cfg: SSDConfig, *, obs=None, sanitizer=None) -> SSDKeeper:
    return SSDKeeper(
        heuristic_allocator(),
        cfg,
        collect_window_us=_COLLECT_WINDOW_US,
        intensity_quantum=_INTENSITY_QUANTUM,
        verify_top_k=3,
        obs=obs,
        sanitizer=sanitizer,
    )


def lab_configs(poison: bool = False) -> tuple[DriftConfig, RetrainConfig]:
    """The lab's (and CI's) drift/retrain tuning — deliberately twitchy
    so short smoke traces still exercise every path."""
    drift = DriftConfig(
        min_windows=2,
        feature_window=2,
        residual_threshold=0.3,
        cooldown_windows=2,
    )
    retrain = RetrainConfig(
        capacity=32,
        holdback=2,
        min_train_windows=3,
        min_gap_windows=2,
        interval_windows=3,
        iterations=20,
        poison=poison,
    )
    return drift, retrain


def run_driftlab(
    scenario: str = "migrating_hotspot",
    *,
    seed: int = 0,
    quick: bool = False,
    poison: bool = False,
    sanitize: bool = False,
) -> dict:
    """Run one lab comparison; returns a deterministic report document."""
    if scenario not in SCENARIOS:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(f"unknown scenario {scenario!r} (known: {known})")
    from ..obs import Observability

    phase_us = _QUICK_PHASE_US if quick else _PHASE_US
    workload = build_scenario(
        scenario, seed=seed, phases=_PHASES, phase_us=phase_us
    )
    cfg = SSDConfig.small()

    def make_sanitizer():
        # One sanitizer per device run: the monotonicity invariant tracks
        # a single simulated timeline, so instances must not be shared.
        if not sanitize:
            return None
        from ..analysis import Sanitizer

        return Sanitizer()

    obs = Observability(trace=True)
    adaptive_sanitizer = make_sanitizer()
    adaptive_keeper = _lab_keeper(cfg, obs=obs, sanitizer=adaptive_sanitizer)
    drift_cfg, retrain_cfg = lab_configs(poison)
    adaptive = adaptive_keeper.run_adaptive(
        workload.requests, drift=drift_cfg, retrain=retrain_cfg
    )

    oneshot_sanitizer = make_sanitizer()
    oneshot_keeper = _lab_keeper(cfg, sanitizer=oneshot_sanitizer)
    oneshot = oneshot_keeper.run(workload.requests)

    counters = obs.registry.snapshot().get("counters", {})
    report = {
        "scenario": scenario,
        "seed": seed,
        "quick": quick,
        "poison": poison,
        "requests": len(workload.requests),
        "phases": _PHASES,
        "phase_us": phase_us,
        "collect_window_us": _COLLECT_WINDOW_US,
        "adaptive": {
            "mean_read_us": adaptive.result.mean_read_us,
            "mean_write_us": adaptive.result.mean_write_us,
            "decisions": [
                {"time_us": t_us, "strategy": s.label}
                for t_us, _, s in adaptive.decisions
            ],
            "realised_us": adaptive.realised_us,
            "drift_events": [e.to_dict() for e in adaptive.drift_events],
            "retrain_events": [e.to_dict() for e in adaptive.retrain_events],
            "retrains": adaptive.retrains,
            "promotions": adaptive.promotions,
            "rollbacks": adaptive.rollbacks,
            "suppressed_switches": adaptive.suppressed_switches,
            "degraded_windows": adaptive.degraded_windows,
        },
        "oneshot": {
            "mean_read_us": oneshot.result.mean_read_us,
            "mean_write_us": oneshot.result.mean_write_us,
            "strategy": (
                oneshot.strategy.label if oneshot.strategy is not None else None
            ),
        },
        "counters": {
            name: value
            for name, value in sorted(counters.items())
            if name.startswith(("drift.", "keeper."))
        },
    }
    if sanitize:
        report["sanitizer"] = {
            "adaptive": dict(adaptive_sanitizer.stats()),
            "oneshot": dict(oneshot_sanitizer.stats()),
        }
    return report


def _format_report(report: dict) -> str:
    a, o = report["adaptive"], report["oneshot"]
    lines = [
        f"scenario {report['scenario']} (seed {report['seed']}, "
        f"{report['requests']} requests, {report['phases']} phases of "
        f"{report['phase_us']:.0f}us)",
        "",
        f"{'':<12} {'read us':>9} {'write us':>9}",
        f"{'one-shot':<12} {o['mean_read_us']:>9.1f} {o['mean_write_us']:>9.1f}"
        f"   strategy {o['strategy']}",
        f"{'adaptive':<12} {a['mean_read_us']:>9.1f} {a['mean_write_us']:>9.1f}"
        f"   {len(a['decisions'])} decisions",
        "",
        f"drift: {len(a['drift_events'])} detections "
        + ", ".join(
            f"{e['kind']}@w{e['window_index']}" for e in a["drift_events"]
        ),
        f"retrain: {a['retrains']} attempts, {a['promotions']} promoted, "
        f"{a['rollbacks']} rolled back",
        f"limiter: {a['suppressed_switches']} suppressed switches, "
        f"{a['degraded_windows']} degraded windows",
    ]
    for event in a["retrain_events"]:
        lines.append(
            f"  w{event['window_index']}: {event['outcome']} — {event['reason']}"
        )
    if "sanitizer" in report:
        checks = ", ".join(
            f"{k} {v}" for k, v in report["sanitizer"]["adaptive"].items()
        )
        lines.append(f"sanitizer: all invariants held ({checks})")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """``repro drift`` entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro drift",
        description="Adaptive keeper vs one-shot keeper on an adversarial "
        "tenant scenario.",
    )
    parser.add_argument(
        "--scenario",
        default="migrating_hotspot",
        choices=sorted(SCENARIOS),
        help="adversarial workload family (default migrating_hotspot)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="scenario seed; same seed => byte-identical report (default 0)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help=f"halve each phase to {_QUICK_PHASE_US:.0f}us (CI smoke size)",
    )
    parser.add_argument(
        "--poison", action="store_true",
        help="corrupt every retrained candidate before shadow validation; "
        "the rollback guard must catch all of them",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="attach the runtime sanitizer to both device runs",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the full report document as JSON",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write the report document to PATH as JSON",
    )
    args = parser.parse_args(argv)

    report = run_driftlab(
        args.scenario,
        seed=args.seed,
        quick=args.quick,
        poison=args.poison,
        sanitize=args.sanitize,
    )
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=2, sort_keys=True)
                fh.write("\n")
        except OSError as exc:
            print(f"repro drift: cannot write {args.out}: {exc}",
                  file=sys.stderr)
            return 2
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(_format_report(report))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the repro CLI
    sys.exit(main())
