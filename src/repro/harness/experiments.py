"""Reproduction entry points — one function per paper table/figure.

Each function takes a :class:`~repro.harness.scale.Scale` and returns a
plain dict (JSON-cacheable, printed by the benches).  The expensive chain
— label dataset → trained models — is cached on disk via
:mod:`repro.harness.cache`, so figures that share it pay the cost once.

Experiment map (see DESIGN.md for the full index):

* :func:`fig2_motivation` — two-tenant write-proportion sweep;
* :func:`build_dataset` / :func:`train_all` — Algorithm 1 / Figure 4 /
  Table III;
* :func:`trained_learner` — the deployable Adam-logistic model;
* :func:`fig5_performance` — Mix1–Mix4 vs Shared/Isolated/SSDKeeper;
* :func:`tab5_allocations` — features + chosen strategies per mix;
* :func:`fig6_strategy_map` — strategy choice across (intensity, write
  proportion);
* :func:`tab2_workloads` — MSR stand-in fidelity vs Table II.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..core.allocator import ChannelAllocator
from ..core.features import N_INTENSITY_LEVELS, features_of_mix
from ..core.hybrid import PagePolicy
from ..core.keeper import SSDKeeper
from ..core.labeler import Dataset, LabelerConfig, generate_dataset, random_specs
from ..core.learner import StrategyLearner
from ..core.strategies import StrategySpace
from ..ssd.config import SSDConfig
from ..ssd.simulator import simulate
from ..workloads import msr
from ..workloads.mixer import MixedWorkload, mix as mix_streams
from ..workloads.spec import WorkloadSpec
from ..workloads.synthetic import generate
from .cache import ArtifactCache, default_cache
from .scale import Scale

__all__ = [
    "OPTIMIZER_VARIANTS",
    "MIX_COMPOSITIONS",
    "labeler_config",
    "fig2_motivation",
    "build_dataset",
    "train_all",
    "trained_learner",
    "build_mixes",
    "fig5_performance",
    "tab5_allocations",
    "fig6_strategy_map",
    "tab2_workloads",
]

#: Table III's four optimizer/activation variants with the paper's tuning.
OPTIMIZER_VARIANTS: dict[str, dict] = {
    "SGD": {"optimizer": "sgd", "activation": "relu", "learning_rate": 0.2},
    "SGD-momentum": {
        "optimizer": "sgd-momentum",
        "activation": "relu",
        "learning_rate": 0.2,
        "momentum": 0.9,
    },
    "Adam-ReLU": {"optimizer": "adam", "activation": "relu", "learning_rate": 0.02},
    "Adam-logistic": {
        "optimizer": "adam",
        "activation": "logistic",
        "learning_rate": 0.02,
    },
}

#: Table IV: the four evaluated mixes of MSR workloads.
MIX_COMPOSITIONS: dict[str, list[str]] = {
    "Mix1": ["mds_0", "mds_1", "rsrch_0", "prxy_0"],
    "Mix2": ["prxy_0", "src_1", "rsrch_0", "mds_1"],
    "Mix3": ["web_2", "rsrch_0", "prxy_0", "mds_0"],
    "Mix4": ["rsrch_0", "web_2", "mds_1", "prxy_0"],
}

#: Default MSR rate multiplier for standalone uses of the stand-ins
#: (Table II fidelity checks, examples).
MSR_RATE_SCALE = 1000.0

#: Per-mix intensity levels from the paper's Table V.  Each evaluated mix
#: is replayed at the merged arrival rate whose *measured* intensity level
#: matches the published one — a single global compression factor cannot
#: (the four traces' natural rates differ by ~4x while the published levels
#: differ by 6x), and it keeps every mix inside the intensity range the
#: model was trained on.
MIX_LEVEL_TARGETS: dict[str, int] = {"Mix1": 3, "Mix2": 18, "Mix3": 16, "Mix4": 17}


def labeler_config(n_tenants: int = 4) -> LabelerConfig:
    """The shared experiment configuration (small Table-I-shaped device)."""
    return LabelerConfig(ssd=SSDConfig.small(), n_tenants=n_tenants)


# ----------------------------------------------------------------------
# Figure 2 — motivation: two tenants, write-proportion sweep
# ----------------------------------------------------------------------
def fig2_motivation(
    scale: Scale, *, cache: ArtifactCache | None = None
) -> dict:
    """Two tenants (one write-only, one read-only) across all 8 strategies.

    Returns per-strategy series of mean write/read/total latency over write
    proportions 10 %..90 %, plus Shared-normalised variants.
    """
    cache = cache or default_cache()
    params = {"requests": scale.fig2_requests, "reps": scale.fig2_replications,
              "rate": FIG2_RATE_RPS, "v": 6}
    return cache.get_or_build_json(
        "fig2", params, build=lambda: _fig2_build(scale)
    )


#: Figure-2 merged arrival rate.  Calibrated so that at 60 % write
#: proportion the write stream needs about four of the eight channels
#: (mean 2 pages/request, tPROG 200 us, 2 dies/channel), which is the
#: regime the paper describes: "four channels are enough to handle those
#: write requests".  Crossovers between Shared/two-part splits live here.
FIG2_RATE_RPS = 27_000.0


def _fig2_build(scale: Scale) -> dict:
    cfg = labeler_config(n_tenants=2)
    space = StrategySpace(cfg.ssd.channels, 2)
    write_props = [round(0.1 * i, 1) for i in range(1, 10)]
    total = scale.fig2_requests
    window_s = total / FIG2_RATE_RPS
    write_latency_us: dict[str, list[float]] = {s.label: [] for s in space}
    read_latency_us: dict[str, list[float]] = {s.label: [] for s in space}
    total_latency_us: dict[str, list[float]] = {s.label: [] for s in space}
    for wp in write_props:
        writer = WorkloadSpec(
            name="writer",
            write_ratio=1.0,
            rate_rps=max(1.0, total * wp / window_s),
            mean_request_pages=2.0,
            sequential_fraction=0.3,
            skew=0.5,
            footprint_pages=cfg.footprint_pages,
        )
        reader = WorkloadSpec(
            name="reader",
            write_ratio=0.0,
            rate_rps=max(1.0, total * (1.0 - wp) / window_s),
            mean_request_pages=2.0,
            sequential_fraction=0.3,
            skew=0.5,
            footprint_pages=cfg.footprint_pages,
        )
        sums = {s.label: [0.0, 0.0, 0.0] for s in space}
        for rep in range(scale.fig2_replications):
            seed = 90_000 + int(wp * 100) + rep
            streams = [
                generate(writer, int(total * wp * 1.15) + 1, workload_id=0, seed=seed),
                generate(
                    reader,
                    int(total * (1 - wp) * 1.15) + 1,
                    workload_id=1,
                    seed=seed + 777,
                ),
            ]
            mixed = mix_streams(streams, [writer, reader], limit=total)
            for strategy in space:
                sets = strategy.channel_sets(cfg.ssd.channels, [True, False])
                result = simulate(mixed.requests, cfg.ssd, sets)
                entry = sums[strategy.label]
                entry[0] += result.write.mean_us
                entry[1] += result.read.mean_us
                entry[2] += result.write.mean_us + result.read.mean_us
        for label, (w, r, t) in sums.items():
            reps = scale.fig2_replications
            write_latency_us[label].append(w / reps)
            read_latency_us[label].append(r / reps)
            total_latency_us[label].append(t / reps)
    return {
        "write_proportions": write_props,
        "strategies": [s.label for s in space],
        "write_latency_us": write_latency_us,
        "read_latency_us": read_latency_us,
        "total_latency_us": total_latency_us,
    }


# ----------------------------------------------------------------------
# Algorithm 1 — dataset + model training (Figure 4, Table III)
# ----------------------------------------------------------------------
def build_dataset(
    scale: Scale, *, cache: ArtifactCache | None = None
) -> Dataset:
    """The labelled strategy dataset (cached npz)."""
    cache = cache or default_cache()
    cfg = labeler_config()
    params = {
        "samples": scale.dataset_samples,
        "window_max": cfg.window_requests_max,
        "replications": cfg.replications,
        "tie_epsilon": cfg.tie_epsilon,
        "pure": cfg.pure_ratios,
        "grid": cfg.share_grid,
        "v": 6,
    }
    return cache.get_or_build(
        "dataset",
        params,
        build=lambda: generate_dataset(scale.dataset_samples, cfg, seed=20200525),
        save=lambda ds, path: ds.save(path),
        load=Dataset.load,
        suffix=".npz",
    )


def train_all(scale: Scale, *, cache: ArtifactCache | None = None) -> dict:
    """Train the four Table-III variants; returns histories + final rows."""
    cache = cache or default_cache()
    params = {"samples": scale.dataset_samples, "iters": scale.train_iterations, "v": 6}
    return cache.get_or_build_json(
        "training", params, build=lambda: _train_all_build(scale, cache)
    )


def _train_all_build(scale: Scale, cache: ArtifactCache) -> dict:
    dataset = build_dataset(scale, cache=cache)
    space = StrategySpace()
    out: dict = {"variants": {}}
    for name, variant in OPTIMIZER_VARIANTS.items():
        learner = StrategyLearner(
            space, activation=variant["activation"], seed=1
        )
        kwargs = {
            k: v
            for k, v in variant.items()
            if k not in ("optimizer", "activation")
        }
        history = learner.train(
            dataset,
            optimizer=variant["optimizer"],
            iterations=scale.train_iterations,
            seed=1,
            **kwargs,
        )
        out["variants"][name] = {
            "loss_curve": history.loss,
            "accuracy_curve": history.test_accuracy,
            "final_loss": history.final_loss,
            "final_accuracy": history.final_accuracy,
            "training_time_ms": history.training_time_ms,
        }
    return out


def _learner_params(scale: Scale, variant: str) -> dict:
    """Cache key of the deployable learner (shared by build and probe)."""
    return {"samples": scale.dataset_samples, "variant": variant,
            "iters": scale.train_iterations, "v": 6}


def trained_learner(
    scale: Scale, *, cache: ArtifactCache | None = None, variant: str = "Adam-logistic"
) -> StrategyLearner:
    """The deployable trained model (cached as the FTL parameter blob)."""
    cache = cache or default_cache()
    if variant not in OPTIMIZER_VARIANTS:
        raise ValueError(f"unknown variant {variant!r}")
    params = _learner_params(scale, variant)

    def build() -> StrategyLearner:
        dataset = build_dataset(scale, cache=cache)
        spec = OPTIMIZER_VARIANTS[variant]
        learner = StrategyLearner(
            StrategySpace(), activation=spec["activation"], seed=1
        )
        kwargs = {
            k: v for k, v in spec.items() if k not in ("optimizer", "activation")
        }
        learner.train(
            dataset,
            optimizer=spec["optimizer"],
            iterations=scale.train_iterations,
            seed=1,
            **kwargs,
        )
        return learner

    return cache.get_or_build(
        "learner",
        params,
        build=build,
        save=lambda ln, path: ln.save(path),
        load=StrategyLearner.load,
        suffix=".json",
    )


def cached_learner_or_none(
    scale: Scale, *, cache: ArtifactCache | None = None, variant: str = "Adam-logistic"
) -> StrategyLearner | None:
    """The trained model if (and only if) it is already on disk.

    Examples use this to borrow the bench-quality model without risking the
    hour-long dataset build: a cache miss returns None and callers train a
    small model instead.
    """
    cache = cache or default_cache()
    path = cache.path_for("learner", _learner_params(scale, variant), ".json")
    if not path.exists():
        return None
    try:
        return StrategyLearner.load(path)
    except Exception:
        return None


# ----------------------------------------------------------------------
# Table IV / Figure 5 / Table V — the four evaluated mixes
# ----------------------------------------------------------------------
def build_mixes(scale: Scale) -> dict[str, MixedWorkload]:
    """Table IV's Mix1–Mix4 from the MSR stand-ins, mixed chronologically.

    Per-tenant request counts keep the traces' natural *relative* rates
    (Table II); each mix's merged arrival rate is set so its measured
    intensity level reproduces Table V (see :data:`MIX_LEVEL_TARGETS`).
    """
    cfg = labeler_config()
    out: dict[str, MixedWorkload] = {}
    for mix_name, names in MIX_COMPOSITIONS.items():
        natural = [msr.spec(n) for n in names]
        natural_total = sum(s.rate_rps for s in natural)
        # Merged rate that lands mid-bucket on the published level.
        level = MIX_LEVEL_TARGETS[mix_name]
        target_rate = cfg.intensity_quantum * (level + 0.5) / cfg.window_s
        rate_scale = target_rate / natural_total
        specs = [
            msr.spec(n, rate_scale=rate_scale, footprint_pages=cfg.footprint_pages)
            for n in names
        ]
        total_rate = sum(s.rate_rps for s in specs)
        streams = []
        for wid, spec in enumerate(specs):
            count = max(
                1, int(round(scale.mix_requests * spec.rate_rps / total_rate * 1.2))
            )
            seed = zlib.crc32(mix_name.encode()) % 10_000 + wid
            streams.append(generate(spec, count, workload_id=wid, seed=seed))
        out[mix_name] = mix_streams(
            streams, specs, limit=scale.mix_requests, name=mix_name
        )
    return out


def fig5_performance(
    scale: Scale, *, cache: ArtifactCache | None = None
) -> dict:
    """Mix1–Mix4 under Shared / Isolated / SSDKeeper / SSDKeeper+hybrid."""
    cache = cache or default_cache()
    params = {"requests": scale.mix_requests, "levels": MIX_LEVEL_TARGETS,
              "samples": scale.dataset_samples, "iters": scale.train_iterations,
              "v": 6}
    return cache.get_or_build_json(
        "fig5", params, build=lambda: _fig5_build(scale, cache)
    )


def _fig5_build(scale: Scale, cache: ArtifactCache) -> dict:
    cfg = labeler_config()
    learner = trained_learner(scale, cache=cache)
    mixes = build_mixes(scale)
    out: dict = {"mixes": {}}
    for mix_name, mixed in mixes.items():
        allocator = ChannelAllocator(learner)
        keeper = SSDKeeper(
            allocator,
            cfg.ssd,
            collect_window_us=cfg.window_s * 1e6,
            intensity_quantum=cfg.intensity_quantum,
            page_policy=PagePolicy.HYBRID,
        )
        features = features_of_mix(mixed, intensity_quantum=cfg.intensity_quantum)
        rows: dict[str, dict] = {}

        def record(tag: str, result) -> None:
            rows[tag] = {
                "mean_write_us": result.write.mean_us,
                "mean_read_us": result.read.mean_us,
                "mean_total_us": result.write.mean_us + result.read.mean_us,
                "total_latency_s": result.total_latency_us / 1e6,
            }

        space = learner.space
        record(
            "Shared",
            keeper.baseline_run(mixed.requests, space.shared, features),
        )
        record(
            "Isolated",
            keeper.baseline_run(mixed.requests, space.isolated, features),
        )
        run_plain = SSDKeeper(
            ChannelAllocator(learner),
            cfg.ssd,
            collect_window_us=cfg.window_s * 1e6,
            intensity_quantum=cfg.intensity_quantum,
            page_policy=PagePolicy.ALL_STATIC,
        ).run(mixed.requests)
        record("SSDKeeper", run_plain.result)
        run_hybrid = keeper.run(mixed.requests)
        record("SSDKeeper+hybrid", run_hybrid.result)
        # Extension: verified allocation (top-5 fast-model replay of the
        # observed window) hardens the argmax against rare catastrophic
        # mispredictions.
        run_verified = SSDKeeper(
            ChannelAllocator(learner),
            cfg.ssd,
            collect_window_us=cfg.window_s * 1e6,
            intensity_quantum=cfg.intensity_quantum,
            page_policy=PagePolicy.HYBRID,
            verify_top_k=5,
        ).run(mixed.requests)
        record("SSDKeeper+verified", run_verified.result)
        out["mixes"][mix_name] = {
            "workloads": MIX_COMPOSITIONS[mix_name],
            "features": str(run_hybrid.features or features),
            "feature_vector": (run_hybrid.features or features).to_array().tolist(),
            "strategy": run_hybrid.strategy.label if run_hybrid.strategy else "Shared",
            "strategy_plain": (
                run_plain.strategy.label if run_plain.strategy else "Shared"
            ),
            "strategy_verified": (
                run_verified.strategy.label if run_verified.strategy else "Shared"
            ),
            "rows": rows,
        }
    return out


def tab5_allocations(
    scale: Scale, *, cache: ArtifactCache | None = None
) -> dict:
    """Table V: per-mix feature vectors and chosen allocation strategies."""
    fig5 = fig5_performance(scale, cache=cache)
    return {
        mix_name: {
            "workloads": entry["workloads"],
            "features": entry["features"],
            "strategy": entry["strategy"],
        }
        for mix_name, entry in fig5["mixes"].items()
    }


# ----------------------------------------------------------------------
# Figure 6 — strategy map over (intensity level, total write proportion)
# ----------------------------------------------------------------------
def fig6_strategy_map(
    scale: Scale, *, cache: ArtifactCache | None = None
) -> dict:
    """Model decisions across random mixes: the Figure-6 scatter."""
    cache = cache or default_cache()
    params = {"points": scale.fig6_samples, "samples": scale.dataset_samples,
              "iters": scale.train_iterations, "v": 6}
    return cache.get_or_build_json(
        "fig6", params, build=lambda: _fig6_build(scale, cache)
    )


def _fig6_build(scale: Scale, cache: ArtifactCache) -> dict:
    from ..workloads.mixer import synthesize_mix

    cfg = labeler_config()
    learner = trained_learner(scale, cache=cache)
    allocator = ChannelAllocator(learner)
    rng = np.random.default_rng(66)
    points = []
    per_level = max(1, scale.fig6_samples // N_INTENSITY_LEVELS)
    for level in range(N_INTENSITY_LEVELS):
        for _ in range(per_level):
            specs, total = random_specs(cfg, rng, intensity_level=level)
            mixed = synthesize_mix(
                specs, total_requests=total, seed=int(rng.integers(0, 2**31 - 1))
            )
            features = features_of_mix(
                mixed, intensity_quantum=cfg.intensity_quantum
            )
            strategy = allocator.allocate(features)
            points.append(
                {
                    "intensity_level": features.intensity_level,
                    "write_proportion": round(
                        features.total_write_proportion(), 4
                    ),
                    "strategy": strategy.label,
                    "simplified": strategy.simplified_label(),
                }
            )
    return {"points": points}


# ----------------------------------------------------------------------
# Table II — workload stand-in fidelity
# ----------------------------------------------------------------------
def tab2_workloads(*, sample_requests: int = 20_000, seed: int = 2) -> dict:
    """Generate each MSR stand-in and measure its realised statistics."""
    rows = {}
    for name in msr.available():
        info = msr.TABLE_II[name]
        spec = msr.spec(name, rate_scale=MSR_RATE_SCALE)
        requests = generate(spec, sample_requests, workload_id=0, seed=seed)
        writes = sum(1 for r in requests if not r.is_read)
        rows[name] = {
            "paper_write_ratio": info.write_ratio,
            "measured_write_ratio": writes / len(requests),
            "paper_request_count": info.request_count,
            "rate_rps": spec.rate_rps,
        }
    return rows


# ----------------------------------------------------------------------
# `repro stats` — one instrumented event-driven run
# ----------------------------------------------------------------------
def stats_run(
    scale: Scale, *, obs, requests: int | None = None, faults=None, sanitizer=None
):
    """Run one fully-instrumented event-driven simulation.

    A four-tenant synthetic mix (two write-dominated, two read-dominated
    tenants) plays on the small Table-I device under the Shared
    allocation while every observability hook fires: structured tracing,
    latency histograms, and — when ``obs.utilization_interval_us`` is
    set — the per-channel utilization profile.  ``faults`` (an optional
    :class:`~repro.ssd.faults.FaultConfig`) switches on the seeded NAND
    fault model.  Returns the
    :class:`~repro.ssd.metrics.SimulationResult`.
    """
    from ..ssd.simulator import SSDSimulator
    from ..workloads.mixer import synthesize_mix

    cfg = labeler_config()
    rate = cfg.window_requests_max / cfg.window_s / 4
    specs = [
        WorkloadSpec(
            name=name,
            write_ratio=wr,
            rate_rps=rate,
            sequential_fraction=0.3,
            skew=0.5,
            footprint_pages=cfg.footprint_pages,
        )
        for name, wr in (
            ("writer-a", 0.9), ("writer-b", 0.8),
            ("reader-a", 0.1), ("reader-b", 0.05),
        )
    ]
    total = requests if requests is not None else min(scale.mix_requests, 5000)
    mixed = synthesize_mix(specs, total_requests=total, seed=11, name="stats")
    channel_sets = {wid: list(range(cfg.ssd.channels)) for wid in range(4)}
    sim = SSDSimulator(
        cfg.ssd, channel_sets, record_latencies=True, obs=obs, faults=faults,
        sanitizer=sanitizer,
    )
    return sim.run(mixed.requests)
