"""``repro explain`` — causal bottleneck explanation for one scenario.

Runs one seeded bench scenario (:data:`repro.harness.bench.SCENARIOS`)
with latency attribution armed, then answers the two questions the raw
metrics cannot:

* **which resource bounds the run** — the critical-path extractor
  (:mod:`repro.obs.critpath`) walks the attribution records backwards
  from the makespan and charges every microsecond of the run to the
  channel bus, die, DRAM buffer, host idle gap or internal tail that
  spent it, validated by the ``critpath-exact-sum`` invariant;
* **what a change would buy** — the what-if engine
  (:mod:`repro.obs.whatif`) re-simulates the identical trace with each
  config knob scaled and ranks the exact virtual speedups, re-verifying
  the winner by a second identical run.

The baseline simulation is observed, never perturbed: its summary is
byte-identical to an unexplained run of the same scenario (the golden
integration test asserts this).  Exit codes: 0 = explained, 2 = usage
error (unknown scenario, unattributable fast-model scenario, bad path).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = [
    "EXPLAIN_SCHEMA_VERSION",
    "explain_scenario",
    "load_explain",
    "main",
]

#: Bump when the document layout changes shape.
EXPLAIN_SCHEMA_VERSION = 1

#: top-level fields of the explain document ("whatif"/"sanitizer" are
#: present only when those passes ran; R007 round-trip contract)
_EXPLAIN_FIELDS = frozenset({
    "schema_version", "scenario", "quick", "requests", "makespan_us",
    "total_latency_us", "summary", "critpath", "decisions", "whatif",
    "sanitizer",
})

#: fields that must be present in every document (no optional passes)
_EXPLAIN_REQUIRED = frozenset({
    "schema_version", "scenario", "quick", "requests", "makespan_us",
    "total_latency_us", "summary", "critpath", "decisions",
})


def load_explain(doc: dict) -> dict:
    """Validate a saved explain document (round-trip reader).

    Refuses schema_version mismatches, unknown top-level fields, and
    documents missing the always-present core fields.
    """
    if doc.get("schema_version") != EXPLAIN_SCHEMA_VERSION:
        raise ValueError(
            f"explain document has schema_version "
            f"{doc.get('schema_version')!r}; this tool reads version "
            f"{EXPLAIN_SCHEMA_VERSION}"
        )
    public = {key for key in doc if not key.startswith("_")}
    missing = _EXPLAIN_REQUIRED - public
    if missing:
        raise ValueError(
            f"explain document is missing fields: {sorted(missing)}"
        )
    unknown = public - _EXPLAIN_FIELDS
    if unknown:
        raise ValueError(
            f"explain document has unknown fields: {sorted(unknown)}"
        )
    return doc


def explain_scenario(
    name: str,
    *,
    quick: bool = False,
    sanitize: bool = False,
    whatif: bool = True,
    tolerance_us: float = 1e-6,
    log=None,
) -> dict:
    """Run + explain one bench scenario; returns the report document.

    Raises ``KeyError`` for an unknown scenario and ``ValueError`` for
    one that cannot be attributed (the vectorised fast model records no
    spans).  ``sanitize=True`` routes the exact-sum invariants through a
    runtime :class:`~repro.analysis.Sanitizer` so the report carries its
    check counters.
    """
    from ..obs import Observability
    from ..obs.critpath import extract_critical_path
    from ..obs.whatif import explain_decisions, run_whatif
    from ..ssd.simulator import simulate
    from .bench import _FULL_REQUESTS, _QUICK_REQUESTS, SCENARIOS

    builder = SCENARIOS[name]
    total = _QUICK_REQUESTS if quick else _FULL_REQUESTS
    kind, requests, cfg, sets, faults = builder(total)
    if kind != "simulator":
        raise ValueError(
            f"scenario {name!r} runs the {kind} backend, which records no "
            "attribution spans; explain needs an event-driven scenario"
        )
    sanitizer = None
    if sanitize:
        from ..analysis import Sanitizer

        sanitizer = Sanitizer()
    obs = Observability(trace=False, attribution=True)
    result = simulate(
        requests, cfg, sets, record_latencies=True, obs=obs, faults=faults,
        sanitizer=sanitizer,
    )
    if log is not None:
        log(f"{name}: {result.summary()}")

    report = extract_critical_path(
        obs.attribution.records,
        result.makespan_us,
        tolerance_us=tolerance_us,
        sanitizer=sanitizer,
    )
    doc: dict = {
        "schema_version": EXPLAIN_SCHEMA_VERSION,
        "scenario": name,
        "quick": quick,
        "requests": len(requests),
        "makespan_us": result.makespan_us,
        "total_latency_us": result.total_latency_us,
        "summary": result.summary(),
        "critpath": report.to_dict(),
        "decisions": explain_decisions(obs.decisions, result.breakdown),
    }
    if whatif:
        wreport = run_whatif(
            requests, cfg, sets, faults=faults, baseline=result, log=log,
        )
        doc["whatif"] = wreport.to_dict()
        doc["_whatif_report"] = wreport
    if sanitizer is not None:
        doc["sanitizer"] = sanitizer.stats()
    doc["_critpath_report"] = report
    return doc


def _render(doc: dict, top: int) -> str:
    lines = [doc["summary"], ""]
    lines.append(doc.pop("_critpath_report").format(top=top))
    wreport = doc.pop("_whatif_report", None)
    if wreport is not None:
        lines.append("")
        lines.append(wreport.format())
    sanitizer = doc.get("sanitizer")
    if sanitizer is not None:
        checks = ", ".join(f"{k} {v}" for k, v in sanitizer.items())
        lines.append("")
        lines.append(f"sanitizer: all invariants held ({checks})")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """``repro explain`` entry point; returns a process exit code."""
    from .bench import SCENARIOS

    parser = argparse.ArgumentParser(
        prog="repro explain",
        description="Explain which resource bounds a seeded scenario and "
        "what a config change would buy (exact counterfactuals).",
    )
    parser.add_argument(
        "--scenario",
        default="gc_heavy",
        metavar="NAME",
        help=f"bench scenario to explain (default gc_heavy); event-driven "
        f"scenarios only; available: {', '.join(SCENARIOS)}",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small trace (CI smoke size)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=8,
        metavar="N",
        help="rows in the bottleneck table (default 8)",
    )
    parser.add_argument(
        "--no-whatif",
        action="store_true",
        help="skip the counterfactual sweep (critical path only)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="route the exact-sum invariants through the runtime sanitizer "
        "and report its check counters",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the full report document to stdout as JSON",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="also write the report document to FILE as JSON",
    )
    args = parser.parse_args(argv)
    if args.top < 1:
        parser.error("--top must be >= 1")

    try:
        doc = explain_scenario(
            args.scenario,
            quick=args.quick,
            sanitize=args.sanitize,
            whatif=not args.no_whatif,
            log=None if args.json else print,
        )
    except KeyError:
        print(
            f"repro explain: unknown scenario {args.scenario!r}; available: "
            f"{', '.join(SCENARIOS)}",
            file=sys.stderr,
        )
        return 2
    except ValueError as exc:
        print(f"repro explain: {exc}", file=sys.stderr)
        return 2

    text = _render(doc, args.top)  # pops the report objects from doc
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(text)
    if args.out:
        try:
            path = Path(args.out)
            if path.parent != Path(""):
                path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
        except OSError as exc:
            print(f"repro explain: cannot write {args.out}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the repro CLI
    sys.exit(main())
