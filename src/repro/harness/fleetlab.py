"""``repro fleet`` — seeded multi-device scenario with fleet observability.

Builds N :class:`~repro.ssd.simulator.SSDSimulator` devices under one
:class:`~repro.ssd.fleet.Fleet` (composed event loop, seeded tenant
placement), runs M tenants' synthesized traces through them with an
optional forced migration mid-run, and attaches the fleet observability
plane (:mod:`repro.obs.fleet`): per-device metrics/telemetry/SLO bundles
federate into fleet rollups, migrations surface as ``tenant_migration``
trace spans, and per-device burn rates aggregate into fleet-level SLO
alerting with flight-recorder bundles naming the offending device.

Everything is seeded and simulated-time only, so two invocations with
the same arguments produce **byte-identical** ``fleet_report.json``
documents (the determinism contract the tests and the CI ``fleet-smoke``
job pin down).

Usage::

    python -m repro fleet --devices 3 --tenants 6 --seed 7
    python -m repro fleet --quick --migrate 0:1:10000 --json
    python -m repro fleet --slo-tight --out fleet_report.json \
        --chrome-trace fleet.chrome.json --flight-dir flight/
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = [
    "build_fleet_scenario",
    "default_migration",
    "run_fleet",
    "main",
]

#: request counts for the synthesized fleet trace (full / --quick)
_FULL_REQUESTS = 3000
_QUICK_REQUESTS = 600

#: telemetry window length (simulated us) when an SLO spec does not set one
_DEFAULT_WINDOW_US = 500.0

#: fraction of the trace span at which the default migration fires
_DEFAULT_MIGRATE_FRACTION = 0.25


def _tight_slo_dict(tenants) -> dict:
    """Built-in near-unsatisfiable spec: guarantees a deterministic fleet
    page on any non-trivial run (the CI smoke asserts exactly that)."""
    return {
        "schema_version": 1,
        "window_us": _DEFAULT_WINDOW_US,
        "tenants": {
            str(t): {"read_p95_us": 50.0, "write_p95_us": 50.0}
            for t in sorted(tenants)
        },
        "failed_read_budget": 0.001,
    }


def build_fleet_scenario(
    *, n_devices: int, n_tenants: int, total_requests: int, seed: int
):
    """Synthesize the seeded scenario: per-tenant traces + device configs.

    Tenants alternate write-heavy / read-heavy profiles; every device is
    an :meth:`SSDConfig.small` instance whose channel sets admit every
    tenant (a migrated tenant must be runnable anywhere).  Returns
    ``(tenant_traces, config, channel_sets)``.
    """
    from ..ssd.config import SSDConfig
    from ..workloads.mixer import synthesize_mix
    from ..workloads.spec import WorkloadSpec

    if n_devices < 1:
        raise ValueError("need at least one device")
    if n_tenants < 1:
        raise ValueError("need at least one tenant")
    specs = []
    for t in range(n_tenants):
        heavy = t % 2 == 0
        specs.append(WorkloadSpec(
            name=f"tenant-{t}",
            write_ratio=0.9 if heavy else 0.1,
            rate_rps=4000.0 if heavy else 3000.0,
            mean_request_pages=2.0,
            sequential_fraction=0.3,
            skew=0.5,
            footprint_pages=2048,
        ))
    mix = synthesize_mix(
        specs, total_requests=total_requests, seed=seed, name="fleet"
    )
    tenant_traces: dict[int, list] = {t: [] for t in range(n_tenants)}
    for req in mix.requests:
        tenant_traces.setdefault(req.workload_id, []).append(req)
    config = SSDConfig.small()
    channel_sets = {
        t: list(range(config.channels)) for t in range(n_tenants)
    }
    return tenant_traces, config, channel_sets


def default_migration(tenant_traces, placement, n_devices: int):
    """The forced migration a fleet run gets when none is specified.

    Tenant 0 moves to the next device (mod fleet size) at 25% of the
    trace span — far enough in that the source has completed work, early
    enough that plenty of requests replay on the destination.
    """
    from ..ssd.fleet import MigrationPlan

    if n_devices < 2:
        return None
    last_arrival_us = max(
        (reqs[-1].arrival_us for reqs in tenant_traces.values() if reqs),
        default=0.0,
    )
    if last_arrival_us <= 0.0:
        return None
    tenant = min(t for t, reqs in tenant_traces.items() if reqs)
    dst = (placement[tenant] + 1) % n_devices
    return MigrationPlan(
        time_us=last_arrival_us * _DEFAULT_MIGRATE_FRACTION,
        tenant=tenant,
        dst=dst,
    )


def run_fleet(
    *,
    n_devices: int,
    n_tenants: int,
    total_requests: int,
    seed: int,
    migrations=None,
    slo_dict=None,
    flight_dir=None,
    trace_capacity: int = 65_536,
):
    """Run one observed fleet scenario; returns ``(result, observer, report)``.

    ``migrations=None`` applies the default forced migration (see
    :func:`default_migration`); pass an empty list to run without one.
    ``slo_dict`` arms per-device watchdogs plus the fleet rollup.
    """
    from ..core import KeeperHandle
    from ..obs import Observability, SloSpec, TraceRecorder
    from ..obs.fleet import FleetObserver, build_fleet_report
    from ..ssd.fleet import Fleet, seeded_placement
    from ..ssd.simulator import SSDSimulator

    tenant_traces, config, channel_sets = build_fleet_scenario(
        n_devices=n_devices, n_tenants=n_tenants,
        total_requests=total_requests, seed=seed,
    )
    spec = None
    if slo_dict is not None:
        spec = SloSpec.from_dict(slo_dict, known_tenants=set(channel_sets))
    bundles = []
    sims = []
    keepers = []
    for dev in range(n_devices):
        bundle = Observability(
            trace_capacity=trace_capacity,
            telemetry=None if spec is not None else _DEFAULT_WINDOW_US,
            slo=spec,
        )
        bundles.append(bundle)
        sims.append(SSDSimulator(
            config, channel_sets, record_latencies=True, obs=bundle,
        ))
        keepers.append(KeeperHandle(dev, channel_sets))
    placement = seeded_placement(n_tenants, n_devices, seed)
    fleet = Fleet(sims, placement=placement, seed=seed)
    recorder = None
    if flight_dir is not None:
        from ..obs import FlightRecorder

        recorder = FlightRecorder(
            flight_dir,
            context={"command": "fleet", "devices": n_devices,
                     "tenants": n_tenants, "seed": seed},
            replay_argv=["python", "-m", "repro", "fleet",
                         "--devices", str(n_devices),
                         "--tenants", str(n_tenants), "--seed", str(seed)],
        )
    observer = FleetObserver(
        fleet,
        bundles,
        slo=spec,
        trace=TraceRecorder(capacity=trace_capacity),
        flight_recorder=recorder,
    )
    if migrations is None:
        plan = default_migration(tenant_traces, placement, n_devices)
        migrations = [plan] if plan is not None else []
    result = fleet.run(tenant_traces, migrations)
    for dev, keeper in enumerate(keepers):
        keeper.publish(bundles[dev].registry)
    scenario = {
        "devices": n_devices,
        "tenants": n_tenants,
        "requests": total_requests,
        "migrations": [
            {"time_us": m.time_us, "tenant": m.tenant, "dst": m.dst}
            for m in migrations
        ],
        "slo": slo_dict,
    }
    report = build_fleet_report(
        result, seed=seed, observer=observer, scenario=scenario
    )
    return result, observer, report


def _parse_migration(raw: str):
    """``TENANT:DST:TIME_US`` -> :class:`MigrationPlan` (argparse type)."""
    from ..ssd.fleet import MigrationPlan

    parts = raw.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"migration {raw!r} must look like TENANT:DST:TIME_US"
        )
    try:
        tenant, dst = int(parts[0]), int(parts[1])
        time_us = float(parts[2])  # repro-lint: disable=R001 (the US column of T:DST:US is microseconds by format)
        return MigrationPlan(time_us=time_us, tenant=tenant, dst=dst)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"migration {raw!r}: {exc}")


def _format_report(result, observer, report) -> str:
    """Human summary of one fleet run."""
    lines = []
    for entry in report["devices"]:
        lines.append(
            f"device {entry['device']}: {entry['requests']} reqs  "
            f"makespan {entry['makespan_us']:.0f}us  "
            f"read {entry['read']['mean_us']:.1f}us  "
            f"write {entry['write']['mean_us']:.1f}us  "
            f"health {report['rollup']['health'][str(entry['device'])]:.2f}"
        )
    placement = report["placement"]
    moves = [
        t for t in placement["initial"]
        if placement["initial"][t] != placement["final"][t]
    ]
    lines.append(
        "placement: "
        + " ".join(
            f"t{t}->d{d}" for t, d in sorted(
                placement["final"].items(), key=lambda kv: int(kv[0])
            )
        )
        + (f"  (moved: {', '.join('t' + t for t in sorted(moves))})"
           if moves else "")
    )
    for mig in report["migrations"]:
        span = mig["span_us"]
        lines.append(
            f"migration: tenant {mig['tenant']} device {mig['src']} -> "
            f"{mig['dst']} at {mig['start_us']:.0f}us, "
            f"{mig['requests_replayed']} requests replayed, span "
            + (f"{span:.1f}us" if span is not None else "n/a")
        )
    rollup = report["rollup"]
    if rollup and rollup.get("slo"):
        slo = rollup["slo"]
        lines.append(
            f"fleet slo: {slo['windows']} windows, "
            f"{slo['warn_alerts']} warn / {slo['page_alerts']} page alerts"
        )
        for alert in report["alerts"]:
            lines.append(
                f"  {alert['severity']}: {alert['objective']} at "
                f"{alert['time_us']:.0f}us (offending device "
                f"{alert['device']}, fleet fast burn "
                f"{alert['fleet_fast_burn']:.2f})"
            )
    counters = rollup.get("counters", {}) if rollup else {}
    lines.append(
        f"fleet totals: {counters.get('fleet.requests', 0)} requests, "
        f"{counters.get('fleet.migrations', 0)} migrations across "
        f"{counters.get('fleet.devices', 0)} devices"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """``repro fleet`` entry point; returns a process exit code.

    Exit codes: 0 = run completed; 2 = usage error / invalid spec.
    """
    parser = argparse.ArgumentParser(
        prog="repro fleet",
        description="Run a seeded multi-device fleet scenario with "
        "cross-device metric federation, migration tracing and "
        "fleet-level SLO rollups.",
    )
    parser.add_argument(
        "--devices", type=int, default=3, metavar="N",
        help="number of simulated devices (default 3)",
    )
    parser.add_argument(
        "--tenants", type=int, default=6, metavar="M",
        help="number of tenants in the synthesized mix (default 6)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, metavar="S",
        help="scenario seed: trace synthesis, placement and every "
        "derived artifact (default 7)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help=f"small trace ({_QUICK_REQUESTS} requests instead of "
        f"{_FULL_REQUESTS}); CI smoke size",
    )
    parser.add_argument(
        "--migrate", action="append", type=_parse_migration,
        metavar="T:DST:US", default=None,
        help="schedule a migration (repeatable): tenant T moves to device "
        "DST at simulated time US; default is one forced migration of "
        "the first tenant at 25%% of the trace span",
    )
    parser.add_argument(
        "--no-migrate", action="store_true",
        help="run without any migration (overrides the default one)",
    )
    parser.add_argument(
        "--slo", metavar="FILE", default=None,
        help="arm per-device SLO watchdogs and the fleet rollup with this "
        "JSON spec (see examples/slo.json)",
    )
    parser.add_argument(
        "--slo-tight", action="store_true",
        help="arm a built-in near-unsatisfiable spec that deterministically "
        "pages at fleet level (what the CI smoke asserts)",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the schema-versioned fleet_report.json here",
    )
    parser.add_argument(
        "--chrome-trace", metavar="PATH", default=None,
        help="write a merged multi-device Chrome trace (per-device pid "
        "namespaces plus a fleet process with migration spans)",
    )
    parser.add_argument(
        "--flight-dir", metavar="DIR", default=None,
        help="arm the fleet flight recorder: a fleet-level SLO page dumps "
        "a bundle naming the offending device",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the full fleet report to stdout as JSON",
    )
    args = parser.parse_args(argv)
    if args.devices < 1:
        parser.error("--devices must be >= 1")
    if args.tenants < 1:
        parser.error("--tenants must be >= 1")
    if args.slo is not None and args.slo_tight:
        parser.error("--slo and --slo-tight are mutually exclusive")

    slo_dict = None
    if args.slo is not None:
        try:
            with open(args.slo, encoding="utf-8") as fh:
                slo_dict = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"repro fleet: cannot read SLO spec: {exc}",
                  file=sys.stderr)
            return 2
    elif args.slo_tight:
        slo_dict = _tight_slo_dict(range(args.tenants))

    migrations = None
    if args.no_migrate:
        migrations = []
    elif args.migrate is not None:
        migrations = list(args.migrate)
        for plan in migrations:
            if not 0 <= plan.dst < args.devices:
                parser.error(
                    f"--migrate destination {plan.dst} is not a device "
                    f"(fleet has {args.devices})"
                )
            if not 0 <= plan.tenant < args.tenants:
                parser.error(
                    f"--migrate tenant {plan.tenant} is not in the mix "
                    f"({args.tenants} tenants)"
                )

    total = _QUICK_REQUESTS if args.quick else _FULL_REQUESTS
    try:
        result, observer, report = run_fleet(
            n_devices=args.devices,
            n_tenants=args.tenants,
            total_requests=total,
            seed=args.seed,
            migrations=migrations,
            slo_dict=slo_dict,
            flight_dir=args.flight_dir,
        )
    except Exception as exc:
        from ..obs import SloSpecError

        if isinstance(exc, (SloSpecError, ValueError)):
            print(f"repro fleet: {exc}", file=sys.stderr)
            return 2
        raise

    notes = []
    if args.out:
        from ..obs.fleet import write_fleet_report

        write_fleet_report(report, args.out)
        notes.append(f"wrote fleet report to {args.out}")
    if args.chrome_trace:
        from ..obs.chrometrace import write_fleet_chrome_trace

        written = write_fleet_chrome_trace(
            {
                dev: bundle.trace.events()
                for dev, bundle in enumerate(observer.device_bundles)
            },
            args.chrome_trace,
            fleet_events=observer.trace.events(),
        )
        notes.append(
            f"wrote merged chrome trace ({written} records) to "
            f"{args.chrome_trace}"
        )
    if observer.flight_recorder is not None:
        for bundle_path in observer.flight_recorder.bundles:
            notes.append(f"flight-recorder bundle: {bundle_path}")

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(_format_report(result, observer, report))
    for note in notes:
        print(note)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the repro CLI
    sys.exit(main())
