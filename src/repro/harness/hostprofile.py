"""``repro profile`` — host-side hot-path profiling of the simulator.

The ROADMAP's "raw speed: vectorized core" item needs a target list:
which *host* functions burn the wall-clock when the event-driven
simulator runs?  This module wraps :mod:`cProfile`/:mod:`pstats` around
one seeded bench scenario (the simulate call only — trace synthesis and
report assembly are excluded) and emits a schema-versioned hot-function
report:

* ``top_by_tottime`` — functions by own time (the vectorization
  candidates);
* ``top_by_cumtime`` — functions by inclusive time (the call-tree
  shape);
* optional **collapsed stacks** (``--collapsed``) — ``caller;callee``
  two-frame lines weighted by microseconds, directly feedable to
  ``flamegraph.pl`` / speedscope (cProfile keeps caller edges, not full
  stacks, so two frames is the honest depth).

``benchmarks/hotpath_baseline.json`` pins the report for the default
scenario so the upcoming vectorization PR can diff against it.  Host
wall-clock is machine-dependent: compare *shares and ranks*, not
absolute seconds.  Simulated metrics are unaffected by profiling — the
profiler observes the interpreter, not the event loop.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
import time
from pathlib import Path

__all__ = [
    "HOTPATH_SCHEMA_VERSION",
    "profile_scenario",
    "load_profile",
    "collapsed_stacks",
    "main",
]

#: Bump when the document layout changes shape.
HOTPATH_SCHEMA_VERSION = 1

#: top-level fields of the hot-path report (R007 round-trip contract
#: with profile_scenario; hotpath_baseline.json diffs rely on these)
_HOTPATH_FIELDS = frozenset({
    "schema_version", "scenario", "kind", "quick", "requests", "wall_s",
    "sim_makespan_us", "total_calls", "total_tottime_s", "top_by_tottime",
    "top_by_cumtime",
})


def load_profile(doc: dict) -> dict:
    """Validate a hot-path report document (round-trip reader).

    The vectorization PR diffs new reports against the pinned baseline;
    this refuses version mismatches and truncated documents first.
    """
    if doc.get("schema_version") != HOTPATH_SCHEMA_VERSION:
        raise ValueError(
            f"hot-path report has schema_version "
            f"{doc.get('schema_version')!r}; this tool reads version "
            f"{HOTPATH_SCHEMA_VERSION}"
        )
    missing = _HOTPATH_FIELDS - set(doc)
    if missing:
        raise ValueError(
            f"hot-path report is missing fields: {sorted(missing)}"
        )
    return doc

#: path prefixes stripped from file names in reports, longest first
_REPO_ROOT = Path(__file__).resolve().parents[3]


def _relpath(filename: str) -> str:
    """Repo-relative source path (keeps reports machine-independent)."""
    if filename.startswith("<") or filename.startswith("~"):
        return filename  # builtins: '<built-in>', '~' pstats marker
    try:
        return Path(filename).resolve().relative_to(_REPO_ROOT).as_posix()
    except ValueError:
        # stdlib / site-packages: keep only the file name, the absolute
        # prefix is host noise
        return Path(filename).name


def _func_name(key: tuple) -> str:
    filename, _line, name = key
    if filename.startswith("<") or filename == "~":
        return name
    return f"{Path(filename).stem}.{name}"


def _entries(stats: pstats.Stats, *, key: str, top: int) -> list[dict]:
    rows = []
    for func, (_cc, ncalls, tottime_s, cumtime_s, _callers) in stats.stats.items():  # type: ignore[attr-defined]
        filename, line, name = func
        rows.append(
            {
                "function": _func_name(func),
                "file": _relpath(filename),
                "line": line,
                "name": name,
                "ncalls": ncalls,
                "tottime_s": tottime_s,
                "cumtime_s": cumtime_s,
            }
        )
    rows.sort(key=lambda row: (-row[key], row["file"], row["line"]))
    return rows[:top]


def collapsed_stacks(stats: pstats.Stats) -> list[str]:
    """Two-frame ``caller;callee weight`` lines for flamegraph tooling.

    The weight is the callee's own time attributed to that caller edge,
    in integer microseconds (flamegraph collapsers want integral sample
    counts).  Functions with no recorded caller appear as single frames.
    """
    lines: list[str] = []
    for func, (_cc, _nc, tottime_s, _ct, callers) in stats.stats.items():  # type: ignore[attr-defined]
        callee = _func_name(func)
        if not callers:
            weight = int(tottime_s * 1e6)
            if weight > 0:
                lines.append(f"{callee} {weight}")
            continue
        for caller, caller_stats in callers.items():
            # per-edge tuple: (cc, nc, tottime, cumtime) attributed to
            # calls arriving via this caller
            edge_tottime_s = caller_stats[2]
            weight = int(edge_tottime_s * 1e6)
            if weight > 0:
                lines.append(f"{_func_name(caller)};{callee} {weight}")
    lines.sort()
    return lines


def profile_scenario(
    name: str, *, quick: bool = False, top: int = 25
) -> tuple[dict, pstats.Stats]:
    """Profile one bench scenario; returns ``(report, pstats.Stats)``.

    Only the simulation call runs under the profiler; building the
    seeded trace does not pollute the report.  Raises ``KeyError`` for
    an unknown scenario.
    """
    from .bench import _FULL_REQUESTS, _QUICK_REQUESTS, SCENARIOS

    builder = SCENARIOS[name]
    total = _QUICK_REQUESTS if quick else _FULL_REQUESTS
    kind, requests, cfg, sets, faults = builder(total)

    profiler = cProfile.Profile()
    t0_s = time.perf_counter()
    if kind == "fastmodel":
        from ..ssd.fastmodel import fast_simulate

        profiler.enable()
        result = fast_simulate(requests, cfg, sets)
        profiler.disable()
    else:
        from ..ssd.simulator import simulate

        profiler.enable()
        result = simulate(requests, cfg, sets, faults=faults)
        profiler.disable()
    wall_s = time.perf_counter() - t0_s

    stats = pstats.Stats(profiler)
    report = {
        "schema_version": HOTPATH_SCHEMA_VERSION,
        "scenario": name,
        "kind": kind,
        "quick": quick,
        "requests": len(requests),
        "wall_s": wall_s,
        "sim_makespan_us": result.makespan_us,
        "total_calls": stats.total_calls,  # type: ignore[attr-defined]
        "total_tottime_s": stats.total_tt,  # type: ignore[attr-defined]
        "top_by_tottime": _entries(stats, key="tottime_s", top=top),
        "top_by_cumtime": _entries(stats, key="cumtime_s", top=top),
    }
    return report, stats


def _render(report: dict) -> str:
    lines = [
        f"{report['scenario']} ({report['requests']} requests): "
        f"{report['wall_s']:.3f}s wall, {report['total_calls']} calls"
    ]
    lines.append("top functions by own time:")
    for row in report["top_by_tottime"]:
        share = (
            row["tottime_s"] / report["total_tottime_s"]
            if report["total_tottime_s"] else 0.0
        )
        lines.append(
            f"  {row['tottime_s']:>8.3f}s ({share:5.1%})  "
            f"{row['ncalls']:>9} calls  {row['function']}  "
            f"({row['file']}:{row['line']})"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """``repro profile`` entry point; returns a process exit code."""
    from .bench import SCENARIOS

    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="Profile the host-side hot paths of one seeded bench "
        "scenario (cProfile; feeds the vectorization target list).",
    )
    parser.add_argument(
        "--scenario",
        default="gc_heavy",
        metavar="NAME",
        help=f"bench scenario to profile (default gc_heavy); available: "
        f"{', '.join(SCENARIOS)}",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small trace (CI smoke size)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=25,
        metavar="N",
        help="functions kept per ranking (default 25)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write the hot-function report to FILE as JSON",
    )
    parser.add_argument(
        "--collapsed",
        metavar="FILE",
        default=None,
        help="write caller;callee collapsed stacks (microsecond weights) "
        "for flamegraph.pl / speedscope",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the report to stdout as JSON instead of a table",
    )
    args = parser.parse_args(argv)
    if args.top < 1:
        parser.error("--top must be >= 1")

    try:
        report, stats = profile_scenario(
            args.scenario, quick=args.quick, top=args.top
        )
    except KeyError:
        print(
            f"repro profile: unknown scenario {args.scenario!r}; available: "
            f"{', '.join(SCENARIOS)}",
            file=sys.stderr,
        )
        return 2

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(_render(report))
    for path, writer in (
        (args.out, lambda fh: (json.dump(report, fh, indent=2, sort_keys=True),
                               fh.write("\n"))),
        (args.collapsed,
         lambda fh: fh.write("\n".join(collapsed_stacks(stats)) + "\n")),
    ):
        if not path:
            continue
        try:
            parent = Path(path).parent
            if parent != Path(""):
                parent.mkdir(parents=True, exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                writer(fh)
        except OSError as exc:
            print(f"repro profile: cannot write {path}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the repro CLI
    sys.exit(main())
