"""Plain-text tables and series for experiment output.

Benches regenerate the paper's tables and figures as text: aligned tables
for Table-style results, labelled numeric series for figure-style results.
Everything returns strings so tests can assert on content and benches can
print.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series", "format_metrics", "normalize", "banner"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned monospace table."""
    def cell(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, text in enumerate(row):
            widths[i] = max(widths[i], len(text))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(t.ljust(w) for t, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    *,
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render figure-style data: one x column plus one column per series."""
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(f"series {name!r} length mismatch")
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(values[i] for values in series.values())]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title, float_format=float_format)


def format_metrics(snapshot: dict, *, title: str | None = None) -> str:
    """Render a :meth:`repro.obs.MetricsRegistry.snapshot` as tables.

    Counters and gauges share one name/value table; histograms get a
    distribution table (count, mean, tail percentiles); series are
    summarised by length and final value so experiment reports can embed
    the registry without dumping raw points.
    """
    parts: list[str] = []
    if title:
        parts.append(banner(title))
    scalars = [
        [name, value]
        for section in ("counters", "gauges")
        for name, value in sorted(snapshot.get(section, {}).items())
    ]
    if scalars:
        parts.append(format_table(["metric", "value"], scalars, title="counters & gauges"))
    histograms = snapshot.get("histograms", {})
    if histograms:
        rows = [
            [name, h["count"], h["mean"], h["p50"], h["p95"], h["p99"], h["max"]]
            for name, h in sorted(histograms.items())
        ]
        parts.append(
            format_table(
                ["histogram", "count", "mean", "p50", "p95", "p99", "max"],
                rows,
                title="latency histograms (us)",
                float_format="{:.1f}",
            )
        )
    series = snapshot.get("series", {})
    if series:
        rows = [
            [name, len(s["values"]), s["values"][-1] if s["values"] else "-"]
            for name, s in sorted(series.items())
        ]
        parts.append(
            format_table(["series", "points", "last"], rows, title="series")
        )
    dropped = snapshot.get("counters", {}).get("obs.dropped_samples")
    if dropped:
        parts.append(
            f"WARNING: {dropped} non-finite sample(s) were dropped "
            f"(obs.dropped_samples) — some metric emitted NaN/inf"
        )
    return "\n\n".join(parts) if parts else "(no metrics recorded)"


def normalize(values: Sequence[float], reference: float | None = None) -> list[float]:
    """Scale a series so the reference (default: first element) is 1.0."""
    values = list(values)
    if not values:
        return []
    ref = values[0] if reference is None else reference
    if ref == 0:
        raise ValueError("cannot normalise by zero")
    return [v / ref for v in values]


def banner(text: str, width: int = 72) -> str:
    """Section separator used by bench output."""
    pad = max(0, width - len(text) - 2)
    left = pad // 2
    return f"{'=' * left} {text} {'=' * (pad - left)}"
