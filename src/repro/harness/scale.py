"""Experiment scale presets.

Every experiment accepts a :class:`Scale` so the same code serves three
regimes:

* ``smoke`` — seconds; CI and unit tests;
* ``default`` — minutes on one core; the numbers committed in
  EXPERIMENTS.md;
* ``paper`` — the authors' setting (5,000 mixes, 2M-request traces); hours,
  provided for completeness.

The *shape* of every result (which strategy wins, where crossovers fall) is
stable across scales; only variance shrinks with size.
"""

from __future__ import annotations

from dataclasses import dataclass
import os

__all__ = ["Scale"]


@dataclass(frozen=True)
class Scale:
    """Knobs that trade experiment fidelity against wall-clock."""

    name: str
    #: requests per Figure-2 point (paper: 2,000,000 total per experiment)
    fig2_requests: int
    #: trace replications averaged per Figure-2 point
    fig2_replications: int
    #: labelled mixes in the training set (paper: 5,000)
    dataset_samples: int
    #: training iterations (paper: 200)
    train_iterations: int
    #: requests per Figure-5 mixed trace (paper: 1,000,000)
    mix_requests: int
    #: random mixes in the Figure-6 strategy map
    fig6_samples: int
    #: mixes for the fast-model fidelity ablation
    fidelity_mixes: int

    @classmethod
    def smoke(cls) -> "Scale":
        return cls(
            name="smoke",
            fig2_requests=600,
            fig2_replications=1,
            dataset_samples=48,
            train_iterations=40,
            mix_requests=1500,
            fig6_samples=40,
            fidelity_mixes=3,
        )

    @classmethod
    def default(cls) -> "Scale":
        return cls(
            name="default",
            fig2_requests=3000,
            fig2_replications=2,
            dataset_samples=3600,
            train_iterations=200,
            mix_requests=8000,
            fig6_samples=250,
            fidelity_mixes=8,
        )

    @classmethod
    def paper(cls) -> "Scale":
        return cls(
            name="paper",
            fig2_requests=2_000_000,
            fig2_replications=1,
            dataset_samples=5000,
            train_iterations=200,
            mix_requests=1_000_000,
            fig6_samples=1000,
            fidelity_mixes=20,
        )

    @classmethod
    def from_name(cls, name: str) -> "Scale":
        factories = {"smoke": cls.smoke, "default": cls.default, "paper": cls.paper}
        try:
            return factories[name.strip().lower()]()
        except KeyError:
            raise ValueError(
                f"unknown scale {name!r}; known: {sorted(factories)}"
            ) from None

    @classmethod
    def from_env(cls, default: str = "default") -> "Scale":
        """Resolve from ``$REPRO_SCALE`` (used by the benches)."""
        return cls.from_name(os.environ.get("REPRO_SCALE", default))
