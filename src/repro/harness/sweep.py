"""Parameter-sweep runner.

Experiments in this repository are embarrassingly parallel sweeps (strategy
x write-proportion grids, dataset sample loops).  :func:`run_sweep` runs a
function over a parameter list either serially or on a process pool —
following the guides' advice, parallelism is an explicit, measured choice:
on a single-core box (like CI) the serial path avoids pool overhead, while
multi-core machines can fan out with ``processes=N``.

The callable must be picklable (a module-level function) when a pool is
used; results come back in submission order either way.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, Sequence, TypeVar

P = TypeVar("P")
R = TypeVar("R")

__all__ = ["run_sweep", "auto_processes"]


def auto_processes(requested: int | None = None) -> int:
    """Resolve a worker count: explicit > $REPRO_PROCESSES > cpu_count-capped.

    Returns 1 (serial) when the machine has a single CPU — a pool would only
    add pickling overhead there.
    """
    if requested is not None:
        if requested < 1:
            raise ValueError("processes must be >= 1")
        return requested
    env = os.environ.get("REPRO_PROCESSES")
    if env:
        return max(1, int(env))
    return max(1, (os.cpu_count() or 1) - 0 if (os.cpu_count() or 1) == 1 else (os.cpu_count() or 2) - 1)


def run_sweep(
    fn: Callable[[P], R],
    params: Sequence[P] | Iterable[P],
    *,
    processes: int | None = None,
    chunksize: int = 1,
) -> list[R]:
    """Apply ``fn`` to every parameter, optionally on a process pool.

    ``processes=None`` resolves via :func:`auto_processes`; ``processes=1``
    forces the serial path (no pool, exceptions propagate directly).
    """
    params = list(params)
    n_workers = auto_processes(processes)
    if n_workers == 1 or len(params) <= 1:
        return [fn(p) for p in params]
    with multiprocessing.Pool(processes=min(n_workers, len(params))) as pool:
        return pool.map(fn, params, chunksize=max(1, chunksize))
