"""From-scratch neural-network substrate.

A numpy-only MLP with the optimizers and activations the paper evaluates
(SGD, SGD-momentum, Adam; ReLU and logistic), plus AdaGrad/RMSProp for the
ablations.  Gradient correctness is enforced by finite-difference checks in
``tests/nn/test_gradients.py``.
"""

from . import serialization
from .activations import Activation, Identity, Logistic, ReLU, Tanh, get_activation, softmax
from .layers import Dense
from .losses import Loss, MeanSquaredError, SoftmaxCrossEntropy, get_loss
from .metrics import (
    ClassStats,
    accuracy,
    classification_report,
    confusion_matrix,
    per_class_stats,
    top_k_accuracy,
)
from .network import MLP, paper_network
from .optimizers import SGD, AdaGrad, Adam, Optimizer, RMSProp, SGDMomentum, get_optimizer
from .preprocessing import StandardScaler, minibatches, one_hot, train_test_split
from .schedules import ScheduledOptimizer, constant, cosine, get_schedule, step_decay, warmup
from .training import History, Trainer, train

__all__ = [
    "Activation",
    "Identity",
    "Logistic",
    "ReLU",
    "Tanh",
    "get_activation",
    "softmax",
    "Loss",
    "MeanSquaredError",
    "SoftmaxCrossEntropy",
    "get_loss",
    "Dense",
    "MLP",
    "paper_network",
    "AdaGrad",
    "Adam",
    "Optimizer",
    "RMSProp",
    "SGD",
    "SGDMomentum",
    "get_optimizer",
    "ClassStats",
    "accuracy",
    "classification_report",
    "confusion_matrix",
    "per_class_stats",
    "top_k_accuracy",
    "StandardScaler",
    "minibatches",
    "one_hot",
    "train_test_split",
    "ScheduledOptimizer",
    "constant",
    "cosine",
    "get_schedule",
    "step_decay",
    "warmup",
    "History",
    "Trainer",
    "train",
    "serialization",
]
