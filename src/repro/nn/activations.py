"""Activation functions.

Each activation is a stateless object with ``forward`` and ``backward``:
``backward(grad_out, cached_output)`` maps the gradient w.r.t. the
activation's output to the gradient w.r.t. its pre-activation input, using
only the cached *output* (every activation here has a derivative expressible
in its output, which keeps the layer cache small).

The paper explores **ReLU** and **logistic** hidden activations (Table III's
Adam-ReLU / Adam-logistic variants); tanh and identity round out the set for
the ablations.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Activation", "ReLU", "Logistic", "Tanh", "Identity", "get_activation", "softmax"]


class Activation:
    """Base class; subclasses are stateless and reusable across layers."""

    name: str = "base"

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray, output: np.ndarray) -> np.ndarray:
        """d loss / d pre-activation, given d loss / d output and the output."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ReLU(Activation):
    """max(0, x) — the paper's fast hidden activation."""

    name = "relu"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def backward(self, grad_out: np.ndarray, output: np.ndarray) -> np.ndarray:
        return grad_out * (output > 0.0)


class Logistic(Activation):
    """1 / (1 + e^-x) — the paper's higher-accuracy, costlier activation."""

    name = "logistic"

    def forward(self, x: np.ndarray) -> np.ndarray:
        # Numerically stable split on sign.
        out = np.empty_like(x, dtype=float)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        return out

    def backward(self, grad_out: np.ndarray, output: np.ndarray) -> np.ndarray:
        return grad_out * output * (1.0 - output)


class Tanh(Activation):
    """Hyperbolic tangent (kept for the activation ablations)."""

    name = "tanh"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def backward(self, grad_out: np.ndarray, output: np.ndarray) -> np.ndarray:
        return grad_out * (1.0 - output * output)


class Identity(Activation):
    """Pass-through; used for the output layer before softmax."""

    name = "identity"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray, output: np.ndarray) -> np.ndarray:
        return grad_out


_REGISTRY: dict[str, type[Activation]] = {
    cls.name: cls for cls in (ReLU, Logistic, Tanh, Identity)
}


def get_activation(name: str | Activation) -> Activation:
    """Resolve an activation by name (or pass an instance through)."""
    if isinstance(name, Activation):
        return name
    try:
        return _REGISTRY[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-shift stabilisation."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    ex = np.exp(shifted)
    return ex / ex.sum(axis=-1, keepdims=True)
