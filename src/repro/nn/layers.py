"""Dense (fully-connected) layer with cached forward state.

Weights follow the paper's notation: ``w[j, k]`` connects input ``k`` to
neuron ``j`` of the layer (Equation 1's :math:`w^l_{jk}`), stored as a
``(fan_out, fan_in)`` matrix; the forward pass computes ``x @ W.T + b``.

Initialisation is He-uniform for ReLU layers and Glorot-uniform otherwise —
the choice scikit-learn's MLP makes, which the paper's learner builds on.
"""

from __future__ import annotations

import numpy as np

from .activations import Activation, ReLU, get_activation

__all__ = ["Dense"]


class Dense:
    """One fully-connected layer: ``activation(x @ W.T + b)``."""

    def __init__(
        self,
        fan_in: int,
        fan_out: int,
        activation: str | Activation = "identity",
        *,
        rng: np.random.Generator | None = None,
    ) -> None:
        if fan_in <= 0 or fan_out <= 0:
            raise ValueError("fan_in and fan_out must be positive")
        self.fan_in = fan_in
        self.fan_out = fan_out
        self.activation = get_activation(activation)
        if rng is None:
            # deterministic default: standalone Dense construction must not
            # draw OS entropy (R005); Network threads its seeded rng here
            rng = np.random.default_rng(0)
        if isinstance(self.activation, ReLU):
            bound = np.sqrt(6.0 / fan_in)  # He-uniform
        else:
            bound = np.sqrt(6.0 / (fan_in + fan_out))  # Glorot-uniform
        self.weight = rng.uniform(-bound, bound, size=(fan_out, fan_in))
        self.bias = np.zeros(fan_out)
        # gradients (filled by backward)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        # forward cache
        self._input: np.ndarray | None = None
        self._output: np.ndarray | None = None

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, *, train: bool = False) -> np.ndarray:
        """Batch forward; caches activations when ``train`` is set."""
        x = np.atleast_2d(x)
        if x.shape[1] != self.fan_in:
            raise ValueError(f"expected {self.fan_in} inputs, got {x.shape[1]}")
        out = self.activation.forward(x @ self.weight.T + self.bias)
        if train:
            self._input = x
            self._output = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads; return gradient w.r.t. the input."""
        if self._input is None or self._output is None:
            raise RuntimeError("backward() before forward(train=True)")
        grad_pre = self.activation.backward(grad_out, self._output)
        self.grad_weight = grad_pre.T @ self._input
        self.grad_bias = grad_pre.sum(axis=0)
        return grad_pre @ self.weight

    # ------------------------------------------------------------------
    def parameters(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    def gradients(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]

    @property
    def n_parameters(self) -> int:
        return self.weight.size + self.bias.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dense({self.fan_in}->{self.fan_out}, {self.activation.name})"
