"""Loss functions.

The strategy learner is a multi-class classifier over the 42 channel
allocation strategies, so the primary loss is softmax cross-entropy.  It is
implemented fused: ``backward`` returns the famously simple
``(softmax(logits) - onehot) / batch`` gradient w.r.t. the logits, avoiding
a separately-differentiated softmax layer.
"""

from __future__ import annotations

import numpy as np

from .activations import softmax

__all__ = ["Loss", "SoftmaxCrossEntropy", "MeanSquaredError", "get_loss"]

_EPS = 1e-12


class Loss:
    """Base loss; subclasses provide mean value and logits gradient."""

    name = "base"

    def value(self, logits: np.ndarray, targets: np.ndarray) -> float:
        """Mean loss over the batch."""
        raise NotImplementedError

    def backward(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the logits."""
        raise NotImplementedError


class SoftmaxCrossEntropy(Loss):
    """Fused softmax + categorical cross-entropy.

    ``targets`` may be one-hot rows or integer class labels.
    """

    name = "softmax_cross_entropy"

    @staticmethod
    def _labels(targets: np.ndarray, n_classes: int) -> np.ndarray:
        targets = np.asarray(targets)
        if targets.ndim == 2:
            if targets.shape[1] != n_classes:
                raise ValueError("one-hot width does not match logits")
            return targets.argmax(axis=1)
        return targets.astype(int)

    def value(self, logits: np.ndarray, targets: np.ndarray) -> float:
        probs = softmax(logits)
        labels = self._labels(targets, logits.shape[1])
        picked = probs[np.arange(len(labels)), labels]
        return float(-np.log(picked + _EPS).mean())

    def backward(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        probs = softmax(logits)
        labels = self._labels(targets, logits.shape[1])
        grad = probs
        grad[np.arange(len(labels)), labels] -= 1.0
        return grad / len(labels)


class MeanSquaredError(Loss):
    """0.5 * mean ||pred - target||^2 (used by regression ablations/tests)."""

    name = "mse"

    def value(self, logits: np.ndarray, targets: np.ndarray) -> float:
        diff = logits - targets
        return float(0.5 * (diff * diff).sum(axis=1).mean())

    def backward(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        return (logits - targets) / len(logits)


_REGISTRY: dict[str, type[Loss]] = {
    cls.name: cls for cls in (SoftmaxCrossEntropy, MeanSquaredError)
}


def get_loss(name: str | Loss) -> Loss:
    """Resolve a loss by registry name (or pass an instance through)."""
    if isinstance(name, Loss):
        return name
    try:
        return _REGISTRY[name.lower()]()
    except KeyError:
        raise ValueError(f"unknown loss {name!r}; known: {sorted(_REGISTRY)}") from None
