"""Classification metrics beyond plain accuracy.

The strategy learner's 42 classes contain many *near-equivalent* neighbours
(allocations within a few percent of each other's latency), so top-k
accuracy and per-class breakdowns tell far more than the single top-1
number the paper reports.  These utilities are numpy-only and operate on
logits or predicted labels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "accuracy",
    "top_k_accuracy",
    "confusion_matrix",
    "per_class_stats",
    "ClassStats",
    "classification_report",
]


def _labels_of(targets: np.ndarray) -> np.ndarray:
    targets = np.asarray(targets)
    if targets.ndim == 2:
        return targets.argmax(axis=1)
    return targets.astype(int)


def accuracy(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Fraction of exact matches."""
    predictions = np.asarray(predictions).astype(int)
    labels = _labels_of(targets)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and targets must align")
    if predictions.size == 0:
        return 0.0
    return float((predictions == labels).mean())


def top_k_accuracy(logits: np.ndarray, targets: np.ndarray, k: int) -> float:
    """Fraction of rows whose true label is among the k highest logits."""
    logits = np.atleast_2d(np.asarray(logits, dtype=float))
    labels = _labels_of(targets)
    if k < 1:
        raise ValueError("k must be >= 1")
    if len(logits) != len(labels):
        raise ValueError("logits and targets must align")
    if logits.size == 0:
        return 0.0
    k = min(k, logits.shape[1])
    top = np.argpartition(-logits, kth=k - 1, axis=1)[:, :k]
    return float((top == labels[:, None]).any(axis=1).mean())


def confusion_matrix(
    predictions: np.ndarray, targets: np.ndarray, n_classes: int
) -> np.ndarray:
    """``m[i, j]`` = count of true class i predicted as class j."""
    predictions = np.asarray(predictions).astype(int)
    labels = _labels_of(targets)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and targets must align")
    if predictions.size and (
        predictions.min() < 0
        or predictions.max() >= n_classes
        or labels.min() < 0
        or labels.max() >= n_classes
    ):
        raise ValueError("class index out of range")
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


@dataclass(frozen=True)
class ClassStats:
    """Precision/recall/F1 and support for one class."""

    label: int
    precision: float
    recall: float
    f1: float
    support: int


def per_class_stats(matrix: np.ndarray) -> list[ClassStats]:
    """Per-class precision/recall/F1 from a confusion matrix."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("confusion matrix must be square")
    out = []
    for c in range(matrix.shape[0]):
        tp = matrix[c, c]
        support = int(matrix[c].sum())
        predicted = int(matrix[:, c].sum())
        precision = tp / predicted if predicted else 0.0
        recall = tp / support if support else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        out.append(
            ClassStats(
                label=c,
                precision=float(precision),
                recall=float(recall),
                f1=float(f1),
                support=support,
            )
        )
    return out


def classification_report(
    matrix: np.ndarray, class_names: list[str] | None = None, *, min_support: int = 1
) -> str:
    """Text report of per-class precision/recall/F1 (classes with support)."""
    stats = per_class_stats(matrix)
    lines = [f"{'class':>12} {'prec':>6} {'recall':>6} {'f1':>6} {'n':>5}"]
    for s in stats:
        if s.support < min_support:
            continue
        name = class_names[s.label] if class_names else str(s.label)
        lines.append(
            f"{name:>12} {s.precision:6.2f} {s.recall:6.2f} {s.f1:6.2f} {s.support:5d}"
        )
    total = sum(s.support for s in stats)
    if total:
        weighted_f1 = sum(s.f1 * s.support for s in stats) / total
        lines.append(f"{'weighted-f1':>12} {weighted_f1:27.2f}")
    return "\n".join(lines)
