"""Multi-layer perceptron.

The SSDKeeper strategy learner is an MLP with a 9-feature input layer, one
64-neuron hidden layer, and a 42-class output (Section IV-D).  This class
generalises to any layer sizes; :func:`paper_network` builds the exact
paper architecture.

The final layer is linear (identity); classification probabilities come from
the fused softmax inside :class:`~repro.nn.losses.SoftmaxCrossEntropy`, so
``forward`` returns logits and :meth:`predict_proba` applies softmax.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .activations import softmax
from .layers import Dense
from .losses import Loss, SoftmaxCrossEntropy

__all__ = ["MLP", "paper_network"]


class MLP:
    """Feed-forward network of :class:`~repro.nn.layers.Dense` layers."""

    def __init__(
        self,
        layer_sizes: Sequence[int],
        *,
        hidden_activation: str = "relu",
        loss: Loss | None = None,
        seed: int | None = None,
    ) -> None:
        if len(layer_sizes) < 2:
            raise ValueError("need at least input and output sizes")
        rng = np.random.default_rng(seed)
        self.layer_sizes = list(layer_sizes)
        self.hidden_activation = hidden_activation
        self.layers: list[Dense] = []
        for i in range(len(layer_sizes) - 1):
            last = i == len(layer_sizes) - 2
            self.layers.append(
                Dense(
                    layer_sizes[i],
                    layer_sizes[i + 1],
                    activation="identity" if last else hidden_activation,
                    rng=rng,
                )
            )
        self.loss = loss or SoftmaxCrossEntropy()

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, *, train: bool = False) -> np.ndarray:
        """Logits for a batch (or a single feature vector)."""
        out = np.atleast_2d(np.asarray(x, dtype=float))
        for layer in self.layers:
            out = layer.forward(out, train=train)
        return out

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return softmax(self.forward(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most-likely class per row."""
        return self.forward(x).argmax(axis=1)

    # ------------------------------------------------------------------
    def train_batch(self, x: np.ndarray, y: np.ndarray) -> float:
        """Forward + backward on one minibatch; returns the batch loss.

        Parameter gradients are left in the layers for the optimizer.
        """
        logits = self.forward(x, train=True)
        value = self.loss.value(logits, y)
        grad = self.loss.backward(logits, y)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return value

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
        """(loss, accuracy) on a labelled set (integer or one-hot labels)."""
        logits = self.forward(x)
        value = self.loss.value(logits, y)
        y = np.asarray(y)
        labels = y.argmax(axis=1) if y.ndim == 2 else y.astype(int)
        accuracy = float((logits.argmax(axis=1) == labels).mean())
        return value, accuracy

    # ------------------------------------------------------------------
    def parameters(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.parameters()]

    def gradients(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.gradients()]

    @property
    def n_parameters(self) -> int:
        return sum(layer.n_parameters for layer in self.layers)

    def storage_bytes(self, bytes_per_neuron: int = 16) -> int:
        """The paper's Section IV-D storage estimate: 16 B per neuron
        (weight + bias), summed over all layers."""
        return bytes_per_neuron * sum(self.layer_sizes[1:])

    def forward_multiplies(self) -> int:
        """The paper's Section IV-D compute estimate: sum of N_i * N_{i+1}."""
        return sum(
            self.layer_sizes[i] * self.layer_sizes[i + 1]
            for i in range(len(self.layer_sizes) - 1)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        arch = "->".join(str(s) for s in self.layer_sizes)
        return f"MLP({arch}, {self.hidden_activation})"


def paper_network(
    *,
    n_features: int = 9,
    hidden: int = 64,
    n_classes: int = 42,
    activation: str = "relu",
    seed: int | None = None,
) -> MLP:
    """The exact Section IV-D architecture: 9 -> 64 -> 42."""
    return MLP(
        [n_features, hidden, n_classes],
        hidden_activation=activation,
        seed=seed,
    )
