"""Gradient-based optimizers.

The paper's Algorithm 1 is the plain Equation-1 update (:class:`SGD`); the
evaluation additionally explores SGD with momentum and Adam (Table III, with
the paper's tuned hyper-parameters: SGD lr 0.2, momentum 0.9, Adam lr 0.02).
AdaGrad and RMSProp — Adam's two ingredients the paper's background section
describes — are implemented as well, for the optimizer ablation bench.

Every optimizer exposes ``step(params, grads)`` where both lists align
elementwise; state (velocities, moment estimates) is keyed by position so a
given optimizer instance must always be stepped with the same parameter
list.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "SGDMomentum", "AdaGrad", "RMSProp", "Adam", "get_optimizer"]


class Optimizer:
    """Base optimizer; subclasses implement :meth:`step`."""

    name = "base"

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        raise NotImplementedError

    def _check(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ValueError("params and grads must align")
        for p, g in zip(params, grads):
            if p.shape != g.shape:
                raise ValueError(f"shape mismatch {p.shape} vs {g.shape}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(lr={self.learning_rate})"


class SGD(Optimizer):
    """Equation 1: ``w := w - alpha * dC/dw``."""

    name = "sgd"

    def __init__(self, learning_rate: float = 0.2) -> None:
        super().__init__(learning_rate)

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        self._check(params, grads)
        for p, g in zip(params, grads):
            p -= self.learning_rate * g


class SGDMomentum(Optimizer):
    """Heavy-ball momentum: ``v := mu*v - alpha*g; w += v``."""

    name = "sgd-momentum"

    def __init__(self, learning_rate: float = 0.2, momentum: float = 0.9) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity: list[np.ndarray] | None = None

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        self._check(params, grads)
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in params]
        for p, g, v in zip(params, grads, self._velocity):
            v *= self.momentum
            v -= self.learning_rate * g
            p += v


class AdaGrad(Optimizer):
    """Per-parameter scaling by accumulated squared gradients."""

    name = "adagrad"

    def __init__(self, learning_rate: float = 0.05, eps: float = 1e-8) -> None:
        super().__init__(learning_rate)
        self.eps = eps
        self._accum: list[np.ndarray] | None = None

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        self._check(params, grads)
        if self._accum is None:
            self._accum = [np.zeros_like(p) for p in params]
        for p, g, a in zip(params, grads, self._accum):
            a += g * g
            p -= self.learning_rate * g / (np.sqrt(a) + self.eps)


class RMSProp(Optimizer):
    """Exponentially decayed squared-gradient scaling."""

    name = "rmsprop"

    def __init__(
        self, learning_rate: float = 0.01, decay: float = 0.9, eps: float = 1e-8
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= decay < 1.0:
            raise ValueError("decay must be in [0, 1)")
        self.decay = decay
        self.eps = eps
        self._accum: list[np.ndarray] | None = None

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        self._check(params, grads)
        if self._accum is None:
            self._accum = [np.zeros_like(p) for p in params]
        for p, g, a in zip(params, grads, self._accum):
            a *= self.decay
            a += (1.0 - self.decay) * g * g
            p -= self.learning_rate * g / (np.sqrt(a) + self.eps)


class Adam(Optimizer):
    """Adam (Kingma & Ba): AdaGrad's sparse-gradient behaviour plus
    RMSProp's non-stationary behaviour, with bias-corrected moments."""

    name = "adam"

    def __init__(
        self,
        learning_rate: float = 0.02,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: list[np.ndarray] | None = None
        self._v: list[np.ndarray] | None = None
        self._t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        self._check(params, grads)
        if self._m is None:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        b1c = 1.0 - self.beta1**self._t
        b2c = 1.0 - self.beta2**self._t
        assert self._v is not None
        for p, g, m, v in zip(params, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            m_hat = m / b1c
            v_hat = v / b2c
            p -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)


_REGISTRY: dict[str, type[Optimizer]] = {
    cls.name: cls for cls in (SGD, SGDMomentum, AdaGrad, RMSProp, Adam)
}


def get_optimizer(name: str | Optimizer, **kwargs) -> Optimizer:
    """Resolve an optimizer by registry name."""
    if isinstance(name, Optimizer):
        return name
    try:
        return _REGISTRY[name.lower()](**kwargs)
    except KeyError:
        raise ValueError(
            f"unknown optimizer {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
