"""Dataset utilities: scaling, encoding, splitting, batching.

Mirrors the "Data preprocessing()" step of Algorithm 1 plus the 7:3
train/test split of Section V-B.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["StandardScaler", "one_hot", "train_test_split", "minibatches"]


class StandardScaler:
    """Per-feature zero-mean/unit-variance scaling (constant features pass
    through unscaled to avoid division blow-ups)."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError("expected a 2-D feature matrix")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("fit() before transform()")
        return (np.asarray(x, dtype=float) - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("fit() before inverse_transform()")
        return np.asarray(x, dtype=float) * self.scale_ + self.mean_

    def state(self) -> dict:
        """Serialisable parameters (for shipping to the FTL with the model)."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler not fitted")
        return {"mean": self.mean_.tolist(), "scale": self.scale_.tolist()}

    @classmethod
    def from_state(cls, state: dict) -> "StandardScaler":
        scaler = cls()
        scaler.mean_ = np.asarray(state["mean"], dtype=float)
        scaler.scale_ = np.asarray(state["scale"], dtype=float)
        return scaler


def one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Integer labels -> one-hot rows."""
    labels = np.asarray(labels, dtype=int)
    if labels.ndim != 1:
        raise ValueError("labels must be 1-D")
    if labels.min(initial=0) < 0 or (labels.size and labels.max() >= n_classes):
        raise ValueError("label out of range")
    out = np.zeros((labels.size, n_classes))
    out[np.arange(labels.size), labels] = 1.0
    return out


def train_test_split(
    x: np.ndarray,
    y: np.ndarray,
    *,
    train_fraction: float = 0.7,
    seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split; the paper's proportion is 7:3."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    x = np.asarray(x)
    y = np.asarray(y)
    if len(x) != len(y):
        raise ValueError("x and y must align")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(x))
    cut = int(round(len(x) * train_fraction))
    train_idx, test_idx = order[:cut], order[cut:]
    return x[train_idx], x[test_idx], y[train_idx], y[test_idx]


def minibatches(
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int,
    *,
    rng: np.random.Generator | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield shuffled minibatches covering the whole set once."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if len(x) != len(y):
        raise ValueError("x and y must align")
    order = (
        rng.permutation(len(x)) if rng is not None else np.arange(len(x))
    )
    for start in range(0, len(x), batch_size):
        idx = order[start : start + batch_size]
        yield x[idx], y[idx]
