"""Learning-rate schedules.

The paper trains with fixed learning rates; schedules are part of the
training-ablation surface (and genuinely help SGD close part of its gap to
Adam on this problem).  A schedule maps an iteration index to a multiplier
applied to the optimizer's base learning rate via
:class:`ScheduledOptimizer`.
"""

from __future__ import annotations

import math
from typing import Callable

from .optimizers import Optimizer

__all__ = [
    "constant",
    "step_decay",
    "cosine",
    "warmup",
    "ScheduledOptimizer",
    "get_schedule",
]

#: A schedule maps iteration (0-based) -> learning-rate multiplier.
Schedule = Callable[[int], float]


def constant() -> Schedule:
    """No decay (the paper's setting)."""
    return lambda iteration: 1.0


def step_decay(*, drop: float = 0.5, every: int = 50) -> Schedule:
    """Multiply the rate by ``drop`` every ``every`` iterations."""
    if not 0 < drop <= 1:
        raise ValueError("drop must be in (0, 1]")
    if every < 1:
        raise ValueError("every must be >= 1")
    return lambda iteration: drop ** (iteration // every)


def cosine(*, total_iterations: int, floor: float = 0.0) -> Schedule:
    """Cosine annealing from 1 to ``floor`` over ``total_iterations``."""
    if total_iterations < 1:
        raise ValueError("total_iterations must be >= 1")
    if not 0 <= floor <= 1:
        raise ValueError("floor must be in [0, 1]")

    def schedule(iteration: int) -> float:
        progress = min(1.0, iteration / total_iterations)
        return floor + (1 - floor) * 0.5 * (1 + math.cos(math.pi * progress))

    return schedule


def warmup(base: Schedule, *, iterations: int = 10) -> Schedule:
    """Linear ramp from 0 to the base schedule over ``iterations``."""
    if iterations < 1:
        raise ValueError("iterations must be >= 1")

    def schedule(iteration: int) -> float:
        ramp = min(1.0, (iteration + 1) / iterations)
        return ramp * base(iteration)

    return schedule


_REGISTRY: dict[str, Callable[..., Schedule]] = {
    "constant": constant,
    "step": step_decay,
    "cosine": cosine,
}


def get_schedule(name: str, **kwargs) -> Schedule:
    """Build a schedule by registry name."""
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown schedule {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


class ScheduledOptimizer(Optimizer):
    """Wraps an optimizer, scaling its learning rate per iteration.

    Call :meth:`advance` once per training iteration (epoch); every
    ``step`` within the iteration uses the scheduled rate.
    """

    name = "scheduled"

    def __init__(self, inner: Optimizer, schedule: Schedule) -> None:
        super().__init__(inner.learning_rate)
        self.inner = inner
        self.schedule = schedule
        self._base_rate = inner.learning_rate
        self.iteration = 0

    def advance(self) -> None:
        """Move to the next iteration's learning rate."""
        self.iteration += 1
        self.inner.learning_rate = self._base_rate * self.schedule(self.iteration)

    def step(self, params, grads) -> None:
        self.inner.step(params, grads)

    @property
    def current_rate(self) -> float:
        return self.inner.learning_rate
