"""Model parameter serialisation.

The paper trains on the host and "sends the parameters to the FTL"
(Section IV-C).  This module is that wire format: a compact JSON document
holding the architecture, hidden activation, and every layer's weights and
biases, round-trippable bit-for-bit at float64 precision via hex floats.

Loading validates the document before touching any numpy machinery: a
corrupt or truncated checkpoint raises :class:`CheckpointError` (a
``ValueError``) naming what is wrong, never a raw ``KeyError``/``TypeError``
from deep inside array construction.  Non-finite parameters are rejected —
a NaN weight would silently poison every downstream prediction.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .network import MLP

__all__ = ["CheckpointError", "to_dict", "from_dict", "save", "load"]

_FORMAT = "repro-mlp-v1"


class CheckpointError(ValueError):
    """A model checkpoint is malformed, truncated, or inconsistent."""


def to_dict(network: MLP) -> dict:
    """Serialisable description of a network."""
    return {
        "format": _FORMAT,
        "layer_sizes": network.layer_sizes,
        "hidden_activation": network.hidden_activation,
        "layers": [
            {
                "weight": [[v.hex() for v in row] for row in layer.weight.tolist()],
                "bias": [v.hex() for v in layer.bias.tolist()],
            }
            for layer in network.layers
        ],
    }


def _parse_floats(values, what: str) -> np.ndarray:
    """Hex-float list(s) -> array, with a named error on any bad cell."""
    try:
        arr = np.array(
            [[float.fromhex(v) for v in row] for row in values]
            if values and isinstance(values[0], list)
            else [float.fromhex(v) for v in values]
        )
    except (TypeError, ValueError, AttributeError) as exc:
        raise CheckpointError(f"{what}: unparseable hex float ({exc})") from exc
    if not np.all(np.isfinite(arr)):
        raise CheckpointError(f"{what}: contains non-finite values")
    return arr


def from_dict(payload: dict) -> MLP:
    """Rebuild a network from :func:`to_dict` output.

    Raises :class:`CheckpointError` on any structural problem: wrong
    format tag, missing keys, bad layer sizes, unparseable or non-finite
    parameters, or shapes inconsistent with the declared architecture.
    """
    if not isinstance(payload, dict):
        raise CheckpointError(
            f"checkpoint must be a JSON object, got {type(payload).__name__}"
        )
    if payload.get("format") != _FORMAT:
        raise CheckpointError(f"unsupported model format {payload.get('format')!r}")
    for key in ("layer_sizes", "hidden_activation", "layers"):
        if key not in payload:
            raise CheckpointError(f"checkpoint is missing {key!r}")
    sizes = payload["layer_sizes"]
    if (
        not isinstance(sizes, list)
        or len(sizes) < 2
        or not all(isinstance(s, int) and s > 0 for s in sizes)
    ):
        raise CheckpointError(f"layer_sizes must be >= 2 positive ints, got {sizes!r}")
    try:
        network = MLP(sizes, hidden_activation=payload["hidden_activation"])
    except (ValueError, KeyError) as exc:
        raise CheckpointError(f"cannot build architecture: {exc}") from exc
    layers = payload["layers"]
    if not isinstance(layers, list) or len(layers) != len(network.layers):
        raise CheckpointError(
            f"expected {len(network.layers)} layers, got "
            f"{len(layers) if isinstance(layers, list) else type(layers).__name__}"
        )
    for i, (layer, state) in enumerate(zip(network.layers, layers)):
        if not isinstance(state, dict) or "weight" not in state or "bias" not in state:
            raise CheckpointError(f"layer {i}: missing weight/bias")
        weight = _parse_floats(state["weight"], f"layer {i} weight")
        bias = _parse_floats(state["bias"], f"layer {i} bias")
        if weight.shape != layer.weight.shape or bias.shape != layer.bias.shape:
            raise CheckpointError(
                f"layer {i}: parameter shape {weight.shape}/{bias.shape} does "
                f"not match architecture {layer.weight.shape}/{layer.bias.shape}"
            )
        layer.weight = weight
        layer.bias = bias
    return network


def save(network: MLP, path: str | Path) -> None:
    """Write the network to a JSON file."""
    Path(path).write_text(json.dumps(to_dict(network)), encoding="utf-8")


def load(path: str | Path) -> MLP:
    """Read a network back from :func:`save` output.

    Raises :class:`CheckpointError` when the file is not valid JSON or the
    document fails :func:`from_dict` validation.
    """
    text = Path(path).read_text(encoding="utf-8")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"{path}: not valid JSON ({exc})") from exc
    return from_dict(payload)
