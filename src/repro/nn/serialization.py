"""Model parameter serialisation.

The paper trains on the host and "sends the parameters to the FTL"
(Section IV-C).  This module is that wire format: a compact JSON document
holding the architecture, hidden activation, and every layer's weights and
biases, round-trippable bit-for-bit at float64 precision via hex floats.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .network import MLP

__all__ = ["to_dict", "from_dict", "save", "load"]

_FORMAT = "repro-mlp-v1"


def to_dict(network: MLP) -> dict:
    """Serialisable description of a network."""
    return {
        "format": _FORMAT,
        "layer_sizes": network.layer_sizes,
        "hidden_activation": network.hidden_activation,
        "layers": [
            {
                "weight": [[v.hex() for v in row] for row in layer.weight.tolist()],
                "bias": [v.hex() for v in layer.bias.tolist()],
            }
            for layer in network.layers
        ],
    }


def from_dict(payload: dict) -> MLP:
    """Rebuild a network from :func:`to_dict` output."""
    if payload.get("format") != _FORMAT:
        raise ValueError(f"unsupported model format {payload.get('format')!r}")
    network = MLP(
        payload["layer_sizes"],
        hidden_activation=payload["hidden_activation"],
    )
    layers = payload["layers"]
    if len(layers) != len(network.layers):
        raise ValueError("layer count mismatch")
    for layer, state in zip(network.layers, layers):
        weight = np.array(
            [[float.fromhex(v) for v in row] for row in state["weight"]]
        )
        bias = np.array([float.fromhex(v) for v in state["bias"]])
        if weight.shape != layer.weight.shape or bias.shape != layer.bias.shape:
            raise ValueError("parameter shape mismatch")
        layer.weight = weight
        layer.bias = bias
    return network


def save(network: MLP, path: str | Path) -> None:
    """Write the network to a JSON file."""
    Path(path).write_text(json.dumps(to_dict(network)), encoding="utf-8")


def load(path: str | Path) -> MLP:
    """Read a network back from :func:`save` output."""
    return from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
