"""Training loop with per-iteration history.

Reproduces the model-training phase of Algorithm 1 and produces exactly the
curves of Figure 4: training loss per iteration and test-set accuracy per
iteration, plus the wall-clock training time reported in Table III.

An *iteration* here is one pass over the training set in minibatches — how
the scikit-learn MLP the authors used counts its ``max_iter``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import time

import numpy as np

from .network import MLP
from .optimizers import Optimizer, get_optimizer
from .preprocessing import minibatches

__all__ = ["History", "Trainer", "train"]


@dataclass
class History:
    """Per-iteration training record (Figure 4's raw data)."""

    loss: list[float] = field(default_factory=list)
    test_accuracy: list[float] = field(default_factory=list)
    test_loss: list[float] = field(default_factory=list)
    training_time_ms: float = 0.0

    @property
    def iterations(self) -> int:
        return len(self.loss)

    @property
    def final_loss(self) -> float:
        if not self.loss:
            raise RuntimeError("no iterations recorded")
        return self.loss[-1]

    @property
    def final_accuracy(self) -> float:
        if not self.test_accuracy:
            raise RuntimeError("no test evaluations recorded")
        return self.test_accuracy[-1]


class Trainer:
    """Couples a network with an optimizer and runs iterations."""

    def __init__(
        self,
        network: MLP,
        optimizer: str | Optimizer = "adam",
        *,
        batch_size: int = 64,
        seed: int | None = None,
        weight_decay: float = 0.0,
        obs=None,
        **optimizer_kwargs,
    ) -> None:
        self.network = network
        self.optimizer = get_optimizer(optimizer, **optimizer_kwargs)
        #: optional :class:`repro.obs.Observability`: per-epoch loss,
        #: test accuracy, learning rate, and wall-time are published as
        #: ``train.*`` series through the same registry the simulator uses
        self.obs = obs
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if weight_decay < 0 or weight_decay >= 1:
            raise ValueError("weight_decay must be in [0, 1)")
        self.batch_size = batch_size
        #: decoupled L2 decay applied to every parameter after each step
        #: (0 = the paper's unregularised setting)
        self.weight_decay = weight_decay
        self._rng = np.random.default_rng(seed)

    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        *,
        iterations: int = 200,
        x_test: np.ndarray | None = None,
        y_test: np.ndarray | None = None,
        early_stop_loss: float | None = None,
    ) -> History:
        """Run ``iterations`` epochs; record loss (and test metrics if given).

        ``early_stop_loss`` stops once the epoch loss drops below it — used
        by the self-adapting retraining flow, not by the paper's fixed-200
        reproduction runs.
        """
        x_train = np.asarray(x_train, dtype=float)
        y_train = np.asarray(y_train)
        history = History()
        params = self.network.parameters()
        obs = self.obs
        if obs is not None:
            s_loss = obs.registry.series("train.loss")
            s_acc = obs.registry.series("train.test_accuracy")
            s_lr = obs.registry.series("train.lr")
            s_epoch_ms = obs.registry.series("train.epoch_ms")
            c_epochs = obs.registry.counter("train.epochs")
        start_s = time.perf_counter()
        epoch_start_s = start_s
        for epoch in range(iterations):
            epoch_loss = 0.0
            batches = 0
            for xb, yb in minibatches(
                x_train, y_train, self.batch_size, rng=self._rng
            ):
                epoch_loss += self.network.train_batch(xb, yb)
                self.optimizer.step(params, self.network.gradients())
                if self.weight_decay:
                    decay = 1.0 - self.weight_decay
                    for p in params:
                        p *= decay
                batches += 1
            history.loss.append(epoch_loss / max(1, batches))
            if obs is not None:
                now_s = time.perf_counter()
                s_loss.append(epoch, history.loss[-1])
                s_lr.append(
                    epoch,
                    getattr(
                        self.optimizer, "current_rate",
                        self.optimizer.learning_rate,
                    ),
                )
                s_epoch_ms.append(epoch, (now_s - epoch_start_s) * 1e3)
                epoch_start_s = now_s
                c_epochs.inc()
            advance = getattr(self.optimizer, "advance", None)
            if advance is not None:
                advance()  # scheduled optimizers move to the next iteration's rate
            if x_test is not None and y_test is not None:
                test_loss, test_acc = self.network.evaluate(x_test, y_test)
                history.test_loss.append(test_loss)
                history.test_accuracy.append(test_acc)
                if obs is not None:
                    s_acc.append(epoch, test_acc)
            if early_stop_loss is not None and history.loss[-1] < early_stop_loss:
                break
        history.training_time_ms = (time.perf_counter() - start_s) * 1e3
        if obs is not None:
            obs.registry.gauge("train.time_ms").set(history.training_time_ms)
        return history


def train(
    network: MLP,
    x_train: np.ndarray,
    y_train: np.ndarray,
    *,
    optimizer: str | Optimizer = "adam",
    iterations: int = 200,
    batch_size: int = 64,
    x_test: np.ndarray | None = None,
    y_test: np.ndarray | None = None,
    seed: int | None = None,
    obs=None,
    **optimizer_kwargs,
) -> History:
    """Functional one-shot wrapper around :class:`Trainer`."""
    trainer = Trainer(
        network, optimizer, batch_size=batch_size, seed=seed, obs=obs,
        **optimizer_kwargs,
    )
    return trainer.fit(
        x_train,
        y_train,
        iterations=iterations,
        x_test=x_test,
        y_test=y_test,
    )
