"""``repro.obs`` — zero-dependency observability subsystem.

Three pillars, bundled by the :class:`Observability` facade:

* **metrics registry** (:mod:`repro.obs.registry`) — counters, gauges,
  fixed-bucket latency histograms (p50/p95/p99), and series that the
  simulator, FTL, GC, buffer, fast model, keeper, and training loop
  publish into;
* **structured tracing** (:mod:`repro.obs.trace`,
  :mod:`repro.obs.chrometrace`) — ring-buffered event records with JSONL
  and ``chrome://tracing`` exporters;
* **utilization profiling** (:mod:`repro.obs.profiler`) — per-channel /
  per-die busy-fraction and queue-depth time series on a configurable
  simulated-time interval;
* **latency attribution** (:mod:`repro.obs.attribution`) — exact-sum
  decomposition of every completed request's latency into named phases
  (queue waits, bus transfer, die busy, GC stall, ECC retries, buffer
  hits) with per-tenant/per-channel aggregation and Perfetto spans;
* **causal explanation** (:mod:`repro.obs.critpath`,
  :mod:`repro.obs.whatif`) — run-level critical-path extraction (which
  resource bounds the makespan, exact-sum validated) and counterfactual
  what-if profiling by exact re-simulation with scaled config knobs,
  surfaced as ``repro explain``.

Everything is opt-in: components take ``obs=None`` and pay at most one
``is not None`` branch per hot-path event when disabled.  Enable with::

    from repro.obs import Observability
    obs = Observability(utilization_interval_us=500.0)
    sim = SSDSimulator(config, channel_sets, obs=obs)
    result = sim.run(trace)
    obs.trace.write_jsonl("run.jsonl")
    obs.write_chrome_trace("run.chrome.json")
    print(obs.registry.to_json(indent=2))
"""

from __future__ import annotations

from .attribution import (
    DRAM_CHANNEL,
    PHASE_NAMES,
    AttributionCollector,
    AttributionError,
    LatencyBreakdown,
    RequestAttribution,
    SubrequestSpan,
)
from .chrometrace import to_chrome_trace, write_chrome_trace
from .critpath import (
    CRITPATH_SCHEMA_VERSION,
    BottleneckReport,
    CritPathError,
    extract_critical_path,
)
from .diff import (
    DIFF_SCHEMA_VERSION,
    DiffError,
    build_diff_report,
    diff_bench_docs,
    diff_critpath_docs,
    diff_fleet_devices,
    diff_run,
    diff_traces,
    load_diff,
    write_diff,
)
from .fleet import (
    FLEET_SCHEMA_VERSION,
    FleetObserver,
    FleetRegistry,
    FleetSloAlert,
    FleetSloRollup,
    build_fleet_report,
    device_health,
    load_fleet,
    merge_histograms,
    write_fleet_report,
)
from .flightrecorder import FLIGHT_SCHEMA_VERSION, FlightRecorder
from .profiler import UtilizationProfiler
from .registry import DEFAULT_LATENCY_BUCKETS_US, Counter, Gauge, Histogram, MetricsRegistry, Series
from .slo import SloAlert, SloSpec, SloSpecError, SloWatchdog
from .telemetry import TELEMETRY_SCHEMA_VERSION, TelemetrySink
from .trace import EVENT_NAMES, NULL_RECORDER, NullRecorder, TraceEvent, TraceRecorder, match_pairs
from .whatif import (
    DEFAULT_COUNTERFACTUALS,
    WHATIF_SCHEMA_VERSION,
    Counterfactual,
    WhatIfReport,
    WhatIfRow,
    explain_decisions,
    run_whatif,
)

__all__ = [
    "Observability",
    "TelemetrySink",
    "TELEMETRY_SCHEMA_VERSION",
    "SloSpec",
    "SloSpecError",
    "SloAlert",
    "SloWatchdog",
    "FlightRecorder",
    "FLIGHT_SCHEMA_VERSION",
    "FLEET_SCHEMA_VERSION",
    "FleetObserver",
    "FleetRegistry",
    "FleetSloAlert",
    "FleetSloRollup",
    "build_fleet_report",
    "device_health",
    "load_fleet",
    "merge_histograms",
    "write_fleet_report",
    "AttributionCollector",
    "AttributionError",
    "LatencyBreakdown",
    "RequestAttribution",
    "SubrequestSpan",
    "PHASE_NAMES",
    "DRAM_CHANNEL",
    "BottleneckReport",
    "CritPathError",
    "extract_critical_path",
    "CRITPATH_SCHEMA_VERSION",
    "Counterfactual",
    "DEFAULT_COUNTERFACTUALS",
    "WhatIfReport",
    "WhatIfRow",
    "run_whatif",
    "explain_decisions",
    "WHATIF_SCHEMA_VERSION",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "DEFAULT_LATENCY_BUCKETS_US",
    "TraceRecorder",
    "TraceEvent",
    "NullRecorder",
    "NULL_RECORDER",
    "EVENT_NAMES",
    "match_pairs",
    "UtilizationProfiler",
    "to_chrome_trace",
    "write_chrome_trace",
    "DIFF_SCHEMA_VERSION",
    "DiffError",
    "build_diff_report",
    "diff_bench_docs",
    "diff_critpath_docs",
    "diff_fleet_devices",
    "diff_run",
    "diff_traces",
    "load_diff",
    "write_diff",
]


class Observability:
    """Bundle of registry + trace recorder + profiling config.

    Parameters
    ----------
    registry:
        Existing registry to publish into (default: a fresh one).
    trace:
        ``True`` (default) records events into a ring buffer; ``False``
        installs the no-op recorder (metrics only); or pass a
        pre-configured :class:`TraceRecorder`.
    trace_capacity / trace_sample_every:
        Ring-buffer size and 1-in-N sampling for the default recorder.
    utilization_interval_us:
        When set, the simulator attaches a :class:`UtilizationProfiler`
        sampling every that many simulated microseconds (found afterwards
        on :attr:`profiler`).
    attribution:
        ``True`` attaches an :class:`AttributionCollector` (found on
        :attr:`attribution`): every completed request's latency is
        decomposed into named phases — queue waits, bus transfer, die
        busy, GC stall, ECC retries, buffer hits — with exact-sum
        validation; or pass a pre-configured collector.  ``False`` (the
        default) costs nothing.
    telemetry:
        A sampling interval in simulated microseconds (or a
        pre-configured :class:`TelemetrySink`): the simulator arms the
        sink to emit delta-encoded windows over the registry on weak
        loop events (never perturbing the run).  ``None`` (default)
        costs nothing.
    slo:
        An :class:`SloSpec` (or pre-built :class:`SloWatchdog`): each
        telemetry window is evaluated for burn-rate alerting.  Implies
        telemetry — when no sink/interval is given, one is created with
        the spec's ``window_us``.
    flight_recorder:
        An output directory path (or pre-built :class:`FlightRecorder`):
        sanitizer traps, page-severity SLO alerts, and unrecoverable
        reads dump reproducible debug bundles there.
    """

    def __init__(
        self,
        *,
        registry: MetricsRegistry | None = None,
        trace: "bool | TraceRecorder" = True,
        trace_capacity: int = 65_536,
        trace_sample_every: int = 1,
        utilization_interval_us: float | None = None,
        attribution: "bool | AttributionCollector" = False,
        telemetry: "float | TelemetrySink | None" = None,
        slo: "SloSpec | SloWatchdog | None" = None,
        flight_recorder: "str | FlightRecorder | None" = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        if isinstance(trace, (TraceRecorder, NullRecorder)):
            self.trace = trace
        elif trace:
            self.trace = TraceRecorder(
                capacity=trace_capacity, sample_every=trace_sample_every
            )
        else:
            self.trace = NULL_RECORDER
        if utilization_interval_us is not None and utilization_interval_us <= 0:
            raise ValueError("utilization_interval_us must be positive")
        self.utilization_interval_us = utilization_interval_us
        #: attached by the simulator when profiling is enabled
        self.profiler: UtilizationProfiler | None = None
        #: keeper decision records (:class:`repro.core.keeper.KeeperDecision`)
        self.decisions: list = []
        #: optional per-request latency attribution sink
        if isinstance(attribution, AttributionCollector):
            self.attribution: AttributionCollector | None = attribution
        elif attribution:
            self.attribution = AttributionCollector(trace=self.trace)
        else:
            self.attribution = None
        #: optional SLO watchdog fed by the telemetry sink
        if isinstance(slo, SloWatchdog):
            self.slo: SloWatchdog | None = slo
        elif isinstance(slo, SloSpec):
            self.slo = SloWatchdog(slo)
        elif slo is None:
            self.slo = None
        else:
            raise TypeError("slo must be an SloSpec or SloWatchdog")
        #: optional windowed telemetry sink (armed by the simulator)
        if isinstance(telemetry, TelemetrySink):
            self.telemetry: TelemetrySink | None = telemetry
        elif telemetry is not None:
            self.telemetry = TelemetrySink(float(telemetry))
        elif self.slo is not None:
            # an SLO without an explicit sink still needs windows to
            # evaluate: derive one from the spec's window length
            self.telemetry = TelemetrySink(self.slo.spec.window_us)
        else:
            self.telemetry = None
        if self.slo is not None:
            self.telemetry.watchdog = self.slo
        #: optional failure flight recorder
        if isinstance(flight_recorder, FlightRecorder):
            self.flight_recorder: FlightRecorder | None = flight_recorder
        elif flight_recorder is not None:
            self.flight_recorder = FlightRecorder(flight_recorder)
        else:
            self.flight_recorder = None
        if self.flight_recorder is not None:
            self.flight_recorder.obs = self
        if self.slo is not None:
            self.slo.bind(
                registry=self.registry,
                trace=self.trace if self.trace.enabled else None,
                flight_recorder=self.flight_recorder,
            )

    # ------------------------------------------------------------------
    def write_chrome_trace(self, path) -> int:
        """Export recorded events in Chrome trace format; returns count."""
        return write_chrome_trace(self.trace.events(), path)

    def export(self) -> dict:
        """Registry snapshot plus utilization, attribution, fault and
        keeper summaries (each section present only when populated)."""
        out = self.registry.snapshot()
        if self.profiler is not None:
            out["utilization"] = self.profiler.to_dict()
        if self.decisions:
            out["keeper_decisions"] = [d.to_dict() for d in self.decisions]
        if self.attribution is not None:
            out["attribution"] = self.attribution.breakdown().to_dict()
        if self.telemetry is not None:
            out["telemetry"] = {
                "schema_version": TELEMETRY_SCHEMA_VERSION,
                "interval_us": self.telemetry.interval_us,
                "windows": len(self.telemetry.windows),
            }
        if self.slo is not None:
            out["slo"] = self.slo.summary()
        if self.flight_recorder is not None and self.flight_recorder.bundles:
            out["flight_bundles"] = [
                str(p) for p in self.flight_recorder.bundles
            ]
        faults = {
            name: value
            for section in ("counters", "gauges")
            for name, value in out.get(section, {}).items()
            if name.startswith("faults.")
        }
        if faults:
            out["faults"] = faults
        fallbacks = self.registry.get("keeper.fallbacks")
        if fallbacks is not None or self.decisions:
            out["keeper"] = {
                "fallbacks": fallbacks.value if fallbacks is not None else 0,
                "prediction_health": [
                    {
                        "time_us": d.time_us,
                        "healthy": d.fallback_reason is None,
                        "reason": d.fallback_reason,
                    }
                    for d in self.decisions
                ],
            }
        adaptation = self._adaptation_summary(out.get("counters", {}))
        if adaptation is not None:
            out["adaptation"] = adaptation
        return out

    def _adaptation_summary(self, counters: dict) -> dict | None:
        """Roll the adaptive keeper's drift/retrain counters into one
        section (``None`` when no adaptive run published anything)."""
        names = {
            "windows": "drift.windows",
            "detections": "drift.detections",
            "residual_alarms": "drift.residual_alarms",
            "feature_alarms": "drift.feature_alarms",
            "retrains": "keeper.retrains",
            "promotions": "keeper.promotions",
            "rollbacks": "keeper.rollbacks",
            "suppressed_switches": "keeper.suppressed_switches",
            "degradations": "keeper.degradations",
        }
        if not any(counter in counters for counter in names.values()):
            return None
        return {key: counters.get(counter, 0) for key, counter in names.items()}
