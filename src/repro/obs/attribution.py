"""Per-request latency attribution.

PR 1's observability reports end-to-end latencies and coarse busy
fractions — enough to see *that* an allocation is slow, not *why*.  This
module decomposes every completed request's response latency into named
**phases** along its critical path (the sub-request whose completion
determined the request's completion time), the way EagleTree and
SimpleSSD decompose their internal delays:

``queue_channel_us``
    time the critical sub-request waited for its channel bus;
``queue_die_us``
    time it waited for its die behind *host* work;
``gc_stall_us``
    the portion of the die wait spent behind internal work (GC copyback
    + erase, fault-relocation) granted while the sub-request was queued;
``bus_us``
    channel occupancy (page transfer);
``die_us``
    base die occupancy (command + tR, or tPROG);
``ecc_retry_us``
    extra die occupancy paid for ECC read retries under fault injection;
``buffer_us``
    DRAM latency, when the critical page was served by the write buffer.

The decomposition is **exact**: because the critical sub-request's
timeline is contiguous from submission to completion, the phases sum to
the recorded request latency to within float tolerance
(``tolerance_us``, default 1e-6).  Every :meth:`AttributionCollector.record`
validates that identity — through the runtime
:class:`~repro.analysis.Sanitizer` when one is attached (so a mismatch
is reported with the correlated event trail), as a plain
:class:`AttributionError` otherwise.

Everything is opt-in with the same contract as ``obs`` / ``faults`` /
``sanitizer``: components hold ``attribution=None`` and pay one
``is not None`` branch per hook site when disabled; an enabled run's
simulated timeline is untouched (the collector schedules no events and
draws no randomness), so its latency summary is byte-identical to a
disabled run's.

When a :class:`~repro.obs.trace.TraceRecorder` is attached, each
recorded request additionally emits Chrome-trace spans (``req_span``
plus one span per non-empty phase, category ``attr``) on its tenant's
track, so a single request's life — waiting, sensing, transferring,
stalled behind GC — is visible in Perfetto.
"""

from __future__ import annotations

__all__ = [
    "PHASE_NAMES",
    "DRAM_CHANNEL",
    "AttributionError",
    "SubrequestSpan",
    "RequestAttribution",
    "LatencyBreakdown",
    "AttributionCollector",
]

#: Canonical phase vocabulary, in report order.  Phase values are summed
#: microseconds; for every recorded request they sum to its latency.
PHASE_NAMES = (
    "queue_channel_us",
    "queue_die_us",
    "gc_stall_us",
    "bus_us",
    "die_us",
    "ecc_retry_us",
    "buffer_us",
)

#: ``channel`` key used for requests whose critical page was served by
#: the DRAM buffer (no flash channel involved).
DRAM_CHANNEL = -1


class AttributionError(RuntimeError):
    """The phases of a request failed to sum to its recorded latency."""


class SubrequestSpan:
    """Mutable per-sub-request timeline the simulator fills in.

    One span is created per dispatched page when attribution is enabled;
    only the span of the *critical* page (the one completing last) is
    recorded.  The span samples its die's ``gc_busy_time_us`` counter at
    enqueue and grant, so the slice of the die wait spent behind
    internal (GC-priority) work is separated out exactly.
    """

    __slots__ = (
        "channel", "die",
        "die_enq_us", "die_grant_us", "die_wait_us", "gc_stall_us",
        "die_us", "ecc_retry_us",
        "bus_enq_us", "bus_grant_us", "bus_wait_us", "bus_us",
        "buffer_us", "end_us",
        "_gc_mark_us",
    )

    def __init__(self, channel: int, die: int = -1) -> None:
        self.channel = channel
        #: die index the critical page occupied (``-1`` = DRAM buffer);
        #: the critical-path explainer keys its per-resource report on it
        self.die = die
        self.die_enq_us = 0.0
        self.die_grant_us = 0.0
        self.die_wait_us = 0.0
        self.gc_stall_us = 0.0
        self.die_us = 0.0
        self.ecc_retry_us = 0.0
        self.bus_enq_us = 0.0
        self.bus_grant_us = 0.0
        self.bus_wait_us = 0.0
        self.bus_us = 0.0
        self.buffer_us = 0.0
        self.end_us = 0.0
        self._gc_mark_us = 0.0

    # -- hooks the simulator calls at the matching simulation moments ----
    def die_enqueued(self, now_us: float, die) -> None:
        """The sub-request asked for its die at ``now_us``."""
        self.die_enq_us = now_us
        self._gc_mark_us = die.gc_busy_time_us

    def die_granted(self, start_us: float, die) -> None:
        """The die granted service at ``start_us``.

        The wait splits into time behind internal GC-priority work
        (grants that bumped ``die.gc_busy_time_us`` while we queued —
        their service windows lie entirely inside ours, so the busy-time
        delta is the exact overlap) and time behind host work.
        """
        self.die_grant_us = start_us
        wait_us = start_us - self.die_enq_us
        stall_us = die.gc_busy_time_us - self._gc_mark_us
        if stall_us > wait_us:
            stall_us = wait_us
        self.gc_stall_us = stall_us
        self.die_wait_us = wait_us - stall_us

    def bus_enqueued(self, now_us: float) -> None:
        """The sub-request asked for its channel bus at ``now_us``."""
        self.bus_enq_us = now_us

    def bus_granted(self, start_us: float) -> None:
        """The channel bus granted the transfer at ``start_us``."""
        self.bus_grant_us = start_us
        self.bus_wait_us = start_us - self.bus_enq_us


class RequestAttribution:
    """Immutable phase decomposition of one completed request."""

    __slots__ = (
        "workload_id", "op", "channel", "die", "latency_us",
        "arrival_us", "complete_us",
        "queue_channel_us", "queue_die_us", "gc_stall_us",
        "bus_us", "die_us", "ecc_retry_us", "buffer_us",
    )

    def __init__(
        self,
        workload_id: int,
        op: str,
        channel: int,
        latency_us: float,
        *,
        die: int = -1,
        arrival_us: float = 0.0,
        complete_us: float | None = None,
        queue_channel_us: float = 0.0,
        queue_die_us: float = 0.0,
        gc_stall_us: float = 0.0,
        bus_us: float = 0.0,
        die_us: float = 0.0,
        ecc_retry_us: float = 0.0,
        buffer_us: float = 0.0,
    ) -> None:
        self.workload_id = workload_id
        self.op = op
        self.channel = channel
        self.die = die
        self.latency_us = latency_us
        self.arrival_us = arrival_us
        #: absolute completion time; defaults to ``arrival + latency`` so
        #: hand-built records stay consistent with simulator-filled ones
        self.complete_us = (
            complete_us if complete_us is not None else arrival_us + latency_us
        )
        self.queue_channel_us = queue_channel_us
        self.queue_die_us = queue_die_us
        self.gc_stall_us = gc_stall_us
        self.bus_us = bus_us
        self.die_us = die_us
        self.ecc_retry_us = ecc_retry_us
        self.buffer_us = buffer_us

    def phases(self) -> dict[str, float]:
        """Phase name -> attributed microseconds."""
        return {name: getattr(self, name) for name in PHASE_NAMES}

    def phase_sum_us(self) -> float:
        """Sum of all phases; equals ``latency_us`` within tolerance."""
        return (
            self.queue_channel_us + self.queue_die_us + self.gc_stall_us
            + self.bus_us + self.die_us + self.ecc_retry_us + self.buffer_us
        )

    def to_dict(self) -> dict:
        return {
            "workload_id": self.workload_id,
            "op": self.op,
            "channel": self.channel,
            "die": self.die,
            "arrival_us": self.arrival_us,
            "complete_us": self.complete_us,
            "latency_us": self.latency_us,
            **self.phases(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestAttribution(w{self.workload_id} {self.op} "
            f"ch{self.channel} {self.latency_us:.1f}us)"
        )


class LatencyBreakdown:
    """Aggregated attribution summary attached to a simulation result.

    ``phase_totals_us`` sums each phase over all recorded requests;
    ``per_tenant`` / ``per_channel`` carry the same sums keyed by
    workload id and by channel index (``-1`` = DRAM buffer), each with
    ``requests`` and ``latency_us`` alongside the phases.  ``gc`` holds
    the cause-side view: which tenants *triggered* GC work and which
    channels *paid* for reclaims.
    """

    __slots__ = (
        "requests", "total_latency_us", "phase_totals_us",
        "per_tenant", "per_channel", "gc_triggers", "gc_reclaims",
    )

    def __init__(
        self,
        requests: int,
        total_latency_us: float,
        phase_totals_us: dict[str, float],
        per_tenant: dict[int, dict[str, float]],
        per_channel: dict[int, dict[str, float]],
        gc_triggers: dict[int, dict[str, int]],
        gc_reclaims: dict[int, dict[str, int]],
    ) -> None:
        self.requests = requests
        self.total_latency_us = total_latency_us
        self.phase_totals_us = phase_totals_us
        self.per_tenant = per_tenant
        self.per_channel = per_channel
        self.gc_triggers = gc_triggers
        self.gc_reclaims = gc_reclaims

    def phase_fractions(self) -> dict[str, float]:
        """Phase name -> share of the total attributed latency."""
        total_us = self.total_latency_us
        if total_us <= 0:
            return {name: 0.0 for name in PHASE_NAMES}
        return {
            name: value / total_us
            for name, value in self.phase_totals_us.items()
        }

    def to_dict(self) -> dict:
        phase_totals_us = {**self.phase_totals_us}
        return {
            "requests": self.requests,
            "total_latency_us": self.total_latency_us,
            "phase_totals_us": phase_totals_us,
            "phase_fractions": self.phase_fractions(),
            "per_tenant": {
                wid: dict(row) for wid, row in sorted(self.per_tenant.items())
            },
            "per_channel": {
                ch: dict(row) for ch, row in sorted(self.per_channel.items())
            },
            "gc": {
                "triggered_by_tenant": {
                    wid: dict(row)
                    for wid, row in sorted(self.gc_triggers.items())
                },
                "reclaims_by_channel": {
                    ch: dict(row)
                    for ch, row in sorted(self.gc_reclaims.items())
                },
            },
        }

    def format(self) -> str:
        """Human-readable phase table (embedded in ``repro stats``)."""
        fractions = self.phase_fractions()
        lines = [
            f"latency attribution over {self.requests} requests "
            f"({self.total_latency_us / 1e6:.3f}s total):"
        ]
        for name in PHASE_NAMES:
            total_us = self.phase_totals_us[name]
            if total_us == 0.0:
                continue
            lines.append(
                f"  {name:<18} {total_us:>14.1f} us  ({fractions[name]:6.1%})"
            )
        if self.gc_triggers:
            caused = ", ".join(
                f"w{wid}: {row['work_items']} items/{row['writes']} writes"
                for wid, row in sorted(self.gc_triggers.items())
            )
            lines.append(f"  gc triggered by    {caused}")
        return "\n".join(lines)


def _new_row() -> dict[str, float]:
    row = {name: 0.0 for name in PHASE_NAMES}
    row["requests"] = 0.0
    row["latency_us"] = 0.0
    return row


class AttributionCollector:
    """Opt-in sink for per-request phase decompositions.

    Parameters
    ----------
    tolerance_us:
        Maximum allowed |phase sum - recorded latency| per request.
    keep_records:
        Keep every :class:`RequestAttribution` on :attr:`records`
        (the default; tests and the bench harness read them).  ``False``
        keeps only the aggregates, for very long runs.
    trace:
        Optional :class:`~repro.obs.trace.TraceRecorder`; when attached,
        each record emits per-phase Chrome-trace spans on the tenant's
        track (category ``attr``).
    """

    def __init__(
        self,
        *,
        tolerance_us: float = 1e-6,
        keep_records: bool = True,
        trace=None,
    ) -> None:
        if tolerance_us <= 0:
            raise ValueError("tolerance_us must be positive")
        self.tolerance_us = tolerance_us
        self.trace = trace if trace is not None and trace.enabled else None
        #: optional :class:`repro.analysis.Sanitizer`; when attached, the
        #: exact-sum check routes through it (counted, trace-correlated)
        self.sanitizer = None
        self.records: list[RequestAttribution] | None = (
            [] if keep_records else None
        )
        self.requests = 0
        self.total_latency_us = 0.0
        self._phase_totals_us = {name: 0.0 for name in PHASE_NAMES}
        self._per_tenant: dict[int, dict[str, float]] = {}
        self._per_channel: dict[int, dict[str, float]] = {}
        #: workload id -> {"writes", "work_items"}: GC work charged on
        #: behalf of that tenant's writes (the *cause* side of gc_stall)
        self.gc_triggers: dict[int, dict[str, int]] = {}
        #: channel -> {"blocks", "moves", "retired"}: reclaim activity on
        #: that channel's planes (the *payer* side)
        self.gc_reclaims: dict[int, dict[str, int]] = {}

    # ------------------------------------------------------------------
    def span(self, channel: int, die: int = -1) -> SubrequestSpan:
        """New timeline builder for one dispatched page."""
        return SubrequestSpan(channel, die)

    # ------------------------------------------------------------------
    def note_gc_trigger(self, workload_id: int, work_items: int) -> None:
        """One host write charged ``work_items`` internal work items."""
        row = self.gc_triggers.get(workload_id)
        if row is None:
            row = self.gc_triggers[workload_id] = {"writes": 0, "work_items": 0}
        row["writes"] += 1
        row["work_items"] += work_items

    def note_gc_reclaim(
        self, channel: int, moves: int, retired: bool
    ) -> None:
        """One block reclaimed (or retired) on ``channel``'s planes."""
        row = self.gc_reclaims.get(channel)
        if row is None:
            row = self.gc_reclaims[channel] = {
                "blocks": 0, "moves": 0, "retired": 0,
            }
        row["blocks"] += 1
        row["moves"] += moves
        if retired:
            row["retired"] += 1

    # ------------------------------------------------------------------
    def record(self, request, span: SubrequestSpan) -> RequestAttribution:
        """Fold one completed request's critical-path span into the sums.

        Validates the exact-sum identity before aggregating; raises
        :class:`AttributionError` (or fails the attached sanitizer) when
        the phases do not reproduce the recorded latency.
        """
        rec = RequestAttribution(
            request.workload_id,
            "read" if request.is_read else "write",
            span.channel,
            request.latency_us,
            die=span.die,
            arrival_us=request.arrival_us,
            complete_us=request.complete_us,
            queue_channel_us=span.bus_wait_us,
            queue_die_us=span.die_wait_us,
            gc_stall_us=span.gc_stall_us,
            bus_us=span.bus_us,
            die_us=span.die_us,
            ecc_retry_us=span.ecc_retry_us,
            buffer_us=span.buffer_us,
        )
        self._validate(rec)
        self.requests += 1
        self.total_latency_us += rec.latency_us
        totals = self._phase_totals_us
        tenant = self._per_tenant.get(rec.workload_id)
        if tenant is None:
            tenant = self._per_tenant[rec.workload_id] = _new_row()
        chan = self._per_channel.get(rec.channel)
        if chan is None:
            chan = self._per_channel[rec.channel] = _new_row()
        for name in PHASE_NAMES:
            value = getattr(rec, name)
            totals[name] += value
            tenant[name] += value
            chan[name] += value
        tenant["requests"] += 1
        tenant["latency_us"] += rec.latency_us
        chan["requests"] += 1
        chan["latency_us"] += rec.latency_us
        if self.records is not None:
            self.records.append(rec)
        if self.trace is not None:
            self._emit_spans(request, span, rec)
        return rec

    def _validate(self, rec: RequestAttribution) -> None:
        total_us = rec.phase_sum_us()
        if self.sanitizer is not None:
            self.sanitizer.on_attribution(
                rec.workload_id, rec.op, total_us, rec.latency_us,
                self.tolerance_us,
            )
            return
        gap_us = total_us - rec.latency_us
        if gap_us > self.tolerance_us or gap_us < -self.tolerance_us:
            raise AttributionError(
                f"w{rec.workload_id} {rec.op}: phases sum to {total_us!r}us "
                f"but the recorded latency is {rec.latency_us!r}us "
                f"(gap {gap_us:g}, tolerance {self.tolerance_us:g}): "
                f"{rec.phases()}"
            )

    # ------------------------------------------------------------------
    def _emit_spans(
        self, request, span: SubrequestSpan, rec: RequestAttribution
    ) -> None:
        """Chrome-trace spans for one request's critical path (Perfetto)."""
        tr = self.trace
        track = f"w{rec.workload_id}"
        args = {"op": rec.op, "lpn": request.lpn, "channel": rec.channel}
        tr.emit(
            request.arrival_us, "req_span", track, "attr",
            dur_us=rec.latency_us, args=args,
        )
        if span.buffer_us:
            tr.emit(
                request.arrival_us, "req_dram", track, "attr",
                dur_us=span.buffer_us,
            )
            return
        wait_die_us = span.die_grant_us - span.die_enq_us
        if wait_die_us > 0:
            tr.emit(
                span.die_enq_us, "req_wait_die", track, "attr",
                dur_us=wait_die_us,
                args={"gc_stall_us": span.gc_stall_us} if span.gc_stall_us else None,
            )
        tr.emit(
            span.die_grant_us, "req_die", track, "attr",
            dur_us=span.die_us + span.ecc_retry_us,
            args={"ecc_retry_us": span.ecc_retry_us} if span.ecc_retry_us else None,
        )
        if span.bus_wait_us > 0:
            tr.emit(
                span.bus_enq_us, "req_wait_bus", track, "attr",
                dur_us=span.bus_wait_us,
            )
        tr.emit(span.bus_grant_us, "req_bus", track, "attr", dur_us=span.bus_us)

    # ------------------------------------------------------------------
    def breakdown(self) -> LatencyBreakdown:
        """Immutable aggregate snapshot (attached to the result)."""
        phase_totals_us = {**self._phase_totals_us}
        return LatencyBreakdown(
            requests=self.requests,
            total_latency_us=self.total_latency_us,
            phase_totals_us=phase_totals_us,
            per_tenant={wid: dict(r) for wid, r in self._per_tenant.items()},
            per_channel={ch: dict(r) for ch, r in self._per_channel.items()},
            gc_triggers={wid: dict(r) for wid, r in self.gc_triggers.items()},
            gc_reclaims={ch: dict(r) for ch, r in self.gc_reclaims.items()},
        )
