"""Chrome trace format exporter.

Converts recorded :class:`~repro.obs.trace.TraceEvent` streams into the
JSON the ``chrome://tracing`` viewer and Perfetto load: a top-level
``{"traceEvents": [...]}`` object whose entries use the Trace Event
Format (``ph`` = ``"X"`` complete events for spans with a known
duration, ``"i"`` instant events otherwise).

Tracks map onto the viewer's process/thread rows with readable names:
host activity (the ``host`` track and per-tenant ``w<N>`` tracks) lives
in a **host** process, channel buses in a **channels** process, dies in
a **dies** process, and everything else (GC, keeper, sim internals) in
a **sim** process.  ``process_name`` / ``process_sort_index`` /
``thread_name`` metadata records label every row — Perfetto shows
"tenant 0" and "channel 3", not bare pids and tids.  Timestamps are
already in microseconds — exactly the unit the format expects.

Multi-device exports namespace pids per device: passing ``device=N`` to
:func:`to_chrome_trace` shifts every pid by a per-device stride and
prefixes process names (``device 0 / channels``), so two devices'
channel rows never collide on pid when merged into one file.
:func:`to_fleet_chrome_trace` merges per-device streams plus an optional
fleet-level stream (migration spans, fleet SLO alerts) into one
document — Perfetto then shows one process group per device.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping

from .trace import TraceEvent

__all__ = [
    "to_chrome_trace",
    "to_diff_chrome_trace",
    "to_fleet_chrome_trace",
    "write_chrome_trace",
    "write_diff_chrome_trace",
    "write_fleet_chrome_trace",
]

#: track-prefix -> (pid, process name, thread-name template); matched in
#: order, first hit wins ("host" before "w" keeps "host" out of "w*").
_GROUPS = (
    ("host", 1, "host", "host"),
    ("w", 1, "host", "tenant {n}"),
    ("ch", 2, "channels", "channel {n}"),
    ("die", 3, "dies", "die {n}"),
)
_FALLBACK_PID = 4
_FALLBACK_PROCESS = "sim"

#: pid distance between consecutive devices in a merged trace; device
#: ``d`` occupies pids ``(d + 1) * stride + 1 .. + 4``, leaving the
#: un-namespaced pids 1..4 (solo exports) and the fleet pid untouched.
_DEVICE_PID_STRIDE = 10

#: process id of the fleet-level row group in merged traces
_FLEET_PID = 1


def _classify(track: str) -> tuple[int, str, str]:
    """(pid, process name, readable thread name) for one track."""
    for prefix, pid, process, template in _GROUPS:
        if track.startswith(prefix):
            suffix = track[len(prefix):]
            if suffix == "" or suffix.isdigit():
                return pid, process, template.format(n=suffix)
    return _FALLBACK_PID, _FALLBACK_PROCESS, track


def _track_order(track: str) -> tuple:
    """Stable, human-friendly row order: host, tenants, channels, dies, rest."""
    for rank, (prefix, _pid, _process, _template) in enumerate(_GROUPS):
        if track.startswith(prefix):
            suffix = track[len(prefix):]
            num = int(suffix) if suffix.isdigit() else 0
            return (rank, num, track)
    return (len(_GROUPS), 0, track)


def _process_meta(pid: int, process: str) -> list[dict]:
    return [
        {
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process},
        },
        {
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "name": "process_sort_index",
            "args": {"sort_index": pid},
        },
    ]


def _event_record(e: TraceEvent, pid: int, tid: int) -> dict:
    record = {
        "name": e.name,
        "cat": e.cat,
        "pid": pid,
        "tid": tid,
        "ts": e.ts_us,
    }
    if e.args:
        record["args"] = e.args
    if e.dur_us is not None:
        record["ph"] = "X"
        record["dur"] = e.dur_us
    else:
        record["ph"] = "i"
        record["s"] = "t"  # instant scoped to its thread row
    return record


def _trace_records(
    events: list[TraceEvent], *, device: int | None = None
) -> list[dict]:
    """Metadata + event records for one device's stream.

    ``device`` namespaces pids (per-device stride) and prefixes process
    names so multiple devices coexist in one trace file; ``None`` keeps
    the classic solo pids 1..4.
    """
    pid_offset = 0
    name_prefix = ""
    if device is not None:
        if device < 0:
            raise ValueError("device must be non-negative")
        pid_offset = (device + 1) * _DEVICE_PID_STRIDE
        name_prefix = f"device {device} / "
    tracks = sorted({e.track or "sim" for e in events}, key=_track_order)
    pids: dict[str, int] = {}
    names: dict[str, str] = {}
    tids: dict[str, int] = {}
    processes: dict[int, str] = {}
    next_tid: dict[int, int] = {}
    for track in tracks:
        pid, process, thread_name = _classify(track)
        pid += pid_offset
        pids[track] = pid
        names[track] = thread_name
        processes.setdefault(pid, name_prefix + process)
        tid = next_tid.get(pid, 0) + 1
        next_tid[pid] = tid
        tids[track] = tid

    out: list[dict] = []
    for pid, process in sorted(processes.items()):
        out.extend(_process_meta(pid, process))
    out.extend(
        {
            "ph": "M",
            "pid": pids[track],
            "tid": tid,
            "name": "thread_name",
            "args": {"name": names[track]},
        }
        for track, tid in tids.items()
    )
    out.extend(
        _event_record(e, pids[e.track or "sim"], tids[e.track or "sim"])
        for e in events
    )
    return out


def _grouped_records(
    events: list[TraceEvent], pid: int, process: str
) -> list[dict]:
    """One process row group holding every track of ``events`` as threads.

    Used for the fleet-level stream (migration spans, fleet alerts):
    tracks become thread rows named verbatim under a single process.
    """
    tracks = sorted({e.track or process for e in events}, key=_track_order)
    tids = {track: i + 1 for i, track in enumerate(tracks)}
    out = _process_meta(pid, process)
    out.extend(
        {
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": track},
        }
        for track, tid in tids.items()
    )
    out.extend(
        _event_record(e, pid, tids[e.track or process]) for e in events
    )
    return out


def to_chrome_trace(
    events: Iterable[TraceEvent], *, device: int | None = None
) -> dict:
    """Build the ``{"traceEvents": [...]}`` document (plain dict).

    ``device`` namespaces the pids for merged multi-device files; the
    default export is unchanged.
    """
    return {
        "traceEvents": _trace_records(list(events), device=device),
        "displayTimeUnit": "ms",
    }


def to_fleet_chrome_trace(
    device_events: Mapping[int, Iterable[TraceEvent]],
    *,
    fleet_events: Iterable[TraceEvent] | None = None,
) -> dict:
    """Merge per-device streams (plus a fleet stream) into one document.

    Each device's tracks occupy their own pid-namespaced process group
    (one row group per device in Perfetto); fleet-level events — the
    ``tenant_migration`` spans and ``fleet_slo_alert`` instants — sit in
    a dedicated ``fleet`` process at the top.
    """
    records: list[dict] = []
    if fleet_events is not None:
        fleet_list = list(fleet_events)
        if fleet_list:
            records.extend(_grouped_records(fleet_list, _FLEET_PID, "fleet"))
    for dev in sorted(device_events):
        records.extend(
            _trace_records(list(device_events[dev]), device=dev)
        )
    return {"traceEvents": records, "displayTimeUnit": "ms"}


def _coerce_events(events: Iterable) -> list[TraceEvent]:
    """Accept TraceEvent objects or their plain-dict form interchangeably.

    The diff comparators hand events around as dicts (the JSONL schema);
    the exporters want objects — accept both so a forensics bundle can be
    re-exported without a round-trip through ``read_jsonl``.
    """
    out = []
    for event in events:
        if isinstance(event, TraceEvent):
            out.append(event)
        else:
            out.append(
                TraceEvent(
                    event["ts_us"], event["name"], event.get("track", ""),
                    event.get("cat", "sim"), event.get("dur_us"),
                    event.get("args"),
                )
            )
    return out


def to_diff_chrome_trace(
    events_a: Iterable,
    events_b: Iterable,
    *,
    first_divergence: dict | None = None,
) -> dict:
    """Side-by-side diff trace: both runs plus divergence marker spans.

    Side A occupies the ``device 0`` pid namespace and side B ``device
    1``, so Perfetto shows the two runs as adjacent process groups over
    one shared time axis.  When ``first_divergence`` (the ``trace``
    section of a run-diff report) is given, a dedicated **diff** process
    at the top carries a ``first_divergence`` instant at the moment the
    histories forked and a ``divergent_region`` span covering everything
    after it — scroll to the marker, read the two rows below it.
    """
    a = _coerce_events(events_a)
    b = _coerce_events(events_b)
    records: list[dict] = []
    markers: list[TraceEvent] = []
    if first_divergence is not None:
        ts_candidates = [
            first_divergence.get("time_us_a"),
            first_divergence.get("time_us_b"),
        ]
        ts = min((t for t in ts_candidates if t is not None), default=0.0)
        end = max((e.ts_us + (e.dur_us or 0.0) for e in a + b), default=ts)
        args = {
            key: first_divergence.get(key)
            for key in ("index", "kind", "tenant", "channel", "die")
        }
        markers.append(
            TraceEvent(ts, "first_divergence", "divergence", "diff",
                       None, args)
        )
        if end > ts:
            markers.append(
                TraceEvent(ts, "divergent_region", "divergence", "diff",
                           end - ts, args)
            )
    if markers:
        records.extend(_grouped_records(markers, _FLEET_PID, "diff"))
    records.extend(_trace_records(a, device=0))
    records.extend(_trace_records(b, device=1))
    return {"traceEvents": records, "displayTimeUnit": "ms"}


def write_diff_chrome_trace(
    events_a: Iterable,
    events_b: Iterable,
    path,
    *,
    first_divergence: dict | None = None,
) -> int:
    """Write the side-by-side diff trace; returns the record count."""
    doc = to_diff_chrome_trace(
        events_a, events_b, first_divergence=first_divergence
    )
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])


def write_chrome_trace(
    events: Iterable[TraceEvent], path, *, device: int | None = None
) -> int:
    """Write the Chrome-trace JSON to ``path``; returns the event count."""
    doc = to_chrome_trace(events, device=device)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])


def write_fleet_chrome_trace(
    device_events: Mapping[int, Iterable[TraceEvent]],
    path,
    *,
    fleet_events: Iterable[TraceEvent] | None = None,
) -> int:
    """Write a merged multi-device trace; returns the record count."""
    doc = to_fleet_chrome_trace(device_events, fleet_events=fleet_events)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])
