"""Chrome trace format exporter.

Converts recorded :class:`~repro.obs.trace.TraceEvent` streams into the
JSON the ``chrome://tracing`` viewer and Perfetto load: a top-level
``{"traceEvents": [...]}`` object whose entries use the Trace Event
Format (``ph`` = ``"X"`` complete events for spans with a known
duration, ``"i"`` instant events otherwise).

Tracks map onto the viewer's process/thread rows: everything shares one
``pid`` (the simulated device) and each track (``ch0``, ``die3``,
``host``, ``keeper``…) gets its own ``tid`` plus a ``thread_name``
metadata record so rows are labelled.  Timestamps are already in
microseconds — exactly the unit the format expects.
"""

from __future__ import annotations

import json
from typing import Iterable

from .trace import TraceEvent

__all__ = ["to_chrome_trace", "write_chrome_trace"]

_PID = 1


def _track_order(track: str) -> tuple:
    """Stable, human-friendly row order: host, channels, dies, rest."""
    for prefix, rank in (("host", 0), ("w", 1), ("ch", 2), ("die", 3)):
        if track.startswith(prefix):
            suffix = track[len(prefix):]
            num = int(suffix) if suffix.isdigit() else 0
            return (rank, num, track)
    return (4, 0, track)


def to_chrome_trace(events: Iterable[TraceEvent]) -> dict:
    """Build the ``{"traceEvents": [...]}`` document (plain dict)."""
    events = list(events)
    tracks = sorted({e.track or "sim" for e in events}, key=_track_order)
    tids = {track: i + 1 for i, track in enumerate(tracks)}

    out: list[dict] = [
        {
            "ph": "M",
            "pid": _PID,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": track},
        }
        for track, tid in tids.items()
    ]
    for e in events:
        record = {
            "name": e.name,
            "cat": e.cat,
            "pid": _PID,
            "tid": tids[e.track or "sim"],
            "ts": e.ts_us,
        }
        if e.args:
            record["args"] = e.args
        if e.dur_us is not None:
            record["ph"] = "X"
            record["dur"] = e.dur_us
        else:
            record["ph"] = "i"
            record["s"] = "t"  # instant scoped to its thread row
        out.append(record)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Iterable[TraceEvent], path) -> int:
    """Write the Chrome-trace JSON to ``path``; returns the event count."""
    doc = to_chrome_trace(events)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])
