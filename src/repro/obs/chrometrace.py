"""Chrome trace format exporter.

Converts recorded :class:`~repro.obs.trace.TraceEvent` streams into the
JSON the ``chrome://tracing`` viewer and Perfetto load: a top-level
``{"traceEvents": [...]}`` object whose entries use the Trace Event
Format (``ph`` = ``"X"`` complete events for spans with a known
duration, ``"i"`` instant events otherwise).

Tracks map onto the viewer's process/thread rows with readable names:
host activity (the ``host`` track and per-tenant ``w<N>`` tracks) lives
in a **host** process, channel buses in a **channels** process, dies in
a **dies** process, and everything else (GC, keeper, sim internals) in
a **sim** process.  ``process_name`` / ``process_sort_index`` /
``thread_name`` metadata records label every row — Perfetto shows
"tenant 0" and "channel 3", not bare pids and tids.  Timestamps are
already in microseconds — exactly the unit the format expects.
"""

from __future__ import annotations

import json
from typing import Iterable

from .trace import TraceEvent

__all__ = ["to_chrome_trace", "write_chrome_trace"]

#: track-prefix -> (pid, process name, thread-name template); matched in
#: order, first hit wins ("host" before "w" keeps "host" out of "w*").
_GROUPS = (
    ("host", 1, "host", "host"),
    ("w", 1, "host", "tenant {n}"),
    ("ch", 2, "channels", "channel {n}"),
    ("die", 3, "dies", "die {n}"),
)
_FALLBACK_PID = 4
_FALLBACK_PROCESS = "sim"


def _classify(track: str) -> tuple[int, str, str]:
    """(pid, process name, readable thread name) for one track."""
    for prefix, pid, process, template in _GROUPS:
        if track.startswith(prefix):
            suffix = track[len(prefix):]
            if suffix == "" or suffix.isdigit():
                return pid, process, template.format(n=suffix)
    return _FALLBACK_PID, _FALLBACK_PROCESS, track


def _track_order(track: str) -> tuple:
    """Stable, human-friendly row order: host, tenants, channels, dies, rest."""
    for rank, (prefix, _pid, _process, _template) in enumerate(_GROUPS):
        if track.startswith(prefix):
            suffix = track[len(prefix):]
            num = int(suffix) if suffix.isdigit() else 0
            return (rank, num, track)
    return (len(_GROUPS), 0, track)


def to_chrome_trace(events: Iterable[TraceEvent]) -> dict:
    """Build the ``{"traceEvents": [...]}`` document (plain dict)."""
    events = list(events)
    tracks = sorted({e.track or "sim" for e in events}, key=_track_order)
    pids: dict[str, int] = {}
    names: dict[str, str] = {}
    tids: dict[str, int] = {}
    processes: dict[int, str] = {}
    next_tid: dict[int, int] = {}
    for track in tracks:
        pid, process, thread_name = _classify(track)
        pids[track] = pid
        names[track] = thread_name
        processes.setdefault(pid, process)
        tid = next_tid.get(pid, 0) + 1
        next_tid[pid] = tid
        tids[track] = tid

    out: list[dict] = []
    for pid, process in sorted(processes.items()):
        out.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": process},
            }
        )
        out.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_sort_index",
                "args": {"sort_index": pid},
            }
        )
    out.extend(
        {
            "ph": "M",
            "pid": pids[track],
            "tid": tid,
            "name": "thread_name",
            "args": {"name": names[track]},
        }
        for track, tid in tids.items()
    )
    for e in events:
        track = e.track or "sim"
        record = {
            "name": e.name,
            "cat": e.cat,
            "pid": pids[track],
            "tid": tids[track],
            "ts": e.ts_us,
        }
        if e.args:
            record["args"] = e.args
        if e.dur_us is not None:
            record["ph"] = "X"
            record["dur"] = e.dur_us
        else:
            record["ph"] = "i"
            record["s"] = "t"  # instant scoped to its thread row
        out.append(record)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Iterable[TraceEvent], path) -> int:
    """Write the Chrome-trace JSON to ``path``; returns the event count."""
    doc = to_chrome_trace(events)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])
