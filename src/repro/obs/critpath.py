"""Critical-path extraction and bottleneck reporting.

PR 4's attribution decomposes every *request's* latency into exact-sum
phases; this module lifts that to the *run*: which resource bounds the
makespan?  Because the simulator is deterministic and every attribution
record carries the critical sub-request's full timeline (arrival,
completion, per-phase durations, the channel and die it occupied), the
run-level critical path can be reconstructed after the fact, with no
extra events and no new instrumentation cost:

1. start at the makespan and take the request whose completion defines
   it — its phases tile ``[arrival, completion]`` contiguously;
2. jump to that request's arrival and find the latest completion at or
   before it; the interval in between is an **arrival gap** (the chain
   was waiting on the host workload, not the device);
3. repeat until simulated time zero.

The chain provably tiles ``[0, makespan]``: every iteration covers a
contiguous interval ending at the current boundary and strictly moves
the boundary toward zero.  Each phase is charged to the resource that
caused it — queue waits and transfers to the channel bus (while a host
job queues, the bus is continuously busy with other work, so its
busyness *is* the delay), die waits/GC stalls/service to the die,
buffer hits to DRAM, arrival gaps to the host, and any simulated time
after the last host completion (trailing GC erases, background buffer
flushes) to ``internal``.  A ``residual`` bucket absorbs float-rounding
drift so the report always sums to the makespan *exactly*; the
``critpath-exact-sum`` invariant asserts that drift stays within
``tolerance_us`` — through the runtime
:class:`~repro.analysis.Sanitizer` when one is attached (counted as
``critpath_checks``), as a plain :class:`CritPathError` otherwise.

Like every pillar, extraction is a pure post-processing pass over the
:class:`~repro.obs.attribution.AttributionCollector`'s records: it
schedules no events and draws no randomness, so an explained run's
summary is byte-identical to an unexplained one.
"""

from __future__ import annotations

import math

from .attribution import RequestAttribution

__all__ = [
    "CRITPATH_SCHEMA_VERSION",
    "CritPathError",
    "PathStep",
    "BottleneckReport",
    "extract_critical_path",
    "load_report",
]

#: Bump when the report document layout changes shape.
CRITPATH_SCHEMA_VERSION = 1

#: top-level fields of BottleneckReport.to_dict (R007 round-trip
#: contract; flight-recorder bundles persist these documents)
_REPORT_FIELDS = frozenset({
    "schema_version", "makespan_us", "critical_requests", "host_gap_us",
    "internal_tail_us", "residual_us", "resources", "phase_totals_us",
    "ranked", "steps",
})


def load_report(doc: dict) -> dict:
    """Validate a persisted bottleneck report (round-trip reader).

    Flight-recorder bundles and explain documents embed these; refuse
    version mismatches and truncated documents before interpreting one.
    """
    if doc.get("schema_version") != CRITPATH_SCHEMA_VERSION:
        raise ValueError(
            f"critical-path report has schema_version "
            f"{doc.get('schema_version')!r}; this tool reads version "
            f"{CRITPATH_SCHEMA_VERSION}"
        )
    missing = _REPORT_FIELDS - set(doc)
    if missing:
        raise ValueError(
            f"critical-path report is missing fields: {sorted(missing)}"
        )
    return doc

#: float slack when matching completions against chain boundaries
_TIME_EPSILON_US = 1e-9

#: (phase name, resource kind, bucket) — which resource each phase of a
#: critical record is charged to and under which column
_PHASE_CHARGE = (
    ("queue_channel_us", "channel", "wait_us"),
    ("bus_us", "channel", "service_us"),
    ("queue_die_us", "die", "wait_us"),
    ("gc_stall_us", "die", "gc_us"),
    ("die_us", "die", "service_us"),
    ("ecc_retry_us", "die", "service_us"),
    ("buffer_us", "dram", "service_us"),
)

_BUCKETS = ("wait_us", "service_us", "gc_us")


class CritPathError(RuntimeError):
    """The extracted critical path failed to reproduce the makespan."""


class PathStep:
    """One link of the run-level critical chain (reporting aid)."""

    __slots__ = ("kind", "start_us", "end_us", "record")

    def __init__(
        self, kind: str, start_us: float, end_us: float,
        record: "RequestAttribution | None" = None,
    ) -> None:
        #: ``request`` (a critical record), ``arrival-gap`` (waiting on
        #: the host workload) or ``internal-tail`` (background work past
        #: the last host completion)
        self.kind = kind
        self.start_us = start_us
        self.end_us = end_us
        self.record = record

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    def to_dict(self) -> dict:
        out = {
            "kind": self.kind,
            "start_us": self.start_us,
            "end_us": self.end_us,
        }
        if self.record is not None:
            out["workload_id"] = self.record.workload_id
            out["op"] = self.record.op
            out["channel"] = self.record.channel
            out["die"] = self.record.die
        return out


def _new_row() -> dict[str, float]:
    return {name: 0.0 for name in _BUCKETS}


class BottleneckReport:
    """Per-resource on-critical-path time for one run.

    ``resources`` maps resource name (``ch3``, ``die5``, ``dram``,
    ``host``, ``internal``, ``residual``) to a row of summed
    microseconds (``wait_us`` / ``service_us`` / ``gc_us``); the rows'
    totals sum to :attr:`makespan_us` exactly (``residual`` absorbs
    float drift, asserted within tolerance by the extractor).
    """

    __slots__ = (
        "makespan_us", "resources", "phase_totals_us", "steps",
        "critical_requests", "host_gap_us", "internal_tail_us",
        "residual_us",
    )

    def __init__(
        self,
        makespan_us: float,
        resources: dict[str, dict[str, float]],
        phase_totals_us: dict[str, float],
        steps: list[PathStep],
        critical_requests: int,
        host_gap_us: float,
        internal_tail_us: float,
        residual_us: float,
    ) -> None:
        self.makespan_us = makespan_us
        self.resources = resources
        #: per-phase totals restricted to the critical chain
        self.phase_totals_us = phase_totals_us
        self.steps = steps
        self.critical_requests = critical_requests
        self.host_gap_us = host_gap_us
        self.internal_tail_us = internal_tail_us
        self.residual_us = residual_us

    # ------------------------------------------------------------------
    def resource_total_us(self, name: str) -> float:
        row = self.resources.get(name)
        if row is None:
            return 0.0
        return sum(bucket_us for bucket_us in row.values())

    def total_us(self) -> float:
        """Sum over every bucket; equals the makespan by construction."""
        device_us = math.fsum(  # repro-lint: disable=R001 (fsum over the *_us bucket rows)
            bucket_us
            for row in self.resources.values()
            for bucket_us in row.values()
        )
        return (
            device_us + self.host_gap_us + self.internal_tail_us
            + self.residual_us
        )

    def ranked(self) -> list[tuple[str, float]]:
        """(resource, on-critical-path us) pairs, heaviest first.

        Host gaps / internal tail / residual are included as
        pseudo-resources so the table accounts for the whole makespan.
        """
        rows = [
            (name, sum(row.values())) for name, row in self.resources.items()
        ]
        rows.append(("host", self.host_gap_us))
        rows.append(("internal", self.internal_tail_us))
        if self.residual_us:
            rows.append(("residual", self.residual_us))
        rows.sort(key=lambda item: (-item[1], item[0]))
        return [(name, value) for name, value in rows if value != 0.0]

    def bottleneck(self) -> str | None:
        """Name of the heaviest contributor, ``None`` on an empty run."""
        ranked = self.ranked()
        return ranked[0][0] if ranked else None

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema_version": CRITPATH_SCHEMA_VERSION,
            "makespan_us": self.makespan_us,
            "critical_requests": self.critical_requests,
            "host_gap_us": self.host_gap_us,
            "internal_tail_us": self.internal_tail_us,
            "residual_us": self.residual_us,
            "resources": {
                name: dict(row) for name, row in sorted(self.resources.items())
            },
            "phase_totals_us": {**self.phase_totals_us},
            "ranked": [
                {"resource": name, "critpath_us": critpath_us}
                for name, critpath_us in self.ranked()
            ],
            "steps": len(self.steps),
        }

    def format(self, top: int = 8) -> str:
        """Human-readable bottleneck table (embedded in ``repro explain``)."""
        makespan_us = self.makespan_us
        lines = [
            f"critical path over {self.critical_requests} requests "
            f"covering {makespan_us / 1e6:.3f}s makespan:"
        ]
        for name, value in self.ranked()[:top]:
            share = value / makespan_us if makespan_us > 0 else 0.0
            detail = ""
            row = self.resources.get(name)
            if row is not None:
                parts = [
                    f"{bucket[:-3]} {row[bucket]:.0f}"
                    for bucket in _BUCKETS if row[bucket] > 0.0
                ]
                if parts:
                    detail = f"  [{', '.join(parts)}]"
            lines.append(
                f"  {name:<10} {value:>14.1f} us  ({share:6.1%}){detail}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
def _resource_name(kind: str, rec: RequestAttribution) -> str:
    if kind == "channel":
        return "dram" if rec.channel < 0 else f"ch{rec.channel}"
    if kind == "die":
        return "dram" if rec.die < 0 else f"die{rec.die}"
    return "dram"


def _pick_completion(
    records: list[RequestAttribution], boundary_us: float
) -> RequestAttribution | None:
    """Latest-completing record at or before ``boundary_us``.

    Among records completing at the same instant the one with the
    earliest arrival wins (maximal chain coverage); further ties break
    deterministically on (workload, op, channel).
    """
    best = None
    best_key = None
    for rec in records:
        if rec.complete_us > boundary_us + _TIME_EPSILON_US:
            continue
        key = (-rec.complete_us, rec.arrival_us, rec.workload_id, rec.op,
               rec.channel)
        if best_key is None or key < best_key:
            best, best_key = rec, key
    return best


def extract_critical_path(
    records: list[RequestAttribution],
    makespan_us: float,
    *,
    tolerance_us: float = 1e-6,
    sanitizer=None,
    validate: bool = True,
) -> BottleneckReport:
    """Reconstruct the run-level critical path from attribution records.

    ``makespan_us`` is the run's final simulated time
    (:attr:`~repro.ssd.metrics.SimulationResult.makespan_us`); passing
    the simulated time of an *unfinished* run (flight-recorder dumps)
    also works — the chain then starts from the latest completion so far
    and the remainder lands in ``internal_tail_us``.

    ``validate=True`` asserts the ``critpath-exact-sum`` invariant: the
    chain's segments reproduce the makespan within ``tolerance_us`` —
    through ``sanitizer`` when one is attached, raising
    :class:`CritPathError` otherwise.
    """
    if tolerance_us <= 0:
        raise ValueError("tolerance_us must be positive")
    if makespan_us < 0:
        raise ValueError("makespan_us must be non-negative")
    resources: dict[str, dict[str, float]] = {}
    phase_totals_us = {phase: 0.0 for phase, _kind, _bucket in _PHASE_CHARGE}
    steps: list[PathStep] = []
    segment_values: list[float] = []
    host_gap_us = 0.0
    internal_tail_us = 0.0
    critical_requests = 0

    boundary_us = makespan_us
    while boundary_us > _TIME_EPSILON_US:
        rec = _pick_completion(records, boundary_us)
        if rec is None:
            # nothing completed before the boundary: the whole remainder
            # preceded the first critical arrival — host idle time
            host_gap_us += boundary_us
            segment_values.append(boundary_us)
            steps.append(PathStep("arrival-gap", 0.0, boundary_us))
            boundary_us = 0.0
            break
        if rec.complete_us < boundary_us - _TIME_EPSILON_US:
            # trailing simulated time past the last completion: internal
            # work (GC erases, background flushes) ran the clock out
            gap_us = boundary_us - rec.complete_us
            kind = "internal-tail" if not steps else "arrival-gap"
            if kind == "internal-tail":
                internal_tail_us += gap_us
            else:
                host_gap_us += gap_us
            segment_values.append(gap_us)
            steps.append(PathStep(kind, rec.complete_us, boundary_us))
            boundary_us = rec.complete_us
            continue
        # the record completing at the boundary: its phases tile
        # [arrival, complete] contiguously
        critical_requests += 1
        steps.append(
            PathStep("request", rec.arrival_us, rec.complete_us, rec)
        )
        for phase, kind, bucket in _PHASE_CHARGE:
            value = getattr(rec, phase)
            if value == 0.0:
                continue
            name = _resource_name(kind, rec)
            row = resources.get(name)
            if row is None:
                row = resources[name] = _new_row()
            row[bucket] += value
            phase_totals_us[phase] += value
            segment_values.append(value)
        if rec.arrival_us >= boundary_us:  # pragma: no cover - defensive
            # a zero-latency record cannot advance the chain; charge the
            # remainder to the residual check below and stop
            break
        boundary_us = rec.arrival_us

    covered_us = math.fsum(segment_values)  # repro-lint: disable=R001 (fsum over *_us segments)
    residual_us = makespan_us - covered_us
    steps.reverse()  # chronological order for consumers

    if validate:
        if sanitizer is not None:
            sanitizer.on_critpath(covered_us, makespan_us, tolerance_us)
        elif residual_us > tolerance_us or residual_us < -tolerance_us:
            raise CritPathError(
                f"critical-path segments sum to {covered_us!r}us but the "
                f"run makespan is {makespan_us!r}us (gap {-residual_us:g}, "
                f"tolerance {tolerance_us:g})"
            )

    return BottleneckReport(
        makespan_us=makespan_us,
        resources=resources,
        phase_totals_us=phase_totals_us,
        steps=steps,
        critical_requests=critical_requests,
        host_gap_us=host_gap_us,
        internal_tail_us=internal_tail_us,
        residual_us=residual_us,
    )
