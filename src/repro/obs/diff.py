"""Differential forensics: compare two runs, benches, or critical paths.

Every earlier pillar can *detect* a change — the bench compare exits 1
on a regression, the byte-identity integration tests fail on a behaviour
drift — but nothing *localizes* it: which scenario, which latency phase,
which resource, which simulated event moved first.  This module is the
differential layer over the artifacts the repo already produces
(``BENCH_*.json`` documents, attribution breakdowns, trace streams,
:class:`~repro.obs.critpath.BottleneckReport` documents, fleet reports).
EagleTree's position — SSD-algorithm results are only trustworthy when
competing runs are instrumented and compared under identical traces —
is the design brief: every comparator here takes two artifacts of the
same kind and emits a deterministic, schema-versioned delta document.

Four comparators, one report schema:

* :func:`diff_bench_docs` — per-scenario wall-clock and simulated-metric
  deltas between two bench documents, each classified direction-aware
  (``improved`` / ``regressed`` / ``neutral`` under the bench suite's
  existing wall-clock noise floor) plus an **attribution-delta
  waterfall**: which latency phase (queue/gc_stall/bus/die/ecc/buffer)
  the moved time went into, heaviest shift first;
* :func:`diff_traces` — positional alignment of two event streams with
  the **first divergent event** (simulated time, event kind, tenant,
  channel, die) and downstream divergence counts, so a failed
  byte-identity assertion comes with the exact moment histories forked;
* :func:`diff_critpath_docs` — two bottleneck reports aligned by
  resource bucket, ranked by how much each resource's on-critical-path
  time shifted;
* :func:`diff_fleet_devices` — two device entries of a fleet report
  compared with the same metric classifier, so device-vs-device drift
  inside one fleet run is diffable with the same vocabulary.

:func:`diff_run` composes the middle two: it re-simulates one seeded
request trace under two configurations (the same exact-re-execution
trick the what-if engine uses) with tracing and attribution armed, and
reports metric deltas, the first divergent trace event, and the
critical-path shift in one document.  Diffing a run against itself is
provably empty — the simulator is deterministic, so identical inputs
produce identical streams — which turns the report into a CI-grade
assertion: zero divergences or a localized forensic lead, never noise.

All report documents are **byte-deterministic**: no wall-clock stamps,
no set iteration, sorted keys at serialisation time.  Two invocations
over the same inputs produce identical bytes (asserted in CI).
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "DIFF_SCHEMA_VERSION",
    "DiffError",
    "build_diff_report",
    "load_diff",
    "write_diff",
    "diff_bench_docs",
    "diff_traces",
    "diff_critpath_docs",
    "diff_fleet_devices",
    "diff_run",
    "phase_waterfall",
]

#: Bump when the report document layout changes shape.
DIFF_SCHEMA_VERSION = 1

#: top-level fields of every diff report (R007 round-trip contract —
#: :func:`build_diff_report` writes them, :func:`load_diff` checks them)
_DIFF_FIELDS = frozenset({
    "schema_version", "kind", "label_a", "label_b", "identical",
    "divergences", "regressions", "sections",
})

#: report kinds the CLI and the loaders accept
_DIFF_KINDS = frozenset({"bench", "run", "trace", "critpath", "fleet",
                         "flight"})

#: metrics that regress when they grow (latencies, failure counts)
_LOWER_BETTER_METRICS = frozenset({
    "wall_s", "sim_mean_read_us", "sim_mean_write_us",
    "sim_total_latency_us", "total_latency_us", "makespan_us",
    "mean_read_us", "mean_write_us", "read_mean_us", "read_p95_us",
    "write_mean_us", "write_p95_us", "failed_reads",
})

#: metrics that regress when they shrink (throughput)
_HIGHER_BETTER_METRICS = frozenset({"requests_per_s"})


def _direction(metric: str) -> str | None:
    """Regression direction of ``metric``; ``None`` is informational
    (classified ``changed``, never ``regressed``/``improved``)."""
    if metric in _LOWER_BETTER_METRICS:
        return "lower"
    if metric in _HIGHER_BETTER_METRICS:
        return "higher"
    return None

#: wall-clock metrics are classified ``neutral`` whenever both runs sat
#: under the bench suite's noise floor, mirroring its compare()
_WALL_METRICS = frozenset({"wall_s", "requests_per_s"})


class DiffError(ValueError):
    """Inputs cannot be diffed (truncated stream, mismatched artifact)."""


# ----------------------------------------------------------------------
# Report document plumbing
# ----------------------------------------------------------------------
def build_diff_report(
    kind: str, label_a: str, label_b: str, sections: dict,
) -> dict:
    """Assemble the schema-versioned ``diff_report.json`` document.

    ``sections`` maps section name to a comparator's output; the
    top-level ``identical`` / ``divergences`` / ``regressions`` roll-ups
    aggregate over every section so consumers (and exit codes) need not
    know which comparators ran.
    """
    if kind not in _DIFF_KINDS:
        raise ValueError(
            f"unknown diff kind {kind!r}; expected one of "
            f"{', '.join(sorted(_DIFF_KINDS))}"
        )
    if not sections:
        raise ValueError("a diff report needs at least one section")
    return {
        "schema_version": DIFF_SCHEMA_VERSION,
        "kind": kind,
        "label_a": label_a,
        "label_b": label_b,
        "identical": all(s.get("identical", False) for s in sections.values()),
        "divergences": sum(s.get("divergences", 0) for s in sections.values()),
        "regressions": sum(s.get("regressions", 0) for s in sections.values()),
        "sections": dict(sections),
    }


def load_diff(doc: dict, *, side: str = "diff") -> dict:
    """Validate a diff report produced by :func:`build_diff_report`.

    The round-trip reader for the diff schema: refuses version
    mismatches, truncated documents, unknown kinds, and empty section
    maps, so forensics tooling never interprets half a report.
    """
    if doc.get("schema_version") != DIFF_SCHEMA_VERSION:
        raise ValueError(
            f"{side} report has schema_version "
            f"{doc.get('schema_version')!r}; this tool expects "
            f"{DIFF_SCHEMA_VERSION}"
        )
    missing = _DIFF_FIELDS - set(doc)
    if missing:
        raise ValueError(f"{side} report is missing fields: {sorted(missing)}")
    if doc["kind"] not in _DIFF_KINDS:
        raise ValueError(f"{side} report has unknown kind {doc['kind']!r}")
    if not isinstance(doc["sections"], dict) or not doc["sections"]:
        raise ValueError(f"{side} report has no sections")
    return doc


def write_diff(doc: dict, path) -> Path:
    """Serialise a validated report deterministically (sorted keys)."""
    load_diff(doc)
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


# ----------------------------------------------------------------------
# Metric delta classification
# ----------------------------------------------------------------------
def _metric_delta(
    metric: str, a, b, *, tolerance_pct: float = 0.0,
    below_floor: bool = False,
) -> dict:
    """One metric's delta cell with a direction-aware classification."""
    delta = b - a
    delta_pct = (delta / a * 100.0) if a else None
    direction = _direction(metric)
    if delta == 0:
        classification = "neutral"
    elif below_floor and metric in _WALL_METRICS:
        classification = "neutral"
    elif delta_pct is not None and abs(delta_pct) <= tolerance_pct:
        classification = "neutral"
    elif direction is None:
        classification = "changed"
    elif (delta > 0) == (direction == "lower"):
        classification = "regressed"
    else:
        classification = "improved"
    return {
        "a": a,
        "b": b,
        "delta": delta,
        "delta_pct": delta_pct,
        "classification": classification,
    }


def _metric_table(
    metrics_a: dict, metrics_b: dict, *, wall_tolerance_pct: float = 0.0,
    below_floor: bool = False,
) -> dict:
    """Delta cells for every numeric metric present on both sides."""
    out: dict = {}
    for metric in sorted(set(metrics_a) & set(metrics_b)):
        a, b = metrics_a[metric], metrics_b[metric]
        if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
            continue
        tolerance = wall_tolerance_pct if metric in _WALL_METRICS else 0.0
        out[metric] = _metric_delta(
            metric, a, b, tolerance_pct=tolerance, below_floor=below_floor,
        )
    return out


def _tally(cells: dict) -> tuple[int, int, int]:
    """(divergences, regressions, improvements) over a cell table."""
    divergences = sum(
        1 for cell in cells.values() if cell["classification"] != "neutral"
    )
    regressions = sum(
        1 for cell in cells.values() if cell["classification"] == "regressed"
    )
    improvements = sum(
        1 for cell in cells.values() if cell["classification"] == "improved"
    )
    return divergences, regressions, improvements


def phase_waterfall(phases_a: dict, phases_b: dict) -> list[dict]:
    """Attribution-delta waterfall: which phase the moved time went into.

    Each row carries both sides' totals, the delta, and the share of the
    total absolute shift this phase accounts for; rows are ranked
    heaviest |delta| first (ties by phase name) so the first row answers
    "where did the time go".
    """
    names = sorted(set(phases_a) | set(phases_b))
    rows = []
    for name in names:
        a_us = float(phases_a.get(name, 0.0))  # repro-lint: disable=R001 (phase totals are microseconds by the attribution contract)
        b_us = float(phases_b.get(name, 0.0))  # repro-lint: disable=R001 (phase totals are microseconds by the attribution contract)
        rows.append({
            "phase": name,
            "a_us": a_us,
            "b_us": b_us,
            "delta_us": b_us - a_us,
        })
    total_shift_us = sum(abs(row["delta_us"]) for row in rows)
    for row in rows:
        row["share"] = (
            abs(row["delta_us"]) / total_shift_us if total_shift_us else 0.0
        )
    rows.sort(key=lambda row: (-abs(row["delta_us"]), row["phase"]))
    return rows


# ----------------------------------------------------------------------
# Bench diff
# ----------------------------------------------------------------------
def diff_bench_docs(
    doc_a: dict, doc_b: dict, *, wall_tolerance_pct: float = 10.0,
) -> dict:
    """Per-scenario deltas between two validated bench documents.

    Wall-clock metrics are classified with ``wall_tolerance_pct`` slack
    (hosts are noisy) and go ``neutral`` outright when both runs sat
    under the bench suite's noise floor; simulated metrics are
    deterministic, so *any* delta is a divergence.  Raises
    ``ValueError`` for structurally incomparable documents (schema or
    quick/full mismatch), exactly like the bench compare.
    """
    from ..harness.bench import _WALL_NOISE_FLOOR_S, load_bench

    for doc, side in ((doc_a, "a"), (doc_b, "b")):
        load_bench(doc, side=side)
    if bool(doc_a.get("quick")) != bool(doc_b.get("quick")):
        raise ValueError(
            "cannot diff a --quick run against a full-size one "
            "(request counts differ)"
        )
    scen_a = doc_a.get("scenarios", {})
    scen_b = doc_b.get("scenarios", {})
    scenarios: dict = {}
    divergences = regressions = improvements = 0
    for name in sorted(set(scen_a) & set(scen_b)):
        entry_a, entry_b = scen_a[name], scen_b[name]
        metrics_a = entry_a.get("metrics", {})
        metrics_b = entry_b.get("metrics", {})
        below_floor = (
            max(metrics_a.get("wall_s") or 0.0, metrics_b.get("wall_s") or 0.0)
            < _WALL_NOISE_FLOOR_S
        )
        cells = _metric_table(
            metrics_a, metrics_b,
            wall_tolerance_pct=wall_tolerance_pct, below_floor=below_floor,
        )
        entry: dict = {"metrics": cells}
        attr_a = entry_a.get("attribution")
        attr_b = entry_b.get("attribution")
        if attr_a is not None and attr_b is not None:
            entry["waterfall"] = phase_waterfall(
                attr_a.get("phase_totals_us", {}),
                attr_b.get("phase_totals_us", {}),
            )
        div, reg, imp = _tally(cells)
        entry["divergences"] = div
        entry["regressions"] = reg
        entry["improvements"] = imp
        divergences += div
        regressions += reg
        improvements += imp
        scenarios[name] = entry
    return {
        "identical": divergences == 0,
        "divergences": divergences,
        "regressions": regressions,
        "improvements": improvements,
        "scenarios": scenarios,
        "only_in_a": sorted(set(scen_a) - set(scen_b)),
        "only_in_b": sorted(set(scen_b) - set(scen_a)),
    }


# ----------------------------------------------------------------------
# Trace diff
# ----------------------------------------------------------------------
def _event_dict(event) -> dict:
    """Comparable plain form of a TraceEvent (or an already-plain dict)."""
    if isinstance(event, dict):
        return event
    return event.to_dict()


def _event_actor(record: dict) -> dict:
    """Best-effort (tenant, channel, die) extraction from one event.

    Tenants ride on ``w<N>`` tracks or ``wid`` args; channels on
    ``ch<N>`` tracks; dies on ``die<N>`` tracks or ``die`` args — the
    naming the simulator and chrometrace classifier already share.
    """
    out: dict = {"tenant": None, "channel": None, "die": None}
    track = record.get("track") or ""
    args = record.get("args") or {}
    for prefix, key in (("w", "tenant"), ("ch", "channel"), ("die", "die")):
        suffix = track[len(prefix):]
        if track.startswith(prefix) and suffix.isdigit():
            out[key] = int(suffix)
            break
    if out["tenant"] is None and isinstance(args.get("wid"), int):
        out["tenant"] = args["wid"]
    if out["die"] is None:
        die = args.get("die")
        if isinstance(die, str) and die.startswith("die") and die[3:].isdigit():
            out["die"] = int(die[3:])
    return out


def diff_traces(events_a, events_b) -> dict:
    """Positionally align two event streams; localize the first fork.

    Streams are compared event-by-event on the full record (timestamp,
    name, track, category, duration, args): the simulator is
    deterministic, so identical histories produce identical streams and
    the first mismatched position *is* the first behavioural divergence.
    Everything after it is summarised as downstream counts — once two
    histories fork, later mismatches are consequences, not causes.
    """
    a = [_event_dict(e) for e in events_a]
    b = [_event_dict(e) for e in events_b]
    compared = min(len(a), len(b))
    first_index = None
    for i in range(compared):
        if a[i] != b[i]:
            first_index = i
            break
    if first_index is None and len(a) != len(b):
        # one stream is a strict prefix of the other: the divergence is
        # the first event the shorter side never emitted
        first_index = compared
    divergent = 0
    if first_index is not None:
        for i in range(first_index, compared):
            if a[i] != b[i]:
                divergent += 1
        divergent += abs(len(a) - len(b))
    first = None
    if first_index is not None:
        rec_a = a[first_index] if first_index < len(a) else None
        rec_b = b[first_index] if first_index < len(b) else None
        present = rec_a if rec_a is not None else rec_b
        kind_a = rec_a["name"] if rec_a else None
        kind_b = rec_b["name"] if rec_b else None
        first = {
            "index": first_index,
            "time_us_a": rec_a["ts_us"] if rec_a else None,
            "time_us_b": rec_b["ts_us"] if rec_b else None,
            "kind": kind_a if kind_a == kind_b else f"{kind_a}->{kind_b}",
            **_event_actor(present),
            "a": rec_a,
            "b": rec_b,
        }
    return {
        "identical": first_index is None,
        "divergences": divergent,
        "regressions": 0,
        "events_a": len(a),
        "events_b": len(b),
        "compared": compared,
        "divergent_events": divergent,
        "first_divergence": first,
    }


# ----------------------------------------------------------------------
# Critical-path diff
# ----------------------------------------------------------------------
def diff_critpath_docs(doc_a: dict, doc_b: dict) -> dict:
    """Align two bottleneck reports by resource bucket; rank the shifts.

    Both documents are validated with the critpath round-trip reader.
    Each resource's total on-critical-path time (device buckets plus the
    ``host`` / ``internal`` / ``residual`` pseudo-resources) is compared;
    the ranked ``shifts`` table answers "which resource's share of the
    makespan moved most", which is the resource-level form of "where did
    the regression go".
    """
    from .critpath import load_report

    for doc in (doc_a, doc_b):
        load_report(doc)
    totals: dict[str, list[float]] = {}
    for slot, doc in ((0, doc_a), (1, doc_b)):
        for name, row in doc["resources"].items():
            totals.setdefault(name, [0.0, 0.0])[slot] = sum(row.values())
        totals.setdefault("host", [0.0, 0.0])[slot] = doc["host_gap_us"]
        totals.setdefault("internal", [0.0, 0.0])[slot] = (
            doc["internal_tail_us"]
        )
        totals.setdefault("residual", [0.0, 0.0])[slot] = doc["residual_us"]
    device_resources = set(doc_a["resources"]) | set(doc_b["resources"])
    shifts = [
        {"resource": name, "a_us": a_us, "b_us": b_us,
         "delta_us": b_us - a_us}
        for name, (a_us, b_us) in totals.items()
    ]
    shifts.sort(key=lambda row: (-abs(row["delta_us"]), row["resource"]))
    moved = [row for row in shifts if row["delta_us"] != 0.0]
    moved_device = [
        row for row in moved if row["resource"] in device_resources
    ]
    ranked_a = doc_a.get("ranked") or []
    ranked_b = doc_b.get("ranked") or []
    makespan = _metric_delta(
        "makespan_us", doc_a["makespan_us"], doc_b["makespan_us"]
    )
    return {
        "identical": not moved and makespan["delta"] == 0,
        "divergences": len(moved),
        "regressions": 1 if makespan["classification"] == "regressed" else 0,
        "makespan": makespan,
        "bottleneck_a": ranked_a[0]["resource"] if ranked_a else None,
        "bottleneck_b": ranked_b[0]["resource"] if ranked_b else None,
        "top_shift": moved[0]["resource"] if moved else None,
        # heaviest shift among actual device resources (channels/dies/
        # DRAM), ignoring the host/internal/residual pseudo-buckets —
        # the answer to "which hardware resource moved"
        "top_resource_shift": (
            moved_device[0]["resource"] if moved_device else None
        ),
        "shifts": shifts,
    }


# ----------------------------------------------------------------------
# Fleet device diff
# ----------------------------------------------------------------------
#: per-device fleet-report fields the comparator reads as metrics
_FLEET_DEVICE_METRICS = (
    "requests", "subrequests", "failed_reads", "makespan_us",
    "total_latency_us", "gc_collections", "gc_pages_moved",
)


def diff_fleet_devices(doc: dict, device_a: int, device_b: int) -> dict:
    """Compare two device entries of one validated fleet report.

    Feeds the fleet loader's per-device sections through the same metric
    classifier the bench diff uses, plus mean/p95 read and write
    latencies and (when the report carries a rollup) the two devices'
    health scores — device-vs-device drift in the bench-diff vocabulary.
    """
    from .fleet import load_fleet

    load_fleet(doc)
    by_device = {entry["device"]: entry for entry in doc["devices"]}
    for device in (device_a, device_b):
        if device not in by_device:
            raise DiffError(
                f"fleet report has no device {device}; devices: "
                f"{sorted(by_device)}"
            )
    entry_a, entry_b = by_device[device_a], by_device[device_b]
    metrics_a = {m: entry_a[m] for m in _FLEET_DEVICE_METRICS if m in entry_a}
    metrics_b = {m: entry_b[m] for m in _FLEET_DEVICE_METRICS if m in entry_b}
    for op in ("read", "write"):
        for stat in ("mean_us", "p95_us"):
            a_stats = entry_a.get(op) or {}
            b_stats = entry_b.get(op) or {}
            if stat in a_stats and stat in b_stats:
                # classified lower-better like every latency metric
                metrics_a[f"{op}_{stat}"] = a_stats[stat]
                metrics_b[f"{op}_{stat}"] = b_stats[stat]
    cells = _metric_table(metrics_a, metrics_b)
    divergences, regressions, improvements = _tally(cells)
    health = None
    rollup = doc.get("rollup") or {}
    scores = rollup.get("health") or {}
    if str(device_a) in scores and str(device_b) in scores:
        health = {
            "a": scores[str(device_a)],
            "b": scores[str(device_b)],
            "delta": scores[str(device_b)] - scores[str(device_a)],
        }
    return {
        "identical": divergences == 0,
        "divergences": divergences,
        "regressions": regressions,
        "improvements": improvements,
        "device_a": device_a,
        "device_b": device_b,
        "metrics": cells,
        "health": health,
    }


# ----------------------------------------------------------------------
# Run diff (exact re-simulation under two configurations)
# ----------------------------------------------------------------------
#: ``read_latency`` scales die occupancy, so a shifted die bucket names
#: it, and so on — the knob/resource correspondence the integration test
#: cross-checks against the what-if sweep.
_RUN_METRICS = (
    "total_latency_us", "makespan_us", "mean_read_us", "mean_write_us",
)


def _reset(requests) -> None:
    # completion stamps are the only state a run leaves on the trace
    for request in requests:
        request.complete_us = -1.0


def _observed_run(requests, cfg, sets, faults, trace_capacity: int):
    """One fully-observed simulation: result, event dicts, critpath doc."""
    from ..ssd.simulator import simulate  # lazy: obs must not import ssd at module load
    from . import Observability
    from .attribution import AttributionCollector
    from .critpath import extract_critical_path
    from .trace import TraceRecorder

    recorder = TraceRecorder(capacity=trace_capacity)
    collector = AttributionCollector()
    observed = Observability(trace=recorder, attribution=collector)
    _reset(requests)
    result = simulate(
        requests, cfg, sets, record_latencies=True, obs=observed,
        faults=faults,
    )
    if recorder.evicted:
        raise DiffError(
            f"trace ring evicted {recorder.evicted} events (capacity "
            f"{recorder.capacity}); raise trace_capacity= — a truncated "
            "stream cannot localize the first divergence"
        )
    critpath = extract_critical_path(
        collector.records, result.makespan_us
    ).to_dict()
    events = [event.to_dict() for event in recorder.events()]
    _reset(requests)
    return result, events, critpath


def diff_run(
    requests,
    cfg_a,
    sets_a,
    cfg_b=None,
    sets_b=None,
    *,
    faults=None,
    label_a: str = "a",
    label_b: str = "b",
    trace_capacity: int = 1_048_576,
    keep_events: bool = False,
) -> dict:
    """Re-simulate one seeded trace under two configurations and diff.

    Side B defaults to side A's configuration/allocation — the self-diff
    that must come back empty (the CI determinism assertion).  ``faults``
    must be a stateless :class:`~repro.ssd.faults.FaultConfig` (never a
    used injector) so both runs draw the identical fault sequence.

    Returns a full diff report (kind ``run``) with three sections:
    ``metrics`` (summary deltas, direction-classified), ``trace`` (the
    first divergent event and downstream counts), and ``critpath``
    (per-resource on-path shifts between the two runs' bottleneck
    reports).
    """
    from ..ssd.faults import FaultInjector  # lazy, cycle guard

    if isinstance(faults, FaultInjector):
        raise TypeError(
            "pass the FaultConfig, not a FaultInjector: an injector is "
            "stateful and would give each re-simulation a different "
            "fault sequence"
        )
    if cfg_b is None:
        cfg_b = cfg_a
    if sets_b is None:
        sets_b = sets_a
    result_a, events_a, critpath_a = _observed_run(
        requests, cfg_a, sets_a, faults, trace_capacity
    )
    result_b, events_b, critpath_b = _observed_run(
        requests, cfg_b, sets_b, faults, trace_capacity
    )
    metrics_a = {m: getattr(result_a, m) for m in _RUN_METRICS}
    metrics_b = {m: getattr(result_b, m) for m in _RUN_METRICS}
    cells = _metric_table(metrics_a, metrics_b)
    divergences, regressions, improvements = _tally(cells)
    metrics_section = {
        "identical": divergences == 0,
        "divergences": divergences,
        "regressions": regressions,
        "improvements": improvements,
        "requests": len(requests),
        "metrics": cells,
    }
    sections = {
        "metrics": metrics_section,
        "trace": diff_traces(events_a, events_b),
        "critpath": diff_critpath_docs(critpath_a, critpath_b),
    }
    report = build_diff_report("run", label_a, label_b, sections)
    if keep_events:
        # private carry-alongs for the Chrome-trace exporter; callers
        # must pop them before serialising the report
        report["_events_a"] = events_a
        report["_events_b"] = events_b
    return report
