"""Fleet observability plane: federation, migration spans, SLO rollups.

The per-device pillars (metrics registry, telemetry windows, SLO
watchdog, flight recorder) each see exactly one SSD.  This module is the
layer above a :class:`repro.ssd.fleet.Fleet`:

* :class:`FleetRegistry` federates per-device
  :class:`~repro.obs.registry.MetricsRegistry` instances into one rollup
  registry — counters summed, fixed-bucket histograms merged exactly
  (element-wise bucket sums, the same delta-friendly representation the
  telemetry sink windows), and per-device health gauges derived from
  keeper ``prediction_health`` and ``faults.*`` telemetry;
* :class:`FleetObserver` attaches to a fleet's hooks: every completed
  request feeds ``fleet.*`` counters, and each migration becomes a
  first-class ``tenant_migration`` trace span running from drain-start
  to the tenant's first completion on the destination device;
* :class:`FleetSloRollup` sits above the per-device
  :class:`~repro.obs.slo.SloWatchdog` instances: each device window's
  per-objective violation fractions feed fleet-level fast/slow burn
  rates (mean across reporting devices), and a fleet page — budget
  exhaustion across the fleet — dumps a flight-recorder bundle naming
  the offending device (the one with the worst fast burn);
* :func:`build_fleet_report` / :func:`load_fleet` — the schema-versioned
  ``fleet_report.json`` writer and its validating reader (round-trip
  checked by the R007 lint).

Everything here is deterministic and carries no wall-clock timestamps:
two runs of the same seeded scenario produce byte-identical reports.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass
from typing import Mapping, Sequence

from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .slo import SloSpec, SloWatchdog
from .trace import NULL_RECORDER

__all__ = [
    "FLEET_SCHEMA_VERSION",
    "FleetObserver",
    "FleetRegistry",
    "FleetSloAlert",
    "FleetSloRollup",
    "build_fleet_report",
    "device_health",
    "load_fleet",
    "merge_histograms",
    "write_fleet_report",
]

FLEET_SCHEMA_VERSION = 1

_SEVERITY_RANK = {"ok": 0, "warn": 1, "page": 2}


# ----------------------------------------------------------------------
# Metric federation
# ----------------------------------------------------------------------

def merge_histograms(name: str, histograms: Sequence[Histogram]) -> Histogram:
    """Exact federation of fixed-bucket histograms (same bounds required).

    Bucket counts add element-wise — the merged histogram is *exactly*
    the histogram a single registry would have produced had it observed
    every device's samples, because the bucket representation is a sum
    of indicator counts.  Percentiles remain bucket-interpolated
    estimates, but ``count``/``total``/``min``/``max`` and every bucket
    are exact.
    """
    if not histograms:
        raise ValueError("need at least one histogram to merge")
    bounds = histograms[0].bounds
    for hist in histograms[1:]:
        if hist.bounds != bounds:
            raise ValueError(
                f"cannot merge histograms with differing bounds for {name!r}"
            )
    out = Histogram(name, bounds)
    out.counts = [sum(cs) for cs in zip(*(h.counts for h in histograms))]
    out.count = sum(h.count for h in histograms)
    out.total = sum(h.total for h in histograms)
    out.dropped = sum(h.dropped for h in histograms)
    observed = [h for h in histograms if h.count]
    if observed:
        out.min = min(h.min for h in observed)
        out.max = max(h.max for h in observed)
    return out


def device_health(registry: MetricsRegistry) -> float:
    """Health score in [0, 1] for one device registry.

    Combines the keeper's prediction health with the device's fault
    telemetry: a keeper that has fallen back (``keeper.fallbacks`` > 0 or
    ``keeper.prediction_healthy`` gauge at 0) halves the score, and the
    unrecoverable-read fraction (``sim.failed_reads`` over
    ``sim.requests``) scales it down linearly.  A device with no keeper
    and no faults scores 1.0.
    """
    requests = registry.get("sim.requests")
    failed = registry.get("sim.failed_reads")
    served = requests.value if isinstance(requests, Counter) else 0
    lost = failed.value if isinstance(failed, Counter) else 0
    failed_fraction = (lost / served) if served > 0 else (1.0 if lost else 0.0)
    keeper_gauge = registry.get("keeper.prediction_healthy")
    fallbacks = registry.get("keeper.fallbacks")
    keeper_ok = True
    if isinstance(keeper_gauge, Gauge) and keeper_gauge.value < 1.0:
        keeper_ok = False
    if isinstance(fallbacks, Counter) and fallbacks.value > 0:
        keeper_ok = False
    score = (1.0 if keeper_ok else 0.5) * (1.0 - failed_fraction)
    return max(0.0, min(1.0, score))


class FleetRegistry:
    """Federates per-device registries into fleet-level rollups.

    Holds a live fleet registry (``fleet.*`` counters the observer and
    rollup publish into) plus handles to every attached device registry;
    :meth:`federate` materialises the merged view on demand.
    """

    def __init__(self) -> None:
        #: live fleet-level metrics (``fleet.requests``,
        #: ``fleet.migrations``, ``fleet.slo.*``)
        self.fleet = MetricsRegistry()
        self.devices: dict[int, MetricsRegistry] = {}

    def attach(self, device_id: int, registry: MetricsRegistry) -> None:
        """Register one device's metrics registry for federation."""
        if device_id in self.devices:
            raise ValueError(f"device {device_id} already attached")
        self.devices[device_id] = registry

    def health(self) -> dict[int, float]:
        """Per-device health scores (see :func:`device_health`)."""
        return {
            dev: device_health(reg) for dev, reg in sorted(self.devices.items())
        }

    def federate(self) -> MetricsRegistry:
        """Merge every attached device registry into one rollup registry.

        Counters with the same name sum across devices; histograms merge
        exactly (see :func:`merge_histograms`); per-device health gauges
        land under ``fleet.device.<id>.health``.  Live fleet-level
        metrics are copied in last so they cannot be shadowed by device
        metrics.
        """
        out = MetricsRegistry()
        by_name: dict[str, list] = {}
        for _, registry in sorted(self.devices.items()):
            for name in registry.names():
                by_name.setdefault(name, []).append(registry.get(name))
        for name, metrics in sorted(by_name.items()):
            first = metrics[0]
            if isinstance(first, Counter):
                out.counter(name).value = sum(m.value for m in metrics)
            elif isinstance(first, Histogram):
                merged = merge_histograms(name, metrics)
                target = out.histogram(name, merged.bounds)
                target.counts = list(merged.counts)
                target.count = merged.count
                target.total = merged.total
                target.min = merged.min
                target.max = merged.max
                target.dropped = merged.dropped
            # gauges/series are last-value or per-run shapes that do not
            # federate meaningfully; device health below covers the
            # gauges the fleet actually rolls up
        for dev, score in self.health().items():
            out.gauge(f"fleet.device.{dev}.health").set(score)
        out.counter("fleet.devices").value = len(self.devices)
        for name in self.fleet.names():
            metric = self.fleet.get(name)
            if isinstance(metric, Counter):
                out.counter(name).value = metric.value
            elif isinstance(metric, Gauge):
                out.gauge(name).set(metric.value)
        return out


# ----------------------------------------------------------------------
# Fleet-level SLO rollup
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FleetSloAlert:
    """One edge-triggered fleet-level burn alert.

    ``device`` is the offending device — the one with the worst fast
    burn for the objective when the alert fired.
    """

    time_us: float
    severity: str  # "warn" | "page"
    objective: str
    device: int
    fleet_fast_burn: float
    fleet_slow_burn: float
    allowed_fraction: float
    device_fast_burns: dict

    def to_dict(self) -> dict:
        return {
            "time_us": self.time_us,
            "severity": self.severity,
            "objective": self.objective,
            "device": self.device,
            "fleet_fast_burn": self.fleet_fast_burn,
            "fleet_slow_burn": self.fleet_slow_burn,
            "allowed_fraction": self.allowed_fraction,
            "device_fast_burns": {
                str(d): b for d, b in sorted(self.device_fast_burns.items())
            },
        }


class _RollupFeed:
    """Telemetry-sink watchdog adapter: device watchdog, then rollup.

    Installed as ``sink.watchdog`` so each device window is evaluated by
    the device's own :class:`SloWatchdog` first (per-device alerts keep
    working) and its per-objective violation fractions are then folded
    into the fleet rollup.
    """

    __slots__ = ("_device_id", "_watchdog", "_rollup")

    def __init__(self, device_id: int, watchdog: SloWatchdog,
                 rollup: "FleetSloRollup") -> None:
        self._device_id = device_id
        self._watchdog = watchdog
        self._rollup = rollup

    def observe(self, window: dict) -> list:
        raised = self._watchdog.observe(window)
        self._rollup.on_window(self._device_id, window, self._watchdog)
        return raised


class FleetSloRollup:
    """Aggregates per-device burn inputs into fleet-wide alerting.

    Each device window contributes its objectives' latest violation
    fractions (``SloWatchdog.latest_fractions``).  Per objective, the
    fleet keeps one trailing deque per device (slow-window length) and
    computes fleet fast/slow burns as the mean of the per-device burns
    across devices that have reported.  Severity uses the same
    dual-window thresholds as the per-device watchdog and is
    edge-triggered per objective; a page dumps a flight bundle naming
    the offending device.
    """

    def __init__(self, spec: SloSpec, *, registry=None, trace=None,
                 flight_recorder=None) -> None:
        self.spec = spec
        self.alerts: list[FleetSloAlert] = []
        self.windows_observed = 0
        self._registry = registry
        self._trace = trace if trace is not None and trace.enabled else None
        self._flight_recorder = flight_recorder
        #: objective -> device -> trailing violation fractions
        self._fractions: dict[str, dict[int, deque]] = {}
        self._allowed: dict[str, float] = {}
        self._state: dict[str, str] = {}

    def feed(self, device_id: int, watchdog: SloWatchdog) -> _RollupFeed:
        """Adapter to install as a telemetry sink's ``watchdog``."""
        return _RollupFeed(device_id, watchdog, self)

    # ------------------------------------------------------------------
    def on_window(self, device_id: int, window: dict,
                  watchdog: SloWatchdog) -> list[FleetSloAlert]:
        """Fold one device window into the fleet burn state."""
        self.windows_observed += 1
        if self._registry is not None:
            self._registry.counter("fleet.slo.windows").inc()
        slow_n = self.spec.slow.windows
        for name, fraction, allowed in watchdog.latest_fractions():
            per_device = self._fractions.setdefault(name, {})
            trail = per_device.get(device_id)
            if trail is None:
                trail = deque(maxlen=slow_n)
                per_device[device_id] = trail
            trail.append(fraction)
            self._allowed[name] = allowed
        return self._evaluate(window)

    def _evaluate(self, window: dict) -> list[FleetSloAlert]:
        fast_n = self.spec.fast.windows
        raised: list[FleetSloAlert] = []
        for name, per_device in sorted(self._fractions.items()):
            allowed = self._allowed[name]
            device_fast: dict[int, float] = {}
            fast_burns: list[float] = []
            slow_burns: list[float] = []
            for dev, trail in sorted(per_device.items()):
                recent = list(trail)
                fast_frac = sum(recent[-fast_n:]) / len(recent[-fast_n:])
                slow_frac = sum(recent) / len(recent)
                device_fast[dev] = fast_frac / allowed
                fast_burns.append(fast_frac / allowed)
                slow_burns.append(slow_frac / allowed)
            fleet_fast = sum(fast_burns) / len(fast_burns)
            fleet_slow = sum(slow_burns) / len(slow_burns)
            if (fleet_fast >= self.spec.fast.page_burn
                    and fleet_slow >= self.spec.slow.page_burn):
                severity = "page"
            elif (fleet_fast >= self.spec.fast.warn_burn
                    and fleet_slow >= self.spec.slow.warn_burn):
                severity = "warn"
            else:
                severity = "ok"
            state = self._state.get(name, "ok")
            if _SEVERITY_RANK[severity] > _SEVERITY_RANK[state]:
                worst = max(
                    sorted(device_fast), key=lambda d: device_fast[d]
                )
                alert = FleetSloAlert(
                    time_us=window["t_end_us"],
                    severity=severity,
                    objective=name,
                    device=worst,
                    fleet_fast_burn=fleet_fast,
                    fleet_slow_burn=fleet_slow,
                    allowed_fraction=allowed,
                    device_fast_burns=dict(device_fast),
                )
                raised.append(alert)
                self._emit(alert)
            self._state[name] = severity
        return raised

    def _emit(self, alert: FleetSloAlert) -> None:
        self.alerts.append(alert)
        if self._registry is not None:
            self._registry.counter(f"fleet.slo.{alert.severity}_alerts").inc()
        if self._trace is not None:
            self._trace.emit(
                alert.time_us, "fleet_slo_alert", alert.objective, "fleet",
                args={
                    "severity": alert.severity,
                    "device": alert.device,
                    "fleet_fast_burn": alert.fleet_fast_burn,
                    "fleet_slow_burn": alert.fleet_slow_burn,
                },
            )
        if alert.severity == "page" and self._flight_recorder is not None:
            self._flight_recorder.dump_once(
                "fleet-slo-page",
                detail=(
                    f"{alert.objective} fleet budget exhausted: device "
                    f"{alert.device} fast_burn="
                    f"{alert.device_fast_burns[alert.device]:.2f} (fleet "
                    f"fast={alert.fleet_fast_burn:.2f} "
                    f"slow={alert.fleet_slow_burn:.2f})"
                ),
                time_us=alert.time_us,
                alert=alert.to_dict(),
            )

    def summary(self) -> dict:
        """Plain-data rollup for reports and ``--json`` output."""
        return {
            "windows": self.windows_observed,
            "warn_alerts": sum(
                1 for a in self.alerts if a.severity == "warn"
            ),
            "page_alerts": sum(
                1 for a in self.alerts if a.severity == "page"
            ),
            "alerts": [a.to_dict() for a in self.alerts],
        }


# ----------------------------------------------------------------------
# The observer that ties a Fleet to the plane above it
# ----------------------------------------------------------------------

class _FleetBundle:
    """Minimal ``Observability``-shaped handle for the flight recorder.

    Gives a fleet-level :class:`~repro.obs.flightrecorder.FlightRecorder`
    the attributes its dump path reads (registry/trace; the per-request
    pillars stay ``None`` at fleet scope) without importing the facade —
    ``repro.obs.fleet`` must stay import-light under ``repro.obs``.
    """

    __slots__ = ("registry", "trace", "attribution", "slo", "telemetry")

    def __init__(self, registry, trace) -> None:
        self.registry = registry
        self.trace = trace
        self.attribution = None
        self.slo = None
        self.telemetry = None


class FleetObserver:
    """Attaches the observability plane to a fleet's hooks.

    Parameters
    ----------
    fleet:
        the :class:`repro.ssd.fleet.Fleet` to observe (hooks are
        installed on construction; build the observer before ``run``).
    device_bundles:
        per-device :class:`~repro.obs.Observability` bundles (``None``
        entries for unobserved devices), index = device id.
    slo:
        optional fleet :class:`SloSpec`; when given, every device bundle
        carrying a telemetry sink and watchdog is re-wired through
        :class:`FleetSloRollup` so fleet burn rates aggregate.
    trace:
        optional fleet-level :class:`~repro.obs.trace.TraceRecorder` for
        ``tenant_migration`` / ``fleet_slo_alert`` spans (defaults to
        the null recorder).
    flight_recorder:
        optional fleet-level
        :class:`~repro.obs.flightrecorder.FlightRecorder`; fleet pages
        dump bundles here naming the offending device.
    """

    def __init__(self, fleet, device_bundles: Sequence, *, slo=None,
                 trace=None, flight_recorder=None) -> None:
        self.fleet = fleet
        self.device_bundles = list(device_bundles)
        if len(self.device_bundles) != len(fleet.sims):
            raise ValueError(
                f"{len(self.device_bundles)} bundles for "
                f"{len(fleet.sims)} devices"
            )
        self.registry = FleetRegistry()
        self.trace = trace if trace is not None else NULL_RECORDER
        self.flight_recorder = flight_recorder
        if flight_recorder is not None:
            flight_recorder.obs = _FleetBundle(self.registry.fleet, self.trace)
        self.rollup: FleetSloRollup | None = None
        if slo is not None:
            self.rollup = FleetSloRollup(
                slo,
                registry=self.registry.fleet,
                trace=self.trace,
                flight_recorder=flight_recorder,
            )
        for dev_id, bundle in enumerate(self.device_bundles):
            if bundle is None:
                continue
            self.registry.attach(dev_id, bundle.registry)
            if (
                self.rollup is not None
                and bundle.telemetry is not None
                and bundle.slo is not None
            ):
                bundle.telemetry.watchdog = self.rollup.feed(
                    dev_id, bundle.slo
                )
        self.registry.fleet.counter("fleet.devices").value = len(fleet.sims)
        fleet.on_complete = self._on_complete
        fleet.on_migration = self._on_migration
        fleet.on_migration_complete = self._on_migration_complete

    # ------------------------------------------------------------------
    def _on_complete(self, device_id: int, req) -> None:
        self.registry.fleet.counter("fleet.requests").inc()

    def _on_migration(self, record) -> None:
        self.registry.fleet.counter("fleet.migrations").inc()

    def _on_migration_complete(self, record) -> None:
        if self.trace.enabled:
            self.trace.emit(
                record.start_us, "tenant_migration",
                f"tenant{record.tenant}", "fleet",
                dur_us=record.span_us,
                args={
                    "tenant": record.tenant,
                    "src": record.src,
                    "dst": record.dst,
                    "requests_replayed": record.requests_replayed,
                },
            )

    def alerts(self) -> list[FleetSloAlert]:
        """Fleet rollup alerts raised so far (empty without an SLO)."""
        return list(self.rollup.alerts) if self.rollup is not None else []


# ----------------------------------------------------------------------
# fleet_report.json — schema-versioned writer and validating reader
# ----------------------------------------------------------------------

def _op_stats_dict(stats) -> dict:
    """Plain-data view of one :class:`~repro.ssd.metrics.OpStats`."""
    return {
        "count": stats.count,
        "mean_us": stats.mean_us,
        "min_us": stats.min_us if stats.count else 0.0,
        "max_us": stats.max_us,
        "p95_us": (
            stats.percentile(95) if stats.samples is not None else None  # repro-lint: disable=R001 (OpStats.percentile returns microseconds)
        ),
        "p99_us": (
            stats.percentile(99) if stats.samples is not None else None  # repro-lint: disable=R001 (OpStats.percentile returns microseconds)
        ),
    }


def build_fleet_report(fleet_result, *, seed: int, observer=None,
                       scenario: Mapping | None = None) -> dict:
    """Assemble the ``fleet_report.json`` document.

    Deterministic by construction: no wall-clock timestamps, every
    mapping key sorted at serialisation time, all content derived from
    the seeded run.  ``observer`` (a :class:`FleetObserver`) adds the
    federated rollup section and fleet SLO alerts.
    """
    devices = []
    for dev, result in enumerate(fleet_result.results):
        per_tenant = fleet_result.completions[dev]
        devices.append({
            "device": dev,
            "summary": result.summary(),
            "requests": result.requests,
            "subrequests": result.subrequests,
            "failed_reads": result.failed_reads,
            "makespan_us": result.makespan_us,
            "total_latency_us": result.total_latency_us,
            "gc_collections": result.gc_collections,
            "gc_pages_moved": result.gc_pages_moved,
            "read": _op_stats_dict(result.read),
            "write": _op_stats_dict(result.write),
            "tenants": {
                str(t): count for t, count in sorted(per_tenant.items())
            },
        })
    rollup = None
    alerts: list[dict] = []
    if observer is not None:
        rollup = observer.registry.federate().snapshot()
        rollup["health"] = {
            str(d): score for d, score in observer.registry.health().items()
        }
        alerts = [a.to_dict() for a in observer.alerts()]
        if observer.rollup is not None:
            rollup["slo"] = {
                "windows": observer.rollup.windows_observed,
                "warn_alerts": sum(
                    1 for a in observer.rollup.alerts
                    if a.severity == "warn"
                ),
                "page_alerts": sum(
                    1 for a in observer.rollup.alerts
                    if a.severity == "page"
                ),
            }
    return {
        "schema_version": FLEET_SCHEMA_VERSION,
        "seed": seed,
        "devices": devices,
        "placement": {
            "initial": {
                str(t): d
                for t, d in sorted(fleet_result.placement_initial.items())
            },
            "final": {
                str(t): d
                for t, d in sorted(fleet_result.placement_final.items())
            },
        },
        "migrations": [m.to_dict() for m in fleet_result.migrations],
        "rollup": rollup,
        "alerts": alerts,
        "scenario": dict(scenario) if scenario is not None else None,
    }


_FLEET_FIELDS = frozenset({
    "schema_version", "seed", "devices", "placement", "migrations",
    "rollup", "alerts", "scenario",
})


def load_fleet(doc: dict, *, side: str = "fleet") -> dict:
    """Validate a fleet report produced by :func:`build_fleet_report`.

    The round-trip reader for the fleet schema: refuses version
    mismatches and structurally truncated documents so downstream
    consumers never operate on half a report.
    """
    if doc.get("schema_version") != FLEET_SCHEMA_VERSION:
        raise ValueError(
            f"{side} document has schema_version "
            f"{doc.get('schema_version')!r}; this tool expects "
            f"{FLEET_SCHEMA_VERSION}"
        )
    missing = _FLEET_FIELDS - set(doc)
    if missing:
        raise ValueError(
            f"{side} document is missing fields: {sorted(missing)}"
        )
    for entry in doc["devices"]:
        if not isinstance(entry.get("device"), int):
            raise ValueError(f"{side} document has a malformed device entry")
    for migration in doc["migrations"]:
        span = migration.get("span_us")
        if span is not None and (
            not isinstance(span, (int, float)) or not math.isfinite(span)
        ):
            raise ValueError(
                f"{side} document has a non-finite migration span"
            )
    return doc


def write_fleet_report(doc: dict, path) -> None:
    """Serialise a validated report deterministically (sorted keys)."""
    load_fleet(doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
