"""Failure flight recorder: reproducible debug bundles.

When a run trips — a :class:`~repro.analysis.sanitizer.SanitizerError`,
a page-severity SLO alert, or an unrecoverable read — the
:class:`FlightRecorder` dumps a self-contained bundle directory holding
everything needed to reproduce and diagnose the failure offline:

* ``manifest.json`` — schema version, trigger, run context (full config
  + seeds as recorded by the caller), and the **exact CLI command** that
  replays the failing run deterministically;
* ``metrics.json`` — full registry snapshot at dump time;
* ``trace.jsonl`` — the last-N ring events from the trace recorder;
* ``attribution_tail.json`` — the most recent attributed requests;
* ``alerts.json`` — every SLO alert so far plus the triggering one;
* ``telemetry_tail.json`` — the most recent telemetry windows;
* ``sanitizer_events.json`` — the sanitizer's recent-event ring;
* ``critpath.json`` — the bottleneck report at trigger time (which
  resource the critical path was bound by when things went wrong),
  extracted from the attribution records when attribution is armed;
* ``diff.json`` — when the recorder was armed with a ``last_good``
  reference run, a differential report against it
  (:mod:`repro.obs.diff`): which critical-path resource shifted and
  which attribution phase the latency moved into, so the bundle answers
  "what changed since the run that worked" without further tooling.

Sections whose source is not attached are simply omitted (and listed as
absent in the manifest).  Dumping writes files only — it schedules no
simulation events and draws no randomness, so an armed recorder never
perturbs a run.
"""

from __future__ import annotations

import json
import shlex
from pathlib import Path

__all__ = ["FlightRecorder", "FLIGHT_SCHEMA_VERSION", "load_manifest"]

FLIGHT_SCHEMA_VERSION = 1

#: fields of the bundle manifest (R007 round-trip contract; replay
#: tooling reads these back from bundle directories)
_MANIFEST_FIELDS = frozenset({
    "schema_version", "trigger", "detail", "time_us", "context", "replay",
    "bundle_files",
})


def load_manifest(bundle_dir) -> dict:
    """Read and validate ``manifest.json`` from a flight bundle directory.

    The round-trip reader for bundle manifests: refuses version
    mismatches and truncated manifests so replay commands are never
    assembled from half a bundle.
    """
    from pathlib import Path as _Path

    path = _Path(bundle_dir) / "manifest.json"
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema_version") != FLIGHT_SCHEMA_VERSION:
        raise ValueError(
            f"bundle manifest has schema_version "
            f"{doc.get('schema_version')!r}; this tool reads version "
            f"{FLIGHT_SCHEMA_VERSION}"
        )
    missing = _MANIFEST_FIELDS - set(doc)
    if missing:
        raise ValueError(
            f"bundle manifest is missing fields: {sorted(missing)}"
        )
    return doc


class FlightRecorder:
    """Dump-on-failure bundle writer (one directory per trigger)."""

    def __init__(self, out_dir, *, context=None, replay_argv=None,
                 explain_argv=None, trace_tail=512, attribution_tail=64,
                 telemetry_tail=32, last_good=None) -> None:
        self.out_dir = Path(out_dir)
        #: caller-supplied run description (config, seeds, scenario name…)
        self.context = dict(context) if context else {}
        #: last-known-good reference artifacts for differential bundles:
        #: a dict optionally carrying ``"critpath"`` (a bottleneck report
        #: document) and/or ``"attribution"`` (a bench-style section with
        #: ``phase_totals_us``); when any is present, dumps gain a
        #: ``diff.json`` against it
        self.last_good = dict(last_good) if last_good else None
        #: exact argv that reproduces this run (``None`` = not replayable)
        self.replay_argv = list(replay_argv) if replay_argv else None
        #: argv of the ``repro explain`` invocation that diagnoses this
        #: run's bottleneck offline (``None`` = no canned explainer)
        self.explain_argv = list(explain_argv) if explain_argv else None
        self.trace_tail = trace_tail
        self.attribution_tail = attribution_tail
        self.telemetry_tail = telemetry_tail
        #: set by :class:`repro.obs.Observability` when carried by one
        self.obs = None
        #: set by the simulator when a sanitizer is attached
        self.sanitizer = None
        #: bundle directories written so far, oldest first
        self.bundles: list[Path] = []
        self._triggered: set[str] = set()

    # ------------------------------------------------------------------
    def dump_once(self, trigger: str, detail: str = "", *,
                  time_us: float = 0.0, alert=None) -> "Path | None":
        """Dump at most one bundle per trigger kind; None if already done."""
        if trigger in self._triggered:
            return None
        return self.dump(trigger, detail, time_us=time_us, alert=alert)

    def dump(self, trigger: str, detail: str = "", *,
             time_us: float = 0.0, alert=None) -> Path:
        """Write one bundle directory and return its path."""
        self._triggered.add(trigger)
        bundle = self.out_dir / f"bundle-{len(self.bundles):02d}-{trigger}"
        bundle.mkdir(parents=True, exist_ok=True)
        files = ["manifest.json"]
        critpath_doc = None
        phase_totals_us = None
        obs = self.obs
        if obs is not None:
            _write_json(bundle / "metrics.json", obs.registry.snapshot())
            files.append("metrics.json")
            if obs.trace is not None and obs.trace.enabled:
                events = obs.trace.events()[-self.trace_tail:]
                with open(bundle / "trace.jsonl", "w", encoding="utf-8") as fh:
                    for ev in events:
                        fh.write(json.dumps(ev.to_dict()) + "\n")
                files.append("trace.jsonl")
            if obs.attribution is not None:
                records = obs.attribution.records
                tail = records[-self.attribution_tail:]
                _write_json(
                    bundle / "attribution_tail.json",
                    [rec.to_dict() for rec in tail],
                )
                files.append("attribution_tail.json")
                if records:
                    # bottleneck report at trigger time: walk back from
                    # the trigger's simulated time (or the last completion
                    # when the trigger carries none).  validate=False — a
                    # failure dump must never raise, and a mid-run chain's
                    # residual is informative, not an invariant.
                    from .critpath import extract_critical_path

                    makespan_us = time_us
                    if makespan_us <= 0.0:
                        makespan_us = max(r.complete_us for r in records)
                    report = extract_critical_path(
                        records, makespan_us, validate=False,
                    )
                    critpath_doc = report.to_dict()
                    _write_json(bundle / "critpath.json", critpath_doc)
                    files.append("critpath.json")
                breakdown = obs.attribution.breakdown()
                phase_totals_us = {**breakdown.phase_totals_us}
            if obs.slo is not None:
                _write_json(bundle / "alerts.json", {
                    "triggering": alert,
                    "history": [a.to_dict() for a in obs.slo.alerts],
                })
                files.append("alerts.json")
            if obs.telemetry is not None:
                _write_json(
                    bundle / "telemetry_tail.json",
                    obs.telemetry.windows[-self.telemetry_tail:],
                )
                files.append("telemetry_tail.json")
        if self.sanitizer is not None:
            _write_json(
                bundle / "sanitizer_events.json",
                {
                    "stats": self.sanitizer.stats(),
                    "recent": self.sanitizer.recent_events(),
                },
            )
            files.append("sanitizer_events.json")
        if self._write_last_good_diff(bundle, critpath_doc, phase_totals_us):
            files.append("diff.json")
        manifest = {
            "schema_version": FLIGHT_SCHEMA_VERSION,
            "trigger": trigger,
            "detail": detail,
            "time_us": time_us,
            "context": self.context,
            "replay": {
                "argv": self.replay_argv,
                "command": (
                    shlex.join(self.replay_argv)
                    if self.replay_argv else None
                ),
                "explain_argv": self.explain_argv,
                "explain_command": (
                    shlex.join(self.explain_argv)
                    if self.explain_argv else None
                ),
            },
            "bundle_files": sorted(files),
        }
        _write_json(bundle / "manifest.json", manifest)
        self.bundles.append(bundle)
        return bundle

    # ------------------------------------------------------------------
    def _write_last_good_diff(
        self, bundle: Path, critpath_doc, phase_totals_us
    ) -> bool:
        """Diff this dump's artifacts against the last-known-good run.

        Best-effort by design — a failure dump must never raise — but
        structural mismatches are swallowed only after the bundle's own
        artifacts were written.
        """
        if not self.last_good:
            return False
        from .diff import build_diff_report, diff_critpath_docs, phase_waterfall, write_diff

        sections: dict = {}
        good_critpath = self.last_good.get("critpath")
        if good_critpath is not None and critpath_doc is not None:
            try:
                sections["critpath"] = diff_critpath_docs(
                    good_critpath, critpath_doc
                )
            except ValueError:
                pass  # incompatible/older reference report: skip section
        good_attr = self.last_good.get("attribution") or {}
        good_phases = good_attr.get("phase_totals_us")
        if good_phases and phase_totals_us:
            rows = phase_waterfall(good_phases, phase_totals_us)
            moved = sum(1 for row in rows if row["delta_us"])
            sections["waterfall"] = {
                "identical": moved == 0,
                "divergences": moved,
                "regressions": 0,
                "phases": rows,
            }
        if not sections:
            return False
        report = build_diff_report(
            "flight", "last-known-good", "this run", sections
        )
        write_diff(report, bundle / "diff.json")
        return True


def _write_json(path: Path, payload) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=str)
        fh.write("\n")
