"""Time-series utilization profiling.

Samples per-channel and per-die **busy fraction** and **queue depth** on
a fixed simulated-time interval, producing exactly the data behind the
paper's Figure-2-style conflict plots: which channels saturate, when,
and how deep their queues run while a tenant mix plays out.

The profiler self-schedules on the simulation's event loop: each sample
records the busy-time delta since the previous sample divided by the
interval, then re-arms itself while the loop still has other work
pending.  Busy time is *booked* at grant time (the engine charges the
whole service duration up front), so a window's fraction may exceed 1.0
right after a long grant and dip below on the next window; over any
horizon longer than a few service times the series integrates to the
true utilization.

Disabled-path cost is zero: when no profiler is attached the simulator
schedules nothing.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["UtilizationProfiler"]


class UtilizationProfiler:
    """Periodic busy-fraction / queue-depth sampler over DES resources."""

    def __init__(self, interval_us: float) -> None:
        if interval_us <= 0:
            raise ValueError("interval_us must be positive")
        self.interval_us = interval_us
        #: sample timestamps (end of each window, simulated us)
        self.times_us: list[float] = []
        #: one row per sample: busy fraction per channel / per die
        self.channel_busy: list[list[float]] = []
        self.die_busy: list[list[float]] = []
        #: one row per sample: outstanding jobs (waiters + holder) per resource
        self.channel_queue: list[list[int]] = []
        self.die_queue: list[list[int]] = []
        self._loop = None
        self._channels: Sequence = ()
        self._dies: Sequence = ()
        self._last_ch: list[float] = []
        self._last_die: list[float] = []
        self._last_ts = 0.0

    @property
    def samples(self) -> int:
        return len(self.times_us)

    # ------------------------------------------------------------------
    def attach(self, loop, channels: Sequence, dies: Sequence) -> None:
        """Arm the profiler on ``loop`` over the given resources.

        Must be called after the run's initial events are scheduled (the
        sampler only re-arms while other events remain, so it cannot
        keep an empty loop alive — though the final sample may land up
        to one interval past the last real event).
        """
        self._loop = loop
        self._channels = channels
        self._dies = dies
        self._last_ch = [c.busy_time_us for c in channels]
        self._last_die = [d.busy_time_us for d in dies]
        self._last_ts = loop.now
        loop.schedule(loop.now + self.interval_us, self._sample)

    def _sample(self) -> None:
        loop = self._loop
        now = loop.now
        self._record_window(now)
        # Re-arm only while *strong* events remain: weak events (telemetry
        # ticks) must not keep the profiler alive, or the two samplers
        # would sustain each other forever.
        if loop.pending_strong:
            loop.schedule(now + self.interval_us, self._sample)

    def _record_window(self, now: float) -> None:
        """Close the window ``[_last_ts, now]`` into one sample row."""
        window = now - self._last_ts
        if window <= 0:
            return
        self.times_us.append(now)
        ch_row = []
        for i, c in enumerate(self._channels):
            busy = c.busy_time_us
            ch_row.append((busy - self._last_ch[i]) / window)
            self._last_ch[i] = busy
        die_row = []
        for i, d in enumerate(self._dies):
            busy = d.busy_time_us
            die_row.append((busy - self._last_die[i]) / window)
            self._last_die[i] = busy
        self.channel_busy.append(ch_row)
        self.die_busy.append(die_row)
        self.channel_queue.append(
            [c.queue_depth + (1 if c.busy else 0) for c in self._channels]
        )
        self.die_queue.append(
            [d.queue_depth + (1 if d.busy else 0) for d in self._dies]
        )
        self._last_ts = now

    def flush(self) -> None:
        """Record the final partial window after the loop drained.

        Without this, activity between the last interval boundary and the
        end of the run is silently dropped (the sampler cannot re-arm on
        an empty loop), so the series under-covers the tail of the run.
        The simulator calls this once after ``loop.run()`` returns.
        """
        if self._loop is not None:
            self._record_window(self._loop.now)

    # ------------------------------------------------------------------
    def channel_series(self, channel: int) -> list[tuple[float, float]]:
        """``(t, busy_fraction)`` series for one channel."""
        return [(t, row[channel]) for t, row in zip(self.times_us, self.channel_busy)]

    def publish(self, registry) -> None:
        """Copy the profile into a metrics registry as series."""
        for ch in range(len(self._channels)):
            series = registry.series(f"util.channel.{ch}.busy")
            qseries = registry.series(f"util.channel.{ch}.queue")
            for i, t in enumerate(self.times_us):
                series.append(t, self.channel_busy[i][ch])
                qseries.append(t, float(self.channel_queue[i][ch]))
        for d in range(len(self._dies)):
            series = registry.series(f"util.die.{d}.busy")
            for i, t in enumerate(self.times_us):
                series.append(t, self.die_busy[i][d])

    def to_dict(self) -> dict:
        """Plain-data export (embedded in metrics dumps)."""
        return {
            "interval_us": self.interval_us,
            "times_us": list(self.times_us),
            "channel_busy": [list(r) for r in self.channel_busy],
            "die_busy": [list(r) for r in self.die_busy],
            "channel_queue": [list(r) for r in self.channel_queue],
            "die_queue": [list(r) for r in self.die_queue],
        }
