"""Metrics registry: counters, gauges, histograms, and series.

The registry is the single sink every instrumented component publishes
into — the simulator, the FTL controller, garbage collection, the DRAM
buffer, the fast model, the keeper, and the training loop.  It is
deliberately zero-dependency and cheap: a metric handle is fetched once
(``registry.counter("sim.requests")``) and then mutated with plain
attribute arithmetic, so the hot paths pay one branch and one add.

Four metric kinds cover everything the experiments need:

* :class:`Counter` — monotonically increasing event count;
* :class:`Gauge` — last-written value (e.g. a final busy fraction);
* :class:`Histogram` — fixed-bucket latency distribution with estimated
  p50/p95/p99 (bucket-interpolated, exact min/max/mean);
* :class:`Series` — append-only ``(x, value)`` pairs for per-epoch or
  per-sample time series (training curves, utilization profiles).
"""

from __future__ import annotations

import bisect
import json
import math
from typing import Iterable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_US",
]

#: Geometric upper bucket bounds (microseconds) spanning DRAM hits (~2 us)
#: through GC-stalled multi-millisecond tails; the final bucket is open.
DEFAULT_LATENCY_BUCKETS_US: tuple[float, ...] = (
    5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0, 10_000.0, 20_000.0, 50_000.0,
    100_000.0, 1_000_000.0,
)


class Counter:
    """Monotonic event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n

    def snapshot(self):
        return self.value


class Gauge:
    """Last-value metric.

    Non-finite writes (NaN/inf) are dropped and tallied in
    :attr:`dropped` instead of poisoning the stored value.
    """

    __slots__ = ("name", "value", "dropped")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.dropped = 0

    def set(self, value: float) -> None:
        if not math.isfinite(value):
            self.dropped += 1
            return
        self.value = value

    def snapshot(self):
        return self.value


class Histogram:
    """Fixed-bucket distribution with interpolated percentiles.

    Buckets are upper bounds; an implicit open bucket catches the
    overflow.  ``observe`` is O(log buckets); percentiles interpolate
    linearly inside the winning bucket (the open bucket interpolates up
    to the observed maximum), so p50/p95/p99 are estimates whose error
    is bounded by the bucket width — plenty for latency reporting, and
    far cheaper than keeping raw samples.

    Non-finite observations (NaN/inf) are dropped and tallied in
    :attr:`dropped` instead of poisoning ``total``/``mean``/min/max.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max", "dropped")

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_US
    ) -> None:
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.dropped = 0

    def observe(self, value: float) -> None:
        if not math.isfinite(value):
            self.dropped += 1
            return
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, values: Iterable[float]) -> None:
        """Bulk ``observe`` (the fast model publishes whole arrays)."""
        for v in values:
            self.observe(v)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated q-th percentile (0..100) by bucket interpolation."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        rank = q / 100.0 * self.count
        cum = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            prev_cum = cum
            cum += n
            if cum >= rank:
                lo = self.bounds[i - 1] if i > 0 else max(0.0, self.min)
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                lo = max(lo, self.min)
                # clamp to the observed max unconditionally — 0.0 is a
                # legitimate maximum (all-zero samples), not "unset"
                hi = min(hi, self.max)
                if hi <= lo:
                    return lo
                frac = (rank - prev_cum) / n
                return lo + (hi - lo) * frac
        return self.max

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "buckets": {
                **{str(b): c for b, c in zip(self.bounds, self.counts)},
                "+inf": self.counts[-1],
            },
        }


class Series:
    """Append-only ``(x, value)`` pairs — training curves, profiles."""

    __slots__ = ("name", "xs", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.xs: list[float] = []
        self.values: list[float] = []

    def append(self, x: float, value: float) -> None:
        self.xs.append(x)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.xs)

    def points(self) -> list[tuple[float, float]]:
        return list(zip(self.xs, self.values))

    def snapshot(self) -> dict:
        return {"x": list(self.xs), "values": list(self.values)}


class MetricsRegistry:
    """Named metric store with get-or-create accessors.

    Names are dotted (``sim.read_latency_us``, ``ftl.gc.collections``);
    requesting an existing name returns the same object, so components
    can share a metric without coordination.  Requesting a name that
    exists under a different kind raises — silent aliasing would corrupt
    both metrics.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    def _get_or_create(self, name: str, kind: type, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, *args)
            self._metrics[name] = metric
        elif type(metric) is not kind:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_US
    ) -> Histogram:
        return self._get_or_create(name, Histogram, buckets)

    def series(self, name: str) -> Series:
        return self._get_or_create(name, Series)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str):
        """Registered metric or None (read-side lookup, no creation)."""
        return self._metrics.get(name)

    def dropped_samples(self) -> int:
        """Total non-finite samples dropped across histograms and gauges."""
        return sum(
            metric.dropped
            for metric in self._metrics.values()
            if isinstance(metric, (Histogram, Gauge))
        )

    def snapshot(self) -> dict:
        """Nested plain-data view: kind -> name -> value."""
        out: dict[str, dict] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "series": {},
        }
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.snapshot()
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.snapshot()
            elif isinstance(metric, Histogram):
                out["histograms"][name] = metric.snapshot()
            elif isinstance(metric, Series):
                out["series"][name] = metric.snapshot()
        dropped = self.dropped_samples()
        if dropped:
            out["counters"]["obs.dropped_samples"] = dropped
        return out

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def to_openmetrics(self, *, labels: "dict[str, str] | None" = None) -> str:
        """OpenMetrics text exposition of counters, gauges, and histograms.

        Dotted names become underscore-separated; counters gain the
        ``_total`` suffix; histograms are converted from per-bucket to
        cumulative ``_bucket{le="..."}`` form with ``_sum`` and
        ``_count``.  Series are omitted (no OpenMetrics equivalent).
        The exposition ends with ``# EOF`` per the spec.

        ``labels`` attaches a constant label set to every sample (e.g.
        ``{"device": "0", "scenario": "gc_heavy"}`` when federating
        multiple registries into one scrape).  Label values are escaped
        per the OpenMetrics ABNF — backslash, double-quote, and newline
        become ``\\\\``, ``\\"``, and ``\\n`` — so arbitrary scenario
        names and paths survive exposition parsers.
        """
        base = _om_labels(labels)
        lines: list[str] = []
        for name in self.names():
            metric = self._metrics[name]
            om = _om_name(name)
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {om} counter")
                lines.append(f"{om}_total{base} {_om_value(metric.value)}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {om} gauge")
                lines.append(f"{om}{base} {_om_value(metric.value)}")
            elif isinstance(metric, Histogram):
                lines.append(f"# TYPE {om} histogram")
                cum = 0
                for bound, n in zip(metric.bounds, metric.counts):
                    cum += n
                    bucket = _om_labels(
                        {**(labels or {}), "le": _om_value(bound)}
                    )
                    lines.append(f"{om}_bucket{bucket} {cum}")
                cum += metric.counts[-1]
                inf_bucket = _om_labels({**(labels or {}), "le": "+Inf"})
                lines.append(f"{om}_bucket{inf_bucket} {cum}")
                lines.append(f"{om}_sum{base} {_om_value(metric.total)}")
                lines.append(f"{om}_count{base} {metric.count}")
        dropped = self.dropped_samples()
        if dropped:
            lines.append("# TYPE obs_dropped_samples counter")
            lines.append(f"obs_dropped_samples_total{base} {dropped}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"


def _om_name(name: str) -> str:
    """Sanitize a dotted metric name into an OpenMetrics identifier."""
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _om_label_value(value) -> str:
    """Escape one label value per the OpenMetrics exposition ABNF.

    Backslash must be escaped first — escaping it last would re-escape
    the backslashes introduced for quotes and newlines.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _om_labels(labels: "dict[str, str] | None") -> str:
    """Render a label set (sorted for determinism); '' when empty."""
    if not labels:
        return ""
    inner = ",".join(
        f'{_om_name(key)}="{_om_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _om_value(value: float) -> str:
    """Render a sample value: integral floats without the trailing .0."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)
