"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SloSpec` declares service-level objectives for a run —
per-tenant latency percentile targets, a failed-read budget, a GC-stall
fraction ceiling, and a keeper prediction-health floor.  An
:class:`SloWatchdog` evaluates the spec against every telemetry window
(:mod:`repro.obs.telemetry`) using the SRE burn-rate recipe: each
objective's **violation fraction** per window is averaged over a *fast*
and a *slow* trailing window set, normalised by the objective's allowed
fraction, and compared against warn/page burn thresholds.  Alerts are
edge-triggered (one alert per escalation; a downgrade re-arms), surface
as ``slo.*`` counters and ``slo_alert`` trace events, and a page-severity
alert hands a reproducible bundle to the flight recorder
(:mod:`repro.obs.flightrecorder`).

Violation fractions per objective kind:

* latency targets — fraction of the window's samples in histogram
  buckets whose *upper* bound exceeds the target (conservative: a bucket
  straddling the target counts as violating; exact when targets sit on
  bucket boundaries), allowed fraction 0.05 for p95 / 0.01 for p99;
* failed-read budget — failed reads over completed requests, the budget
  itself being the allowed fraction;
* GC stall — GC-busy die time over total die time, the configured
  ceiling being the allowed fraction;
* keeper health — binary: a window with any keeper fallback violates,
  allowed fraction ``1 - keeper_health_floor``.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "BurnWindow",
    "SloAlert",
    "SloSpec",
    "SloSpecError",
    "SloWatchdog",
    "SLO_SCHEMA_VERSION",
    "TENANT_TARGET_KEYS",
]

SLO_SCHEMA_VERSION = 1

#: recognised per-tenant latency targets -> allowed violation fraction
TENANT_TARGET_KEYS: dict[str, float] = {
    "read_p95_us": 0.05,
    "read_p99_us": 0.01,
    "write_p95_us": 0.05,
    "write_p99_us": 0.01,
}

_SEVERITY_RANK = {"ok": 0, "warn": 1, "page": 2}


class SloSpecError(ValueError):
    """Named spec-validation failure; ``code`` is machine-readable."""

    def __init__(self, code: str, detail: str) -> None:
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail


@dataclass(frozen=True)
class BurnWindow:
    """One burn-rate evaluation horizon (a count of telemetry windows)."""

    windows: int
    warn_burn: float
    page_burn: float

    def validate(self, label: str) -> None:
        if not isinstance(self.windows, int) or self.windows < 1:
            raise SloSpecError(
                "bad-spec", f"{label}.windows must be a positive integer"
            )
        if self.warn_burn <= 0 or self.page_burn <= 0:
            raise SloSpecError(
                "non-positive-target", f"{label} burn thresholds must be > 0"
            )
        if self.warn_burn > self.page_burn:
            raise SloSpecError(
                "bad-spec", f"{label}.warn_burn must not exceed page_burn"
            )


@dataclass(frozen=True)
class SloSpec:
    """Validated, immutable SLO declaration for one run."""

    window_us: float
    tenants: dict = field(default_factory=dict)
    failed_read_budget: "float | None" = None
    gc_stall_fraction: "float | None" = None
    keeper_health_floor: "float | None" = None
    fast: BurnWindow = BurnWindow(windows=3, warn_burn=2.0, page_burn=6.0)
    slow: BurnWindow = BurnWindow(windows=12, warn_burn=1.0, page_burn=3.0)

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict, *, known_tenants=None) -> "SloSpec":
        """Build and validate a spec from plain data (see examples/slo.json).

        ``known_tenants``, when given, is the set of workload ids the run
        actually has; a spec naming any other tenant is rejected with the
        ``unknown-tenant`` error code.
        """
        if not isinstance(data, dict):
            raise SloSpecError("bad-spec", "spec must be a JSON object")
        version = data.get("schema_version", SLO_SCHEMA_VERSION)
        if version != SLO_SCHEMA_VERSION:
            raise SloSpecError(
                "bad-spec",
                f"spec has schema_version {version!r}; this build reads "
                f"version {SLO_SCHEMA_VERSION}",
            )
        unknown = set(data) - {
            "schema_version", "window_us", "tenants", "failed_read_budget",
            "gc_stall_fraction", "keeper_health_floor", "burn",
        }
        if unknown:
            raise SloSpecError("bad-spec", f"unknown keys: {sorted(unknown)}")
        window_us = data.get("window_us")  # repro-lint: disable=R001 (spec field window_us is documented as microseconds)
        if not isinstance(window_us, (int, float)) or window_us <= 0:
            raise SloSpecError(
                "non-positive-target", "window_us must be a positive number"
            )
        tenants: dict[int, dict[str, float]] = {}
        for raw_wid, targets in (data.get("tenants") or {}).items():
            try:
                wid = int(raw_wid)
            except (TypeError, ValueError):
                raise SloSpecError(
                    "unknown-tenant", f"tenant id {raw_wid!r} is not an integer"
                ) from None
            if known_tenants is not None and wid not in known_tenants:
                raise SloSpecError(
                    "unknown-tenant",
                    f"tenant {wid} not in run tenants {sorted(known_tenants)}",
                )
            if not isinstance(targets, dict):
                raise SloSpecError(
                    "bad-spec", f"tenant {wid} targets must be an object"
                )
            bad = set(targets) - set(TENANT_TARGET_KEYS)
            if bad:
                raise SloSpecError(
                    "bad-spec",
                    f"tenant {wid} has unknown targets: {sorted(bad)}",
                )
            for key, value in targets.items():
                if not isinstance(value, (int, float)) or value <= 0:
                    raise SloSpecError(
                        "non-positive-target",
                        f"tenant {wid} target {key} must be > 0",
                    )
            tenants[wid] = {k: float(v) for k, v in targets.items()}
        for key in ("failed_read_budget", "gc_stall_fraction",
                    "keeper_health_floor"):
            value = data.get(key)
            if value is None:
                continue
            if not isinstance(value, (int, float)) or not 0 < value <= 1:
                raise SloSpecError(
                    "non-positive-target", f"{key} must be in (0, 1]"
                )
        burn = data.get("burn") or {}
        fast = _burn_window(burn.get("fast"), cls.fast, "burn.fast")
        slow = _burn_window(burn.get("slow"), cls.slow, "burn.slow")
        fast.validate("burn.fast")
        slow.validate("burn.slow")
        if fast.windows >= slow.windows:
            raise SloSpecError(
                "overlapping-burn-windows",
                f"fast window ({fast.windows}) must be strictly shorter "
                f"than slow window ({slow.windows})",
            )
        return cls(
            window_us=float(window_us),
            tenants=tenants,
            failed_read_budget=data.get("failed_read_budget"),
            gc_stall_fraction=data.get("gc_stall_fraction"),
            keeper_health_floor=data.get("keeper_health_floor"),
            fast=fast,
            slow=slow,
        )

    @classmethod
    def load(cls, path, *, known_tenants=None) -> "SloSpec":
        """Load and validate a JSON spec file."""
        with open(path, "r", encoding="utf-8") as fh:
            try:
                data = json.load(fh)
            except json.JSONDecodeError as exc:
                raise SloSpecError("bad-spec", f"invalid JSON: {exc}") from None
        return cls.from_dict(data, known_tenants=known_tenants)

    def to_dict(self) -> dict:
        return {
            "schema_version": SLO_SCHEMA_VERSION,
            "window_us": self.window_us,
            "tenants": {str(w): dict(t) for w, t in self.tenants.items()},
            "failed_read_budget": self.failed_read_budget,
            "gc_stall_fraction": self.gc_stall_fraction,
            "keeper_health_floor": self.keeper_health_floor,
            "burn": {
                "fast": vars(self.fast).copy(),
                "slow": vars(self.slow).copy(),
            },
        }


def _burn_window(raw, default: BurnWindow, label: str) -> BurnWindow:
    if raw is None:
        return default
    if not isinstance(raw, dict):
        raise SloSpecError("bad-spec", f"{label} must be an object")
    bad = set(raw) - {"windows", "warn_burn", "page_burn"}
    if bad:
        raise SloSpecError("bad-spec", f"{label} unknown keys: {sorted(bad)}")
    return BurnWindow(
        windows=raw.get("windows", default.windows),
        warn_burn=float(raw.get("warn_burn", default.warn_burn)),
        page_burn=float(raw.get("page_burn", default.page_burn)),
    )


@dataclass(frozen=True)
class SloAlert:
    """One edge-triggered burn-rate alert."""

    time_us: float
    window_seq: int
    severity: str  # "warn" | "page"
    objective: str  # e.g. "tenant0.read_p95_us", "gc_stall"
    tenant: "int | None"
    fast_burn: float
    slow_burn: float
    violation_fraction: float
    allowed_fraction: float

    def to_dict(self) -> dict:
        return {
            "time_us": self.time_us,
            "window_seq": self.window_seq,
            "severity": self.severity,
            "objective": self.objective,
            "tenant": self.tenant,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
            "violation_fraction": self.violation_fraction,
            "allowed_fraction": self.allowed_fraction,
        }


class _Objective:
    """Burn-rate state for one SLO objective."""

    __slots__ = ("name", "tenant", "allowed", "fractions", "state", "_frac_fn")

    def __init__(self, name, tenant, allowed, frac_fn, slow_windows) -> None:
        self.name = name
        self.tenant = tenant
        self.allowed = allowed
        self.fractions = deque(maxlen=slow_windows)
        self.state = "ok"
        self._frac_fn = frac_fn

    def violation_fraction(self, window: dict) -> float:
        return self._frac_fn(window)


class SloWatchdog:
    """Evaluates an :class:`SloSpec` against each telemetry window."""

    def __init__(self, spec: SloSpec, *, registry=None, trace=None,
                 flight_recorder=None) -> None:
        self.spec = spec
        self.alerts: list[SloAlert] = []
        self.windows_evaluated = 0
        self._registry = None
        self._trace = None
        self._flight_recorder = None
        self.bind(registry=registry, trace=trace,
                  flight_recorder=flight_recorder)
        self._objectives = self._build_objectives(spec)

    def bind(self, *, registry=None, trace=None, flight_recorder=None) -> None:
        """Attach output sinks (any may stay ``None``)."""
        if registry is not None:
            self._registry = registry
        if trace is not None:
            self._trace = trace if trace.enabled else None
        if flight_recorder is not None:
            self._flight_recorder = flight_recorder

    # ------------------------------------------------------------------
    def _build_objectives(self, spec: SloSpec) -> list[_Objective]:
        objectives: list[_Objective] = []
        slow = spec.slow.windows
        for wid, targets in sorted(spec.tenants.items()):
            for key, target in sorted(targets.items()):
                kind = "read" if key.startswith("read") else "write"
                hist_name = f"sim.tenant.{wid}.{kind}_latency_us"
                objectives.append(_Objective(
                    f"tenant{wid}.{key}", wid, TENANT_TARGET_KEYS[key],
                    _latency_fraction_fn(hist_name, target), slow,
                ))
        if spec.failed_read_budget is not None:
            objectives.append(_Objective(
                "failed_reads", None, spec.failed_read_budget,
                _failed_read_fraction, slow,
            ))
        if spec.gc_stall_fraction is not None:
            objectives.append(_Objective(
                "gc_stall", None, spec.gc_stall_fraction,
                _gc_stall_fraction, slow,
            ))
        if spec.keeper_health_floor is not None:
            objectives.append(_Objective(
                "keeper_health", None, 1.0 - spec.keeper_health_floor,
                _keeper_violation, slow,
            ))
        return objectives

    # ------------------------------------------------------------------
    def observe(self, window: dict) -> list[SloAlert]:
        """Fold one telemetry window in; returns alerts raised by it."""
        self.windows_evaluated += 1
        if self._registry is not None:
            self._registry.counter("slo.windows").inc()
        raised: list[SloAlert] = []
        fast_n = self.spec.fast.windows
        for obj in self._objectives:
            fraction = obj.violation_fraction(window)
            obj.fractions.append(fraction)
            recent = list(obj.fractions)
            fast_frac = sum(recent[-fast_n:]) / len(recent[-fast_n:])
            slow_frac = sum(recent) / len(recent)
            fast_burn = fast_frac / obj.allowed
            slow_burn = slow_frac / obj.allowed
            if (fast_burn >= self.spec.fast.page_burn
                    and slow_burn >= self.spec.slow.page_burn):
                severity = "page"
            elif (fast_burn >= self.spec.fast.warn_burn
                    and slow_burn >= self.spec.slow.warn_burn):
                severity = "warn"
            else:
                severity = "ok"
            if _SEVERITY_RANK[severity] > _SEVERITY_RANK[obj.state]:
                alert = SloAlert(
                    time_us=window["t_end_us"],
                    window_seq=window["seq"],
                    severity=severity,
                    objective=obj.name,
                    tenant=obj.tenant,
                    fast_burn=fast_burn,
                    slow_burn=slow_burn,
                    violation_fraction=fraction,
                    allowed_fraction=obj.allowed,
                )
                raised.append(alert)
                self._emit(alert)
            obj.state = severity
        return raised

    def _emit(self, alert: SloAlert) -> None:
        self.alerts.append(alert)
        if self._registry is not None:
            self._registry.counter(f"slo.{alert.severity}_alerts").inc()
        if self._trace is not None:
            self._trace.emit(
                alert.time_us, "slo_alert", alert.objective, "slo",
                args={
                    "severity": alert.severity,
                    "fast_burn": alert.fast_burn,
                    "slow_burn": alert.slow_burn,
                },
            )
        if alert.severity == "page" and self._flight_recorder is not None:
            self._flight_recorder.dump_once(
                "slo-page",
                detail=f"{alert.objective} fast_burn={alert.fast_burn:.2f} "
                       f"slow_burn={alert.slow_burn:.2f}",
                time_us=alert.time_us,
                alert=alert.to_dict(),
            )

    def latest_fractions(self) -> list[tuple[str, float, float]]:
        """Per-objective ``(name, latest_violation_fraction, allowed)``.

        The hand-off a fleet rollup reads after each :meth:`observe`:
        objective order is deterministic (the spec's build order), and an
        objective with no windows yet reports fraction 0.0.  See
        :class:`repro.obs.fleet.FleetSloRollup`.
        """
        return [
            (
                obj.name,
                obj.fractions[-1] if obj.fractions else 0.0,
                obj.allowed,
            )
            for obj in self._objectives
        ]

    def summary(self) -> dict:
        """Plain-data rollup for exports and ``--json`` output."""
        return {
            "windows": self.windows_evaluated,
            "warn_alerts": sum(
                1 for a in self.alerts if a.severity == "warn"
            ),
            "page_alerts": sum(
                1 for a in self.alerts if a.severity == "page"
            ),
            "alerts": [a.to_dict() for a in self.alerts],
        }


# ----------------------------------------------------------------------
# violation-fraction extractors (window dict -> fraction in [0, inf))

def _latency_fraction_fn(hist_name: str, target_us: float):
    def fraction(window: dict) -> float:
        hist = window["histograms"].get(hist_name)
        if not hist or hist["count"] <= 0:
            return 0.0
        bounds = hist["bounds"]
        violating = 0
        for i, n in enumerate(hist["buckets"]):
            upper = bounds[i] if i < len(bounds) else None
            if upper is None or upper > target_us:
                violating += n
        return violating / hist["count"]

    return fraction


def _failed_read_fraction(window: dict) -> float:
    counters = window["counters"]
    failed = counters.get("sim.failed_reads", 0)
    completed = counters.get("sim.requests", 0)
    if completed <= 0:
        return 1.0 if failed else 0.0
    return failed / completed


def _gc_stall_fraction(window: dict) -> float:
    gc = window.get("resources", {}).get("gc_busy_us")
    if not gc:
        return 0.0
    span = window["t_end_us"] - window["t_start_us"]
    if span <= 0:
        return 0.0
    return sum(gc) / (span * len(gc))


def _keeper_violation(window: dict) -> float:
    return 1.0 if window["counters"].get("keeper.fallbacks", 0) > 0 else 0.0
