"""Live windowed telemetry over the metrics registry.

A :class:`TelemetrySink` samples the :class:`~repro.obs.registry.MetricsRegistry`
on a fixed simulated-time interval and closes each interval into a
**delta-encoded window**: counter increments, histogram bucket-count
deltas, current gauge values, and per-resource busy/GC/wait time deltas.
Windows stream to a schema-versioned JSONL file (one header record, one
record per window) — exactly the in-run training input the generative
storage-model line of work consumes, and the evaluation substrate for the
SLO watchdog (:mod:`repro.obs.slo`).

The sink schedules its ticks as **weak events**
(:meth:`repro.ssd.engine.EventLoop.every`): they fire while real work is
pending and are dropped once only samplers remain, so an armed sink never
extends the run's makespan — a telemetry-on run is byte-identical to a
telemetry-off run.  A final :meth:`flush` closes the partial tail window
after the loop drains.
"""

from __future__ import annotations

import json

from .registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["TelemetrySink", "TELEMETRY_SCHEMA_VERSION", "load_header"]

#: bump when the window record layout changes
TELEMETRY_SCHEMA_VERSION = 1

#: fields of the stream header record (R007 round-trip contract with
#: TelemetrySink.header; the obs export summary emits a subset)
_HEADER_FIELDS = frozenset({
    "kind", "schema_version", "interval_us", "windows", "channels", "dies",
})


def load_header(doc: dict) -> dict:
    """Validate a telemetry stream header (round-trip reader).

    The first line of a ``to_jsonl`` stream must parse to this record;
    consumers call this before trusting any window line.
    """
    if doc.get("schema_version") != TELEMETRY_SCHEMA_VERSION:
        raise ValueError(
            f"telemetry header has schema_version "
            f"{doc.get('schema_version')!r}; this tool reads version "
            f"{TELEMETRY_SCHEMA_VERSION}"
        )
    missing = _HEADER_FIELDS - set(doc)
    if missing and doc.get("kind") == "header":
        raise ValueError(
            f"telemetry header is missing fields: {sorted(missing)}"
        )
    return doc


class TelemetrySink:
    """Periodic delta-encoded registry sampler (weakly scheduled)."""

    def __init__(self, interval_us: float, *, watchdog=None) -> None:
        if interval_us <= 0:
            raise ValueError("interval_us must be positive")
        self.interval_us = interval_us
        #: closed windows, oldest first (plain dicts, JSON-ready)
        self.windows: list[dict] = []
        #: optional :class:`repro.obs.slo.SloWatchdog`; fed every window
        self.watchdog = watchdog
        self._loop = None
        self._registry: MetricsRegistry | None = None
        self._channels = ()
        self._dies = ()
        self._last_ts_us = 0.0
        self._last_events = 0
        self._last_counters: dict[str, float] = {}
        self._last_hist: dict[str, tuple[list[int], float, int]] = {}
        self._last_res: dict[str, list[float]] = {}

    # ------------------------------------------------------------------
    def attach(self, loop, registry: MetricsRegistry, *,
               channels=(), dies=()) -> None:
        """Arm the sink on ``loop``: baseline now, then sample weakly.

        Call after the run's initial events are scheduled.  Ticks are
        weak (:meth:`EventLoop.every`), so the sink cannot keep the loop
        alive or move ``now`` past the last real event.
        """
        self._loop = loop
        self._registry = registry
        self._channels = tuple(channels)
        self._dies = tuple(dies)
        self._last_ts_us = loop.now
        self._last_events = loop.events_processed
        self._rebaseline()
        loop.every(self.interval_us, self._sample)

    def _rebaseline(self) -> None:
        registry = self._registry
        self._last_counters = {}
        self._last_hist = {}
        for name in registry.names():
            metric = registry.get(name)
            if isinstance(metric, Counter):
                self._last_counters[name] = metric.value
            elif isinstance(metric, Histogram):
                self._last_hist[name] = (
                    list(metric.counts), metric.total, metric.count
                )
        self._last_res = {
            "channel_busy_us": [c.busy_time_us for c in self._channels],
            "die_busy_us": [d.busy_time_us for d in self._dies],
            "gc_busy_us": [d.gc_busy_time_us for d in self._dies],
            "channel_wait_us": [c.wait_time_us for c in self._channels],
            "die_wait_us": [d.wait_time_us for d in self._dies],
        }

    def _sample(self) -> None:
        self._record_window(self._loop.now)

    def flush(self) -> None:
        """Close the final partial window after the loop drained."""
        if self._loop is not None:
            self._record_window(self._loop.now)

    # ------------------------------------------------------------------
    def _record_window(self, now: float) -> None:
        span = now - self._last_ts_us
        if span <= 0:
            return
        registry = self._registry
        counters: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for name in registry.names():
            metric = registry.get(name)
            if isinstance(metric, Counter):
                delta = metric.value - self._last_counters.get(name, 0)
                if delta:
                    counters[name] = delta
                self._last_counters[name] = metric.value
            elif isinstance(metric, Histogram):
                last_counts, last_total, last_count = self._last_hist.get(
                    name, ([0] * len(metric.counts), 0.0, 0)
                )
                dcount = metric.count - last_count
                if dcount:
                    histograms[name] = {
                        "count": dcount,
                        "sum": metric.total - last_total,
                        "bounds": list(metric.bounds),
                        "buckets": [
                            c - lc for c, lc in zip(metric.counts, last_counts)
                        ],
                    }
                self._last_hist[name] = (
                    list(metric.counts), metric.total, metric.count
                )
        gauges = {
            name: registry.get(name).value
            for name in registry.names()
            if isinstance(registry.get(name), Gauge)
        }
        resources = {}
        if self._channels or self._dies:
            current = {
                "channel_busy_us": [c.busy_time_us for c in self._channels],
                "die_busy_us": [d.busy_time_us for d in self._dies],
                "gc_busy_us": [d.gc_busy_time_us for d in self._dies],
                "channel_wait_us": [c.wait_time_us for c in self._channels],
                "die_wait_us": [d.wait_time_us for d in self._dies],
            }
            resources = {
                key: [v - lv for v, lv in zip(vals, self._last_res[key])]
                for key, vals in current.items()
            }
            self._last_res = current
        events = self._loop.events_processed - self._last_events
        self._last_events = self._loop.events_processed
        window = {
            "kind": "window",
            "seq": len(self.windows),
            "t_start_us": self._last_ts_us,
            "t_end_us": now,
            "events": events,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "resources": resources,
        }
        self._last_ts_us = now
        self.windows.append(window)
        if self.watchdog is not None:
            self.watchdog.observe(window)

    # ------------------------------------------------------------------
    def header(self) -> dict:
        """The stream's schema-versioned header record."""
        return {
            "kind": "header",
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "interval_us": self.interval_us,
            "windows": len(self.windows),
            "channels": len(self._channels),
            "dies": len(self._dies),
        }

    def to_jsonl(self) -> str:
        """Header line followed by one JSON line per window."""
        lines = [json.dumps(self.header())]
        lines.extend(json.dumps(w) for w in self.windows)
        return "\n".join(lines) + "\n"

    def write_jsonl(self, path) -> int:
        """Write the stream to ``path``; returns the window count."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())
        return len(self.windows)
