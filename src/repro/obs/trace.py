"""Structured trace recorder.

One :class:`TraceEvent` is emitted per interesting simulation moment —
``request_submit``, ``subrequest_dispatch``, ``channel_acquire`` /
``channel_release`` (and the die equivalents), ``gc_start`` / ``gc_end``,
``keeper_switch`` — carrying the simulated timestamp, a track (the
resource or actor the event belongs to), a category, and free-form args.

The recorder is a bounded ring buffer (``capacity`` newest events are
kept; older ones are dropped and counted) with optional 1-in-N sampling
for very long runs.  :data:`NULL_RECORDER` is the disabled-path object:
its ``emit`` does nothing, and components test ``recorder.enabled`` (or
hold ``None``) so the instrumented hot paths stay no-op cheap.

Export formats: JSONL (one event per line, schema below) via
:meth:`TraceRecorder.to_jsonl`, and the Chrome trace format via
:mod:`repro.obs.chrometrace`.

JSONL schema::

    {"ts_us": float, "name": str, "track": str, "cat": str,
     "dur_us": float | null, "args": object | null}
"""

from __future__ import annotations

from collections import deque
import json
from typing import Iterable

__all__ = [
    "TraceEvent",
    "TraceRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "EVENT_NAMES",
    "match_pairs",
]

#: Canonical event vocabulary (components may add more; these are the
#: names the exporters and tests rely on).
EVENT_NAMES = (
    "request_submit",
    "subrequest_dispatch",
    "channel_acquire",
    "channel_release",
    "die_acquire",
    "die_release",
    "gc_start",
    "gc_end",
    "keeper_switch",
    "slo_alert",
    "tenant_migration",
    "fleet_slo_alert",
)


class TraceEvent:
    """One timestamped trace record."""

    __slots__ = ("ts_us", "name", "track", "cat", "dur_us", "args")

    def __init__(
        self,
        ts_us: float,
        name: str,
        track: str = "",
        cat: str = "sim",
        dur_us: float | None = None,
        args: dict | None = None,
    ) -> None:
        self.ts_us = ts_us
        self.name = name
        self.track = track
        self.cat = cat
        self.dur_us = dur_us
        self.args = args

    def to_dict(self) -> dict:
        return {
            "ts_us": self.ts_us,
            "name": self.name,
            "track": self.track,
            "cat": self.cat,
            "dur_us": self.dur_us,
            "args": self.args,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEvent({self.ts_us:.1f}us {self.name} {self.track})"


class TraceRecorder:
    """Ring-buffered, samplable event sink."""

    #: real recorders report True; the null recorder False
    enabled = True

    def __init__(self, capacity: int = 65_536, sample_every: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.capacity = capacity
        self.sample_every = sample_every
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        #: events offered to the recorder (including sampled-out/evicted)
        self.offered = 0
        #: events skipped by 1-in-N sampling
        self.sampled_out = 0
        #: events evicted by the ring buffer
        self.evicted = 0

    def emit(
        self,
        ts_us: float,
        name: str,
        track: str = "",
        cat: str = "sim",
        dur_us: float | None = None,
        args: dict | None = None,
    ) -> None:
        self.offered += 1
        if self.sample_every > 1 and self.offered % self.sample_every:
            self.sampled_out += 1
            return
        if len(self._events) == self.capacity:
            self.evicted += 1
        self._events.append(TraceEvent(ts_us, name, track, cat, dur_us, args))

    def __len__(self) -> int:
        return len(self._events)

    def events(self, name: str | None = None) -> list[TraceEvent]:
        """Recorded events in emission order, optionally filtered by name."""
        if name is None:
            return list(self._events)
        return [e for e in self._events if e.name == name]

    def clear(self) -> None:
        self._events.clear()

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One compact JSON object per line (trailing newline included)."""
        lines = [json.dumps(e.to_dict()) for e in self._events]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path) -> int:
        """Write the JSONL export to ``path``; returns the event count."""
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())
        return len(self._events)

    @staticmethod
    def read_jsonl(path) -> list[TraceEvent]:
        """Load a JSONL export back into events (round-trip for analysis)."""
        events = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                d = json.loads(line)
                events.append(
                    TraceEvent(
                        d["ts_us"], d["name"], d.get("track", ""),
                        d.get("cat", "sim"), d.get("dur_us"), d.get("args"),
                    )
                )
        return events


class NullRecorder:
    """Disabled-path recorder: every operation is a no-op."""

    enabled = False
    capacity = 0
    sample_every = 1
    offered = 0
    sampled_out = 0
    evicted = 0

    def emit(self, *args, **kwargs) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def events(self, name: str | None = None) -> list[TraceEvent]:
        return []

    def clear(self) -> None:
        pass

    def to_jsonl(self) -> str:
        return ""

    def write_jsonl(self, path) -> int:
        with open(path, "w"):
            pass
        return 0


#: Shared no-op instance (stateless, safe to reuse everywhere).
NULL_RECORDER = NullRecorder()


def match_pairs(
    events: Iterable[TraceEvent], start_name: str, end_name: str, *, by_track: bool = True
) -> list[tuple[TraceEvent, TraceEvent]]:
    """Pair ``start_name`` events with the next ``end_name`` on the track.

    Used by tests and analysis to check acquire/release discipline.
    Raises ``ValueError`` when an end event has no pending start (a
    truncated ring buffer can legitimately drop the starts — callers
    should pair only untruncated traces).
    """
    pending: dict[str, list[TraceEvent]] = {}
    pairs: list[tuple[TraceEvent, TraceEvent]] = []
    for event in events:
        key = event.track if by_track else ""
        if event.name == start_name:
            pending.setdefault(key, []).append(event)
        elif event.name == end_name:
            stack = pending.get(key)
            if not stack:
                raise ValueError(
                    f"{end_name} on track {key!r} at {event.ts_us} without "
                    f"a pending {start_name}"
                )
            pairs.append((stack.pop(0), event))
    return pairs
