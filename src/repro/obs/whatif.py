"""Counterfactual what-if engine (exact causal profiling).

Coz-style causal profilers answer "what would speeding up X buy?" by
*virtually* speeding X up — inserting compensating delays everywhere
else and measuring the shift.  Our simulator needs no such trick: it is
deterministic and seeded, so the counterfactual can simply be **run** —
re-simulate the identical request trace with one configuration knob
scaled (:meth:`repro.ssd.config.SSDConfig.scale_knob`) or the channel
allocation replaced, and compare totals.  The resulting *virtual
speedup* table is exact, not a perturbation estimate, and the top row
is re-verified by running it a second time and asserting bit-identical
totals (determinism is the load-bearing assumption; this check makes
its failure loud).

Knobs whose scaled value violates configuration validation (e.g.
doubling ``gc_threshold`` past the restore watermark's legal range on
an aggressive config) are reported as ``inapplicable`` rather than
failing the sweep.

The module also hosts the **keeper-decision explainer**: each
:class:`~repro.core.keeper.KeeperDecision` carries the predicted and
realised mean latency of its decision window; :func:`explain_decisions`
attributes the gap between them to attribution phases in proportion to
the run's realised phase mix, so "the model was 80us optimistic" comes
with "and the optimism is mostly unmodelled GC stalls".

Like the rest of ``repro.obs``, nothing here touches a live run: the
engine only *launches* fresh simulations from plain inputs (requests,
config, channel sets, an optional stateless
:class:`~repro.ssd.faults.FaultConfig`), so arming it cannot perturb
the baseline being explained.
"""

from __future__ import annotations

__all__ = [
    "WHATIF_SCHEMA_VERSION",
    "load_report",
    "Counterfactual",
    "DEFAULT_COUNTERFACTUALS",
    "WhatIfRow",
    "WhatIfReport",
    "run_whatif",
    "explain_decisions",
]

#: Bump when the report document layout changes shape.
WHATIF_SCHEMA_VERSION = 1

#: top-level fields of WhatIfReport.to_dict (R007 round-trip contract)
_WHATIF_FIELDS = frozenset({
    "schema_version", "requests", "baseline", "counterfactuals",
})


def load_report(doc: dict) -> dict:
    """Validate a persisted what-if report (round-trip reader)."""
    if doc.get("schema_version") != WHATIF_SCHEMA_VERSION:
        raise ValueError(
            f"what-if report has schema_version "
            f"{doc.get('schema_version')!r}; this tool reads version "
            f"{WHATIF_SCHEMA_VERSION}"
        )
    missing = _WHATIF_FIELDS - set(doc)
    if missing:
        raise ValueError(
            f"what-if report is missing fields: {sorted(missing)}"
        )
    return doc


class Counterfactual:
    """One hypothetical to re-simulate.

    Either a config-knob scaling (``knob`` from
    :data:`repro.ssd.config.KNOBS` scaled by ``factor``) or an
    allocation swap (``allocation="shared"`` gives every tenant every
    channel — the degenerate strategy the paper's keeper improves on).
    """

    __slots__ = ("name", "description", "knob", "factor", "allocation")

    def __init__(
        self,
        name: str,
        description: str,
        *,
        knob: str | None = None,
        factor: float = 1.0,
        allocation: str | None = None,
    ) -> None:
        if (knob is None) == (allocation is None):
            raise ValueError(
                "exactly one of knob= or allocation= must be given"
            )
        if allocation is not None and allocation != "shared":
            raise ValueError(f"unknown allocation counterfactual {allocation!r}")
        self.name = name
        self.description = description
        self.knob = knob
        self.factor = factor
        self.allocation = allocation

    def apply(self, cfg, sets):
        """Return the ``(cfg, sets)`` this hypothetical simulates.

        Raises ``ValueError`` when the scaled config is invalid — the
        sweep records that as ``inapplicable``.
        """
        if self.allocation == "shared":
            every = list(range(cfg.channels))
            return cfg, {wid: list(every) for wid in sets}
        return cfg.scale_knob(self.knob, self.factor), sets


#: The standard sweep: one hypothetical per timing knob the paper's
#: design space cares about, plus the shared-allocation strategy swap.
DEFAULT_COUNTERFACTUALS: tuple[Counterfactual, ...] = (
    Counterfactual(
        "bus_2x", "channel bus twice as fast",
        knob="bus_bandwidth", factor=2.0,
    ),
    Counterfactual(
        "tR_half", "flash read (tR) latency halved",
        knob="read_latency", factor=0.5,
    ),
    Counterfactual(
        "tPROG_half", "flash program (tPROG) latency halved",
        knob="write_latency", factor=0.5,
    ),
    Counterfactual(
        "erase_half", "block erase (tBERS) latency halved",
        knob="erase_latency", factor=0.5,
    ),
    Counterfactual(
        "no_cmd_overhead", "zero per-command bus overhead",
        knob="command_overhead", factor=0.0,
    ),
    Counterfactual(
        "gc_earlier", "GC watermarks doubled (reclaim earlier, more slack)",
        knob="gc_threshold", factor=2.0,
    ),
    Counterfactual(
        "shared_allocation", "all tenants share every channel",
        allocation="shared",
    ),
)


class WhatIfRow:
    """Outcome of one counterfactual re-simulation."""

    __slots__ = (
        "name", "description", "status", "total_latency_us", "makespan_us",
        "mean_read_us", "mean_write_us", "speedup", "makespan_speedup",
        "verified", "note",
    )

    def __init__(
        self,
        name: str,
        description: str,
        status: str,
        *,
        total_latency_us: float = 0.0,
        makespan_us: float = 0.0,
        mean_read_us: float = 0.0,
        mean_write_us: float = 0.0,
        speedup: float = 0.0,
        makespan_speedup: float = 0.0,
        verified: bool = False,
        note: str = "",
    ) -> None:
        #: ``ok`` or ``inapplicable`` (scaled config failed validation)
        self.status = status
        self.name = name
        self.description = description
        self.total_latency_us = total_latency_us
        self.makespan_us = makespan_us
        self.mean_read_us = mean_read_us
        self.mean_write_us = mean_write_us
        #: virtual speedup of the paper's objective:
        #: baseline total latency / counterfactual total latency
        self.speedup = speedup
        self.makespan_speedup = makespan_speedup
        #: the counterfactual was re-simulated a second time and the
        #: totals matched exactly (determinism re-proven for this row)
        self.verified = verified
        self.note = note

    def to_dict(self) -> dict:
        out = {"name": self.name, "description": self.description,
               "status": self.status}
        if self.status == "ok":
            out.update(
                total_latency_us=self.total_latency_us,
                makespan_us=self.makespan_us,
                mean_read_us=self.mean_read_us,
                mean_write_us=self.mean_write_us,
                speedup=self.speedup,
                makespan_speedup=self.makespan_speedup,
                verified=self.verified,
            )
        if self.note:
            out["note"] = self.note
        return out


class WhatIfReport:
    """Baseline metrics plus the ranked virtual-speedup table."""

    __slots__ = (
        "baseline_total_latency_us", "baseline_makespan_us",
        "baseline_mean_read_us", "baseline_mean_write_us",
        "requests", "rows",
    )

    def __init__(
        self,
        *,
        baseline_total_latency_us: float,
        baseline_makespan_us: float,
        baseline_mean_read_us: float,
        baseline_mean_write_us: float,
        requests: int,
        rows: list[WhatIfRow],
    ) -> None:
        self.baseline_total_latency_us = baseline_total_latency_us
        self.baseline_makespan_us = baseline_makespan_us
        self.baseline_mean_read_us = baseline_mean_read_us
        self.baseline_mean_write_us = baseline_mean_write_us
        self.requests = requests
        self.rows = rows

    def ranked(self) -> list[WhatIfRow]:
        """Applicable rows, largest virtual speedup first."""
        ok = [row for row in self.rows if row.status == "ok"]
        ok.sort(key=lambda row: (-row.speedup, row.name))
        return ok

    def best(self) -> WhatIfRow | None:
        ranked = self.ranked()
        return ranked[0] if ranked else None

    def to_dict(self) -> dict:
        return {
            "schema_version": WHATIF_SCHEMA_VERSION,
            "requests": self.requests,
            "baseline": {
                "total_latency_us": self.baseline_total_latency_us,
                "makespan_us": self.baseline_makespan_us,
                "mean_read_us": self.baseline_mean_read_us,
                "mean_write_us": self.baseline_mean_write_us,
            },
            "counterfactuals": [row.to_dict() for row in self.ranked()]
            + [
                row.to_dict() for row in self.rows if row.status != "ok"
            ],
        }

    def format(self) -> str:
        """Human-readable speedup table (embedded in ``repro explain``)."""
        lines = [
            f"what-if over {self.requests} requests (baseline total "
            f"latency {self.baseline_total_latency_us / 1e6:.3f}s):"
        ]
        for row in self.ranked():
            mark = " *verified*" if row.verified else ""
            lines.append(
                f"  {row.name:<18} {row.speedup:>6.2f}x total latency  "
                f"({row.makespan_speedup:.2f}x makespan)  "
                f"{row.description}{mark}"
            )
        for row in self.rows:
            if row.status != "ok":
                lines.append(
                    f"  {row.name:<18} inapplicable: {row.note}"
                )
        return "\n".join(lines)


# ----------------------------------------------------------------------
def _reset(requests) -> None:
    # completion stamps are the only state a run leaves on the trace
    for request in requests:
        request.complete_us = -1.0


def _simulate(requests, cfg, sets, faults):
    from ..ssd.simulator import simulate  # lazy: obs must not import ssd at module load

    _reset(requests)
    result = simulate(requests, cfg, sets, faults=faults)
    return result


def _metrics(result) -> tuple[float, float, float, float]:
    return (
        result.total_latency_us,
        result.makespan_us,
        result.mean_read_us,
        result.mean_write_us,
    )


def run_whatif(
    requests,
    cfg,
    sets,
    *,
    faults=None,
    counterfactuals: "tuple[Counterfactual, ...] | list[Counterfactual] | None" = None,
    verify: bool = True,
    baseline=None,
    log=None,
) -> WhatIfReport:
    """Sweep ``counterfactuals`` by exact re-simulation of one trace.

    ``faults`` must be a stateless :class:`~repro.ssd.faults.FaultConfig`
    (not a used injector) so every run draws the identical fault
    sequence.  ``baseline`` optionally passes an already-computed
    :class:`~repro.ssd.metrics.SimulationResult` for the unmodified
    inputs — the sweep then skips re-running it (callers that just
    simulated the baseline, like ``repro explain``, avoid one run).

    ``verify=True`` re-simulates the top-ranked counterfactual and
    raises ``RuntimeError`` if the totals are not bit-identical — a
    failed re-verification means the simulator lost determinism, which
    would silently invalidate the whole table.
    """
    from ..ssd.faults import FaultInjector  # lazy, cycle guard

    if isinstance(faults, FaultInjector):
        raise TypeError(
            "pass the FaultConfig, not a FaultInjector: an injector is "
            "stateful and would give each re-simulation a different "
            "fault sequence"
        )
    if counterfactuals is None:
        counterfactuals = DEFAULT_COUNTERFACTUALS
    if baseline is None:
        baseline = _simulate(requests, cfg, sets, faults)
    base_total_us, base_makespan_us, base_read_us, base_write_us = _metrics(
        baseline
    )

    rows: list[WhatIfRow] = []
    results: dict[str, tuple[float, float, float, float]] = {}
    for cf in counterfactuals:
        try:
            cf_cfg, cf_sets = cf.apply(cfg, sets)
        except ValueError as exc:
            rows.append(
                WhatIfRow(cf.name, cf.description, "inapplicable",
                          note=str(exc))
            )
            continue
        metrics = _metrics(_simulate(requests, cf_cfg, cf_sets, faults))
        results[cf.name] = metrics
        total_us, makespan_us, read_us, write_us = metrics
        rows.append(
            WhatIfRow(
                cf.name, cf.description, "ok",
                total_latency_us=total_us,
                makespan_us=makespan_us,
                mean_read_us=read_us,
                mean_write_us=write_us,
                speedup=base_total_us / total_us if total_us else 0.0,
                makespan_speedup=(
                    base_makespan_us / makespan_us if makespan_us else 0.0
                ),
            )
        )
        if log is not None:
            log(f"what-if {cf.name}: {rows[-1].speedup:.2f}x")

    report = WhatIfReport(
        baseline_total_latency_us=base_total_us,
        baseline_makespan_us=base_makespan_us,
        baseline_mean_read_us=base_read_us,
        baseline_mean_write_us=base_write_us,
        requests=len(requests),
        rows=rows,
    )
    if verify:
        best = report.best()
        if best is not None:
            by_name = {cf.name: cf for cf in counterfactuals}
            cf_cfg, cf_sets = by_name[best.name].apply(cfg, sets)
            rerun = _metrics(_simulate(requests, cf_cfg, cf_sets, faults))
            if rerun != results[best.name]:
                raise RuntimeError(
                    f"counterfactual {best.name!r} is not reproducible: "
                    f"first run {results[best.name]} vs re-run {rerun}; "
                    "the simulator lost determinism"
                )
            best.verified = True
    # don't leave the last counterfactual's completion stamps on the
    # shared request objects
    _reset(requests)
    return report


# ----------------------------------------------------------------------
def explain_decisions(decisions, breakdown) -> list[dict]:
    """Attribute each keeper decision's predicted-vs-realised gap to phases.

    ``decisions`` is the run's ``obs.decisions`` list
    (:class:`~repro.core.keeper.KeeperDecision`); ``breakdown`` the run's
    :class:`~repro.obs.attribution.LatencyBreakdown` (may be ``None`` —
    the gap is then reported without a phase split).  The split is
    proportional to the realised phase mix: the keeper's feature model
    has no phase-level view, so the best available explanation of its
    optimism/pessimism is *where the realised latency actually went*.
    """
    fractions = breakdown.phase_fractions() if breakdown is not None else None
    out: list[dict] = []
    for decision in decisions:
        predicted_us = decision.predicted_mean_us
        realised_us = decision.realised_mean_us
        entry = {
            "time_us": decision.time_us,
            "strategy": decision.strategy,
            "window_requests": decision.window_requests,
            "predicted_mean_us": predicted_us,
            "realised_mean_us": realised_us,
        }
        if decision.fallback_reason:
            entry["fallback_reason"] = decision.fallback_reason
        if predicted_us is None or realised_us is None:
            # fallback decisions carry no prediction; the last window of
            # a run may never see its realised mean
            entry["gap_us"] = None
        else:
            gap_us = realised_us - predicted_us
            entry["gap_us"] = gap_us
            if fractions is not None:
                entry["gap_by_phase_us"] = {
                    name: gap_us * fraction
                    for name, fraction in fractions.items()
                    if fraction != 0.0
                }
        out.append(entry)
    return out
