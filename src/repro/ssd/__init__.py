"""Multi-channel SSD simulator substrate (SSDSim-style).

Public surface:

* :class:`SSDConfig` — device geometry and timing (Table I defaults);
* :class:`SSDSimulator` / :func:`simulate` — exact event-driven simulation;
* :class:`FastLatencyModel` / :func:`fast_simulate` — vectorised
  approximation for bulk strategy sweeps;
* :class:`IORequest` / :class:`OpType` — the trace record consumed by both;
* :class:`SimulationResult` — latency summary both engines return;
* :class:`PageAllocMode` — static vs dynamic page allocation per tenant.
"""

from .buffer import AccessResult, BufferConfig, BufferStats, WriteBuffer
from .config import GiB, KiB, MiB, SSDConfig
from .controller import FTLController
from .engine import ComposedLoop, EventLoop
from .fastmodel import FastLatencyModel, fast_simulate
from .faults import FaultConfig, FaultExpectation, FaultInjector
from .fleet import Fleet, FleetResult, MigrationPlan, MigrationRecord, seeded_placement
from .ftl import PageAllocMode
from .geometry import Geometry, PhysicalAddress
from .metrics import LatencyAccumulator, OpStats, SimulationResult
from .request import IORequest, OpType, SubRequest
from .simulator import SSDSimulator, simulate
from .timing import ServiceTimes

__all__ = [
    "AccessResult",
    "BufferConfig",
    "BufferStats",
    "WriteBuffer",
    "SSDConfig",
    "FaultConfig",
    "FaultExpectation",
    "FaultInjector",
    "KiB",
    "MiB",
    "GiB",
    "Geometry",
    "PhysicalAddress",
    "IORequest",
    "OpType",
    "SubRequest",
    "ServiceTimes",
    "LatencyAccumulator",
    "OpStats",
    "SimulationResult",
    "FTLController",
    "SSDSimulator",
    "simulate",
    "ComposedLoop",
    "EventLoop",
    "Fleet",
    "FleetResult",
    "MigrationPlan",
    "MigrationRecord",
    "seeded_placement",
    "FastLatencyModel",
    "fast_simulate",
    "PageAllocMode",
]
