"""DRAM write-back buffer with read hits.

Figure 1 of the paper shows the controller's DRAM buffer; SSDSim models one
in front of the FTL.  This module adds the same layer as an *optional*
simulator feature (the paper's experiments run without it, and so do this
repository's reproduction benches — the buffer has its own ablation bench).

Semantics (classic write-back, LRU):

* a **write** lands in DRAM and completes at DRAM latency; the page is
  dirty.  If the buffer is full, the least-recently-used page is evicted
  first — a dirty eviction emits a flash write the device must perform.
* a **read** of a buffered page (dirty or clean) completes at DRAM latency;
  a miss goes to flash, and the page is optionally *read-allocated* into
  the buffer as clean.

The buffer tracks hit/miss/eviction statistics; the simulator charges
timing.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

__all__ = ["BufferConfig", "BufferStats", "AccessResult", "WriteBuffer"]


@dataclass(frozen=True)
class BufferConfig:
    """Capacity and timing of the DRAM buffer."""

    #: buffer capacity in flash pages
    capacity_pages: int = 1024
    #: DRAM access latency charged for hits/absorbed writes (microseconds)
    dram_latency_us: float = 2.0
    #: allocate buffer entries for read misses (clean)
    read_allocate: bool = True

    def __post_init__(self) -> None:
        if self.capacity_pages < 1:
            raise ValueError("capacity_pages must be >= 1")
        if self.dram_latency_us < 0:
            raise ValueError("dram_latency_us must be non-negative")


@dataclass
class BufferStats:
    """Counters of buffer behaviour."""

    write_hits: int = 0
    write_misses: int = 0
    read_hits: int = 0
    read_misses: int = 0
    clean_evictions: int = 0
    dirty_evictions: int = 0

    @property
    def read_hit_rate(self) -> float:
        total = self.read_hits + self.read_misses
        return self.read_hits / total if total else 0.0

    @property
    def write_absorb_rate(self) -> float:
        """Writes coalesced onto an already-buffered page."""
        total = self.write_hits + self.write_misses
        return self.write_hits / total if total else 0.0

    def publish(self, registry) -> None:
        """Copy the counters into a metrics registry under ``buffer.*``."""
        for name in (
            "write_hits", "write_misses", "read_hits", "read_misses",
            "clean_evictions", "dirty_evictions",
        ):
            counter = registry.counter(f"buffer.{name}")
            counter.value = getattr(self, name)
        registry.gauge("buffer.read_hit_rate").set(self.read_hit_rate)
        registry.gauge("buffer.write_absorb_rate").set(self.write_absorb_rate)


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one buffer access.

    ``hit`` — served from DRAM; ``flash_writes`` — global LPNs whose dirty
    contents must be programmed to flash as a consequence of this access
    (evictions).
    """

    hit: bool
    flash_writes: tuple[int, ...] = field(default_factory=tuple)


class WriteBuffer:
    """LRU write-back buffer keyed by global LPN."""

    def __init__(self, config: BufferConfig) -> None:
        self.config = config
        #: LPN -> dirty flag; OrderedDict keeps LRU order (oldest first)
        self._entries: OrderedDict[int, bool] = OrderedDict()
        self.stats = BufferStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, glpn: int) -> bool:
        return glpn in self._entries

    def is_dirty(self, glpn: int) -> bool:
        return self._entries.get(glpn, False)

    # ------------------------------------------------------------------
    def write(self, glpn: int) -> AccessResult:
        """Buffer a host write; returns evicted dirty pages to program."""
        hit = glpn in self._entries
        if hit:
            self.stats.write_hits += 1
            self._entries.move_to_end(glpn)
            self._entries[glpn] = True
            return AccessResult(hit=True)
        self.stats.write_misses += 1
        evictions = self._make_room()
        self._entries[glpn] = True
        return AccessResult(hit=False, flash_writes=evictions)

    def read(self, glpn: int) -> AccessResult:
        """Look up a host read; misses may read-allocate (clean)."""
        if glpn in self._entries:
            self.stats.read_hits += 1
            self._entries.move_to_end(glpn)
            return AccessResult(hit=True)
        self.stats.read_misses += 1
        if not self.config.read_allocate:
            return AccessResult(hit=False)
        evictions = self._make_room()
        self._entries[glpn] = False
        return AccessResult(hit=False, flash_writes=evictions)

    def flush(self) -> tuple[int, ...]:
        """Evict everything; returns the dirty LPNs to program."""
        dirty = tuple(lpn for lpn, is_dirty in self._entries.items() if is_dirty)
        self.stats.dirty_evictions += len(dirty)
        self.stats.clean_evictions += len(self._entries) - len(dirty)
        self._entries.clear()
        return dirty

    # ------------------------------------------------------------------
    def _make_room(self) -> tuple[int, ...]:
        """Evict LRU entries until one slot is free; return dirty LPNs."""
        flash_writes: list[int] = []
        while len(self._entries) >= self.config.capacity_pages:
            lpn, dirty = self._entries.popitem(last=False)
            if dirty:
                self.stats.dirty_evictions += 1
                flash_writes.append(lpn)
            else:
                self.stats.clean_evictions += 1
        return tuple(flash_writes)
