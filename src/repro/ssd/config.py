"""SSD hardware configuration.

:class:`SSDConfig` captures the structural and timing parameters of the
simulated device.  The defaults reproduce Table I of the SSDKeeper paper
(16 KiB pages, 128 pages/block, 4096 blocks/plane, 4 planes/chip,
2 chips/channel, 8 channels, 20 us read, 200 us write, 1.5 ms erase,
512 GiB physical capacity).

All times in this package are expressed in **microseconds** and all sizes in
**bytes** unless a name says otherwise.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = ["SSDConfig", "KNOBS", "KiB", "MiB", "GiB"]

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

#: Counterfactual knob name -> config fields it scales.  The what-if
#: engine (``repro.obs.whatif``) re-simulates a run with one knob scaled
#: by a factor; keeping the mapping here, next to the fields, means a
#: renamed field breaks loudly instead of silently freezing a knob.
#: ``gc_threshold`` scales *both* watermarks so the hysteresis band
#: keeps its shape (``__post_init__`` enforces threshold < restore).
KNOBS: dict[str, tuple[str, ...]] = {
    "bus_bandwidth": ("channel_bandwidth_mbps",),
    "read_latency": ("read_latency_us",),
    "write_latency": ("write_latency_us",),
    "erase_latency": ("erase_latency_us",),
    "command_overhead": ("command_overhead_us",),
    "gc_threshold": ("gc_threshold", "gc_restore"),
}


@dataclass(frozen=True)
class SSDConfig:
    """Structural and timing description of one SSD device.

    The geometry forms the hierarchy ``channel -> chip -> die -> plane ->
    block -> page``.  A die is the unit that accepts and executes flash
    commands; a plane has its own page/cache registers; a block is the erase
    unit and a page the read/write unit.

    Parameters mirror Table I of the paper; ``dies_per_chip`` is implicit in
    the paper (capacity arithmetic requires 1) and kept explicit here so other
    devices can be modelled.
    """

    #: Number of independent channels (buses) in the controller.
    channels: int = 8
    #: Flash chips (packages) attached to each channel.
    chips_per_channel: int = 2
    #: Dies per chip; each die executes one flash command at a time.
    dies_per_chip: int = 1
    #: Planes per die; planes add register-level parallelism.
    planes_per_die: int = 4
    #: Blocks per plane; a block is the erase unit.
    blocks_per_plane: int = 4096
    #: Pages per block; a page is the read/program unit.
    pages_per_block: int = 128
    #: Bytes per flash page.
    page_size: int = 16 * KiB

    #: Flash array read (tR) latency in microseconds.
    read_latency_us: float = 20.0
    #: Flash array program (tPROG) latency in microseconds.
    write_latency_us: float = 200.0
    #: Block erase (tBERS) latency in microseconds.
    erase_latency_us: float = 1500.0
    #: Channel bus bandwidth used to move one page between controller and
    #: chip registers, in MB/s.  400 MB/s moves a 16 KiB page in 40 us,
    #: which is in line with ONFI 3-era buses modelled by SSDSim.
    channel_bandwidth_mbps: float = 400.0
    #: Fixed per-command bus overhead (command/address cycles), microseconds.
    command_overhead_us: float = 0.2

    #: Fraction of blocks kept free per plane before GC triggers.
    gc_threshold: float = 0.02
    #: GC stops reclaiming once this free fraction is restored.
    gc_restore: float = 0.04
    #: Over-provisioning fraction of the logical space exposed to tenants.
    overprovisioning: float = 0.07

    def __post_init__(self) -> None:
        for field in (
            "channels",
            "chips_per_channel",
            "dies_per_chip",
            "planes_per_die",
            "blocks_per_plane",
            "pages_per_block",
            "page_size",
        ):
            value = getattr(self, field)
            if not isinstance(value, int) or value <= 0:
                raise ValueError(f"{field} must be a positive integer, got {value!r}")
        for field in (
            "read_latency_us",
            "write_latency_us",
            "erase_latency_us",
            "channel_bandwidth_mbps",
        ):
            value = getattr(self, field)
            if value <= 0:
                raise ValueError(f"{field} must be positive, got {value!r}")
        if self.command_overhead_us < 0:
            raise ValueError("command_overhead_us must be non-negative")
        if not 0 < self.gc_threshold < self.gc_restore < 1:
            raise ValueError("require 0 < gc_threshold < gc_restore < 1")
        if not 0 <= self.overprovisioning < 1:
            raise ValueError("overprovisioning must be in [0, 1)")

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def chips(self) -> int:
        """Total chip count across the device."""
        return self.channels * self.chips_per_channel

    @property
    def dies(self) -> int:
        """Total die count across the device."""
        return self.chips * self.dies_per_chip

    @property
    def planes(self) -> int:
        """Total plane count across the device."""
        return self.dies * self.planes_per_die

    @property
    def pages_per_plane(self) -> int:
        return self.blocks_per_plane * self.pages_per_block

    @property
    def pages_per_chip(self) -> int:
        return self.pages_per_plane * self.planes_per_die * self.dies_per_chip

    @property
    def pages_per_channel(self) -> int:
        return self.pages_per_chip * self.chips_per_channel

    @property
    def total_pages(self) -> int:
        return self.pages_per_channel * self.channels

    @property
    def physical_capacity_bytes(self) -> int:
        return self.total_pages * self.page_size

    @property
    def logical_pages(self) -> int:
        """Pages exposed to tenants after over-provisioning."""
        return int(self.total_pages * (1.0 - self.overprovisioning))

    @property
    def page_transfer_us(self) -> float:
        """Time to move one page over the channel bus, in microseconds."""
        return self.page_size / self.channel_bandwidth_mbps  # repro-lint: disable=R001 (MB/s equals bytes/us, so bytes divided by it is microseconds)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def paper(cls) -> "SSDConfig":
        """The exact Table-I configuration (512 GiB, 8 channels)."""
        return cls()

    @classmethod
    def small(cls, *, channels: int = 8, blocks_per_plane: int = 64) -> "SSDConfig":
        """A shrunken device for tests and fast sweeps.

        Keeps the channel/chip topology of the paper but reduces the block
        count so that GC behaviour can be exercised with short traces.
        """
        return cls(channels=channels, blocks_per_plane=blocks_per_plane)

    def replace(self, **changes: object) -> "SSDConfig":
        """Return a copy with ``changes`` applied (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    def scale_knob(self, knob: str, factor: float) -> "SSDConfig":
        """Return a copy with one :data:`KNOBS` entry scaled by ``factor``.

        Raises ``KeyError`` for an unknown knob and lets
        ``__post_init__``'s :class:`ValueError` propagate when the
        scaled value is out of range (e.g. ``gc_threshold`` scaled past
        1) — the what-if engine treats that as "knob inapplicable to
        this configuration" rather than an error.
        """
        fields = KNOBS[knob]
        return self.replace(
            **{field: getattr(self, field) * factor for field in fields}
        )

    def describe(self) -> str:
        """Human-readable one-paragraph summary (used by examples)."""
        cap = self.physical_capacity_bytes / GiB
        return (
            f"SSD: {self.channels} channels x {self.chips_per_channel} chips, "
            f"{self.dies_per_chip} die(s)/chip, {self.planes_per_die} planes/die, "
            f"{self.blocks_per_plane} blocks/plane, {self.pages_per_block} pages/block, "
            f"{self.page_size // KiB} KiB pages => {cap:.1f} GiB physical; "
            f"tR={self.read_latency_us:.0f}us tPROG={self.write_latency_us:.0f}us "
            f"tBERS={self.erase_latency_us:.0f}us bus={self.channel_bandwidth_mbps:.0f}MB/s"
        )
