"""FTL controller: ties channel allocation, page placement, mapping and GC.

The controller is the policy layer between host requests and the flash
array.  It is configured with

* ``channel_sets`` — workload id → list of channel indices that workload may
  occupy (produced by a :mod:`repro.core.strategies` allocation, or "all
  channels" for a traditional shared SSD);
* ``page_modes`` — workload id → :class:`~repro.ssd.ftl.page_alloc.PageAllocMode`
  (the hybrid page allocator of the paper assigns STATIC to read-dominated
  and DYNAMIC to write-dominated tenants).

Each tenant gets a private logical address space (``tenant_lpn_space`` pages)
so tenants never alias each other's data — the multi-tenant setting of the
paper, where a ``workloadID`` travels with every request.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .config import SSDConfig
from .faults import FaultInjector, FaultWorkItem
from .ftl.gc import GarbageCollector
from .ftl.mapping import FlashArrayState, PlaneState
from .ftl.page_alloc import LoadFn, PageAllocMode, StaticPagePlacer, make_placer

__all__ = ["FTLController"]

#: Consecutive program failures tolerated on one plane before the write is
#: re-dispatched to a different plane of the tenant's channel set.
_MAX_PROGRAM_ATTEMPTS = 4


def _idle_load(_plane_index: int) -> tuple:
    """Load probe used when no simulator is attached (everything idle)."""
    return (0,)


class FTLController:
    """Per-device FTL instance."""

    def __init__(
        self,
        config: SSDConfig,
        channel_sets: Mapping[int, Sequence[int]],
        page_modes: Mapping[int, PageAllocMode] | None = None,
        *,
        load_fn: LoadFn | None = None,
        tenant_lpn_space: int | None = None,
        obs=None,
        faults: FaultInjector | None = None,
        sanitizer=None,
    ) -> None:
        if not channel_sets:
            raise ValueError("channel_sets must name at least one workload")
        self.config = config
        self.state = FlashArrayState(config)
        self.geometry = self.state.geometry
        #: optional :class:`repro.obs.Observability`; the controller and its
        #: GC publish counters into ``obs.registry`` when attached
        self.obs = obs
        #: optional :class:`repro.ssd.faults.FaultInjector`; when attached,
        #: programs and erases may fail and retire blocks
        self.faults = faults
        #: optional :class:`repro.analysis.Sanitizer`; when attached, block
        #: retirements and GC passes re-check conservation and bijectivity
        self.sanitizer = sanitizer
        if sanitizer is not None:
            self.state.mapping.attach_sanitizer(sanitizer)
        self._planes_per_channel = (
            config.chips_per_channel * config.dies_per_chip * config.planes_per_die
        )
        #: optional :class:`repro.obs.attribution.AttributionCollector`
        #: carried by ``obs``; notes which tenant triggered GC work
        self._attribution = obs.attribution if obs is not None else None
        self.gc = GarbageCollector(
            self.state,
            metrics=obs.registry if obs is not None else None,
            faults=faults,
            sanitizer=sanitizer,
            attribution=self._attribution,
        )
        self.load_fn = load_fn or _idle_load
        self.channel_sets = {wid: sorted(set(chs)) for wid, chs in channel_sets.items()}
        for wid, chs in self.channel_sets.items():
            if not chs:
                raise ValueError(f"workload {wid} has an empty channel set")
            for ch in chs:
                if not 0 <= ch < config.channels:
                    raise ValueError(f"workload {wid}: channel {ch} out of range")

        n_tenants = len(self.channel_sets)
        if tenant_lpn_space is None:
            tenant_lpn_space = config.logical_pages // max(1, n_tenants)
        self.tenant_lpn_space = tenant_lpn_space

        modes = dict(page_modes or {})
        self.page_modes = {
            wid: modes.get(wid, PageAllocMode.STATIC) for wid in self.channel_sets
        }
        viable = self._plane_viable if faults is not None else None
        self._placers = {
            wid: make_placer(
                self.page_modes[wid], self.geometry, chs, self._probe_load, viable
            )
            for wid, chs in self.channel_sets.items()
        }
        # Static placers used for pre-seeding reads of never-written data,
        # regardless of the tenant's write mode: pre-existing data is assumed
        # striped across the tenant's channels.
        self._seed_placers = {
            wid: StaticPagePlacer(self.geometry, chs)
            for wid, chs in self.channel_sets.items()
        }
        #: pages pre-seeded on behalf of reads of cold data
        self.seeded_pages = 0

    # ------------------------------------------------------------------
    def _probe_load(self, plane_index: int) -> tuple:
        """Dynamic-placement load key: simulator load, then plane fullness."""
        return (*self.load_fn(plane_index), -self.state.planes[plane_index].free_pages)

    def _plane_viable(self, plane_index: int) -> bool:
        """Placement health filter: planes retired down to nothing are out."""
        return self.state.planes[plane_index].usable_pages > 0

    def channel_of_plane(self, plane_index: int) -> int:
        """Channel whose bus serves ``plane_index``."""
        return plane_index // self._planes_per_channel

    def global_lpn(self, workload_id: int, lpn: int) -> int:
        """Namespace a tenant-relative LPN into the device-wide LPN space."""
        if lpn >= self.tenant_lpn_space:
            raise ValueError(
                f"workload {workload_id} LPN {lpn} exceeds tenant space "
                f"{self.tenant_lpn_space}"
            )
        return workload_id * self.tenant_lpn_space + lpn

    # ------------------------------------------------------------------
    def place_write(self, workload_id: int, lpn: int) -> tuple[int, list]:
        """Allocate a physical page for a write; run GC if needed.

        Returns ``(ppn, work)`` where ``work`` carries the timing cost of
        any blocks reclaimed by GC — and, under fault injection, of any
        blocks retired by program failures — as a consequence of this write.
        """
        placer = self._placers.get(workload_id)
        if placer is None:
            raise KeyError(f"unknown workload id {workload_id}")
        glpn = self.global_lpn(workload_id, lpn)
        plane_index = placer.place(lpn)
        plane = self.state.planes[plane_index]
        work: list = []
        if not plane.has_free_page():
            work.extend(self.gc.collect(plane))
            if not plane.has_free_page():
                plane_index, plane = self._fallback_plane(workload_id, plane_index)
        if self.faults is not None:
            ppn, plane = self._program_with_faults(
                glpn, workload_id, plane_index, plane, work
            )
        else:
            ppn = self.state.write(glpn, plane)
        work.extend(self.gc.maybe_collect(plane))
        if work:
            attribution = self._attribution
            if attribution is not None:
                attribution.note_gc_trigger(workload_id, len(work))
        return ppn, work

    # ------------------------------------------------------------------
    def _program_with_faults(
        self,
        glpn: int,
        workload_id: int,
        plane_index: int,
        plane: PlaneState,
        work: list,
    ) -> tuple[int, PlaneState]:
        """Program ``glpn`` with the injector in the loop.

        Each failed program retires the target block (valid data relocated,
        capacity written off) and the page is re-dispatched to the plane's
        next block; after ``_MAX_PROGRAM_ATTEMPTS`` consecutive failures —
        or when the plane can no longer spare a replacement block — the
        write moves to another plane of the tenant's channel set.
        """
        assert self.faults is not None  # only dispatched on the faulted path
        attempts = 0
        while True:
            channel = self.channel_of_plane(plane_index)
            block = plane.next_program_block()
            if not self.faults.program_fails(channel, plane.erase_count[block]):
                return self.state.write(glpn, plane), plane
            work.append(self._retire_program_block(plane, block, work))
            attempts += 1
            if attempts >= _MAX_PROGRAM_ATTEMPTS or not plane.has_free_page():
                plane_index, plane = self._fallback_plane(workload_id, plane_index)
                # Final dispatch is not re-drawn: the failure budget for this
                # page is spent, and unbounded re-draws could starve a write.
                return self.state.write(glpn, plane), plane

    def _retire_program_block(
        self, plane: PlaneState, block: int, work: list
    ) -> FaultWorkItem:
        """Retire ``block`` after a program failure; relocate its valid data."""
        assert self.faults is not None  # only reached from the faulted path
        if block != plane.active_block:
            # The failure hit the head of the free pool (active was full):
            # the block is erased and empty — retire it outright.
            plane.retire_free_block(block)
            self.faults.note_retirement(plane.pages_per_block)
            if self.sanitizer is not None:
                self.sanitizer.after_retire(self.state, plane, block)
            return FaultWorkItem(plane.plane_index, block, 0)
        if plane.free_blocks == 0:
            # Need a replacement active block before we can retire this one.
            work.extend(self.gc.collect(plane))
        programmed = plane.next_page
        plane.begin_retire_active()  # raises if the plane is out of spares
        mapping = self.state.mapping
        moves = 0
        for ppn in plane.pages_in_block(block):
            lpn = mapping.reverse(ppn)
            if lpn is None:
                continue
            mapping.unbind_ppn(ppn)
            plane.invalidate(ppn)
            new_ppn = plane.allocate_page()
            mapping.bind(lpn, new_ppn)
            moves += 1
        plane.retire_block(block, programmed_pages=programmed)
        self.faults.note_retirement(plane.pages_per_block)
        if self.sanitizer is not None:
            self.sanitizer.after_retire(self.state, plane, block)
        return FaultWorkItem(plane.plane_index, block, moves)

    def resolve_read(self, workload_id: int, lpn: int) -> int:
        """Physical location of a read; pre-seeds cold data at zero time cost.

        Data never written inside the trace window is assumed to pre-exist on
        flash, striped statically across the tenant's channels (so the
        placement — which is all that matters for conflicts — is realistic),
        but no programming time is charged.
        """
        if workload_id not in self.channel_sets:
            raise KeyError(f"unknown workload id {workload_id}")
        glpn = self.global_lpn(workload_id, lpn)
        ppn = self.state.mapping.lookup(glpn)
        if ppn is not None:
            return ppn
        plane_index = self._seed_placers[workload_id].place(lpn)
        plane = self.state.planes[plane_index]
        if not plane.has_free_page():
            self.gc.collect(plane)
            if not plane.has_free_page():
                plane_index, plane = self._fallback_plane(workload_id, plane_index)
        ppn = self.state.write(glpn, plane)
        self.seeded_pages += 1
        return ppn

    def _fallback_plane(self, workload_id: int, avoid: int) -> tuple[int, PlaneState]:
        """Any plane in the tenant's channel set with space (last resort)."""
        for plane_index in self.geometry.planes_in_channels(self.channel_sets[workload_id]):
            if plane_index == avoid:
                continue
            plane = self.state.planes[plane_index]
            if plane.has_free_page():
                return plane_index, plane
            self.gc.collect(plane)
            if plane.has_free_page():
                return plane_index, plane
        raise RuntimeError(
            f"workload {workload_id}: no free pages in channels "
            f"{self.channel_sets[workload_id]} — footprint exceeds capacity"
        )

    # ------------------------------------------------------------------
    def reallocate(
        self,
        channel_sets: Mapping[int, Sequence[int]],
        page_modes: Mapping[int, PageAllocMode] | None = None,
    ) -> None:
        """Apply a new channel allocation mid-run (Algorithm 2's switch).

        Data already on flash stays where it is — reads keep resolving
        through the mapping table — but new writes and newly-seeded cold
        reads follow the new allocation.  The set of workload ids must not
        change (tenant address spaces are sized at construction).
        """
        new_sets = {wid: sorted(set(chs)) for wid, chs in channel_sets.items()}
        if set(new_sets) != set(self.channel_sets):
            raise ValueError("reallocation must cover exactly the same workloads")
        for wid, chs in new_sets.items():
            if not chs:
                raise ValueError(f"workload {wid} has an empty channel set")
            for ch in chs:
                if not 0 <= ch < self.config.channels:
                    raise ValueError(f"workload {wid}: channel {ch} out of range")
        self.channel_sets = new_sets
        if page_modes is not None:
            modes = dict(page_modes)
            self.page_modes = {
                wid: modes.get(wid, self.page_modes[wid]) for wid in new_sets
            }
        viable = self._plane_viable if self.faults is not None else None
        self._placers = {
            wid: make_placer(
                self.page_modes[wid], self.geometry, chs, self._probe_load, viable
            )
            for wid, chs in new_sets.items()
        }
        self._seed_placers = {
            wid: StaticPagePlacer(self.geometry, chs) for wid, chs in new_sets.items()
        }
        if self.obs is not None:
            self.obs.registry.counter("ftl.reallocations").inc()

    def mapped_pages(self) -> int:
        return self.state.mapped_pages()

    def describe(self) -> str:
        parts = [
            f"wid {wid}: ch{chs} {self.page_modes[wid].value}"
            for wid, chs in sorted(self.channel_sets.items())
        ]
        return "; ".join(parts)
