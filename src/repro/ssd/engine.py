"""Discrete-event simulation core.

A deliberately small DES kernel: an event heap plus priority-queued
:class:`Resource` objects.  Jobs acquire one resource at a time for a fixed
duration; when a resource frees it grants the highest-priority waiter.

Priorities are tuples ordered ascending; the simulator uses
``(priority_class, enqueue_time, seq)`` so that reads (class 0) overtake
garbage collection (class 1) and writes (class 2) that have not yet started —
the paper's "read operations ... have priority to respond because of the
lower flash chip accessing time".  A job already holding the resource is
never preempted (flash commands are not interruptible).
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Callable

__all__ = ["ComposedLoop", "EventLoop", "Resource", "PRIO_READ", "PRIO_GC", "PRIO_WRITE"]

PRIO_READ = 0
PRIO_GC = 1
PRIO_WRITE = 2


class EventLoop:
    """Minimal event loop: schedule callbacks at absolute times."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None], bool]] = []
        self._seq = count()
        self._weak_pending = 0
        self.now = 0.0
        self.events_processed = 0
        #: optional :class:`repro.analysis.Sanitizer`; when set, every event
        #: dispatch is checked for simulated-time monotonicity.
        self.sanitizer = None

    #: scheduling times this close below ``now`` are float-rounding residue
    #: from summed phase durations, not logic errors; they clamp to ``now``.
    TIME_EPSILON = 1e-9

    def schedule(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute time ``when`` (>= now).

        ``when`` within :data:`TIME_EPSILON` below ``now`` clamps to ``now``
        (chained ``start + duration`` arithmetic can round a hair under the
        current time); anything further in the past raises.
        """
        if when < self.now:
            if self.now - when > self.TIME_EPSILON:
                raise ValueError(f"cannot schedule in the past ({when} < {self.now})")
            when = self.now
        heapq.heappush(self._heap, (when, next(self._seq), callback, False))

    def schedule_weak(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule a *weak* event: one that never keeps the loop alive.

        Weak events dispatch normally while ordinary ("strong") work is
        pending, but once the heap holds only weak events an unbounded
        :meth:`run` drops them without dispatch — so periodic samplers
        scheduled this way can never extend ``now`` past the last real
        event and never perturb a run's makespan.  Bounded runs
        (``run(until=...)``) dispatch weak events up to the horizon like
        any other event.
        """
        if when < self.now:
            if self.now - when > self.TIME_EPSILON:
                raise ValueError(f"cannot schedule in the past ({when} < {self.now})")
            when = self.now
        heapq.heappush(self._heap, (when, next(self._seq), callback, True))
        self._weak_pending += 1

    def every(self, interval_us: float, fn: Callable[[], None]) -> None:
        """Weakly invoke ``fn()`` every ``interval_us`` of simulated time.

        The metronome re-arms only while strong work remains pending, so
        two concurrent samplers cannot keep each other alive: the tick
        chain dies with the last real event and any trailing weak tick is
        dropped by :meth:`run`.
        """
        if interval_us <= 0:
            raise ValueError("interval_us must be positive")

        def tick() -> None:
            fn()
            if self.pending_strong:
                self.schedule_weak(self.now + interval_us, tick)

        self.schedule_weak(self.now + interval_us, tick)

    @property
    def pending_strong(self) -> int:
        """Number of pending events that keep the loop alive."""
        return len(self._heap) - self._weak_pending

    def peek_when(self) -> float | None:
        """Absolute time of the next pending event, or ``None`` when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def step(self) -> bool:
        """Dispatch exactly one pending event (weak or strong).

        Returns ``True`` when an event was dispatched.  Unlike :meth:`run`
        this does not apply the weak-only drop rule — composition drivers
        (see :class:`ComposedLoop`) decide when a member is dormant.
        """
        if not self._heap:
            return False
        when, _, callback, weak = heapq.heappop(self._heap)
        if weak:
            self._weak_pending -= 1
        if self.sanitizer is not None:
            self.sanitizer.on_event(when, self.now)
        self.now = when
        self.events_processed += 1
        callback()
        return True

    def discard_weak(self) -> None:
        """Drop all remaining events if only weak ones remain.

        Mirrors the tail behaviour of an unbounded :meth:`run`: trailing
        samplers are discarded without dispatch so ``now`` stays at the
        last strong event.  A no-op while strong work is still pending.
        """
        if self._heap and self._weak_pending == len(self._heap):
            self._heap.clear()
            self._weak_pending = 0

    def run(self, until: float | None = None) -> None:
        """Process events until the heap drains (or ``until`` is reached).

        An unbounded run stops as soon as only weak events remain (see
        :meth:`schedule_weak`): the trailing weak events are discarded
        without dispatch, leaving ``now`` at the last strong event.
        """
        while self._heap:
            if until is None and self._weak_pending == len(self._heap):
                self._heap.clear()
                self._weak_pending = 0
                break
            when = self._heap[0][0]  # repro-lint: disable=R001 (heap entries are (when, seq, fn); when is microseconds by the DES contract)
            if until is not None and when > until:
                break
            self.step()

    def __bool__(self) -> bool:
        return bool(self._heap)


class ComposedLoop:
    """Deterministically interleave several :class:`EventLoop` members.

    Each member keeps its own clock (``loop.now`` stays a per-device
    makespan), but dispatch order is global: the driver repeatedly picks
    the *active* member whose next event is earliest — ties broken by
    member index, so composition is fully deterministic — and dispatches
    exactly one event via :meth:`EventLoop.step`.

    A member whose heap holds only weak events is *dormant*: it is skipped
    rather than drained, exactly replicating the single-loop rule that
    samplers never extend a makespan.  If a later event on another member
    schedules strong work onto a dormant member (e.g. a tenant migration),
    the member wakes and its pending weak ticks dispatch first in its own
    time order, so telemetry metronomes revive naturally.  When every
    member is dormant or empty the run ends and trailing weak events are
    discarded on all members.
    """

    def __init__(self, loops: list[EventLoop] | tuple[EventLoop, ...]) -> None:
        if not loops:
            raise ValueError("ComposedLoop needs at least one member loop")
        self.loops = list(loops)
        #: furthest simulated time any member has reached.
        self.now = 0.0
        self.events_processed = 0

    def _next_active(self) -> EventLoop | None:
        best = None
        best_when = 0.0
        for loop in self.loops:
            if loop.pending_strong == 0:
                continue
            when = loop._heap[0][0]  # repro-lint: disable=R001 (heap entries are (when, seq, fn); when is microseconds by the DES contract)
            if best is None or when < best_when:
                best = loop
                best_when = when
        return best

    def step(self) -> bool:
        """Dispatch one event on the earliest active member; False when done."""
        member = self._next_active()
        if member is None:
            return False
        member.step()
        if member.now > self.now:
            self.now = member.now
        self.events_processed += 1
        return True

    def run(self) -> None:
        """Run members to global quiescence, then drop trailing weak events."""
        while self.step():
            pass
        for loop in self.loops:
            loop.discard_weak()

    def __bool__(self) -> bool:
        return any(loop.pending_strong for loop in self.loops)


class Resource:
    """A serially-reusable resource with priority-ordered waiters.

    ``acquire`` grants immediately when idle, otherwise parks the job in a
    priority heap.  The holder calls nothing explicitly: the resource
    schedules its own release after the requested duration and then grants
    the next waiter.  ``on_grant`` callbacks receive the grant time.
    """

    __slots__ = (
        "loop", "name", "busy", "free_at", "_waiters", "_seq",
        "busy_time_us", "grants", "wait_time_us", "gc_busy_time_us",
        "trace", "kind", "sanitizer",
    )

    def __init__(self, loop: EventLoop, name: str = "", kind: str = "resource") -> None:
        self.loop = loop
        self.name = name
        self.busy = False
        self.free_at = 0.0
        self._waiters: list[tuple[tuple, int, float, float, Callable[[float], None]]] = []
        self._seq = count()
        # --- statistics ---
        self.busy_time_us = 0.0
        self.grants = 0
        self.wait_time_us = 0.0
        #: busy time booked for *internal* (GC-priority) work — copyback,
        #: erase, fault relocation.  Booked at grant time by the caller
        #: (see ``SSDSimulator._charge_gc``); latency attribution samples
        #: the delta across a host job's wait to separate GC stall from
        #: plain queueing.
        self.gc_busy_time_us = 0.0
        # --- observability (no-op unless a recorder is attached) ---
        #: optional :class:`repro.obs.trace.TraceRecorder`; when set, each
        #: grant emits ``{kind}_acquire`` (with the service duration) and
        #: each release emits ``{kind}_release``.
        self.trace = None
        self.kind = kind
        #: optional :class:`repro.analysis.Sanitizer`; when set, every
        #: grant is checked for mutual exclusion against shadow state.
        self.sanitizer = None

    def acquire(self, priority: tuple, duration_us: float, on_grant: Callable[[float], None]) -> None:
        """Request the resource for ``duration_us`` at ``priority`` (lower first).

        ``on_grant(start_us)`` fires when the job begins service; the
        resource auto-releases at ``start_us + duration_us``.
        """
        if duration_us < 0:
            raise ValueError("duration must be non-negative")
        if not self.busy:
            self._grant(self.loop.now, duration_us, on_grant, enqueued_us=self.loop.now)
        else:
            heapq.heappush(
                self._waiters,
                (priority, next(self._seq), self.loop.now, duration_us, on_grant),
            )

    @property
    def queue_depth(self) -> int:
        """Number of jobs currently waiting (excludes the holder)."""
        return len(self._waiters)

    def _grant(self, start_us: float, duration_us: float, on_grant: Callable[[float], None], enqueued_us: float) -> None:
        if self.sanitizer is not None:
            self.sanitizer.on_grant(self, start_us, duration_us)
        self.busy = True
        self.free_at = start_us + duration_us
        self.busy_time_us += duration_us
        self.grants += 1
        self.wait_time_us += start_us - enqueued_us
        if self.trace is not None:
            self.trace.emit(
                start_us, f"{self.kind}_acquire", self.name, "resource",
                dur_us=duration_us, args={"wait_us": start_us - enqueued_us},
            )
        on_grant(start_us)
        self.loop.schedule(self.free_at, self._release)

    def _release(self) -> None:
        self.busy = False
        if self.trace is not None:
            self.trace.emit(
                self.loop.now, f"{self.kind}_release", self.name, "resource"
            )
        if self._waiters:
            _, _, enqueued_us, duration_us, on_grant = heapq.heappop(self._waiters)
            self._grant(self.loop.now, duration_us, on_grant, enqueued_us=enqueued_us)

    def utilization(self, elapsed_us: float) -> float:
        """Fraction of ``elapsed_us`` this resource spent busy."""
        if elapsed_us <= 0:
            return 0.0
        return min(1.0, self.busy_time_us / elapsed_us)
