"""Vectorised timeline model for bulk strategy sweeps.

Label generation (Algorithm 1) simulates every mixed workload under **all 42
channel-allocation strategies**.  The event-driven simulator is exact but
slow for that purpose, so this module provides a fast approximation that
keeps the mechanics that decide *which strategy wins*:

* per-die serialisation of flash operations (tR / tPROG);
* per-channel serialisation of page transfers;
* read = die-then-bus, write = bus-then-die phase order;
* tenant channel sets and page-allocation striping.

Deliberate simplifications (documented in DESIGN.md and validated for
strategy-*ranking* agreement against the DES in
``tests/integration/test_fastmodel_fidelity.py``):

* FIFO service per resource instead of read-priority preemption of queued
  writes;
* no garbage collection (the label-generation windows are far too short to
  trigger it on a Table-I-sized device);
* dynamic page allocation approximated by write-sequence striping over the
  tenant's planes (captures the load spreading, not the instantaneous-load
  adaptivity).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from .config import SSDConfig
from .faults import FaultConfig, FaultExpectation
from .ftl.page_alloc import PageAllocMode
from .geometry import Geometry
from .metrics import LatencyAccumulator, SimulationResult, build_result
from .request import IORequest, OpType
from .timing import ServiceTimes

__all__ = ["FastLatencyModel", "fast_simulate"]


class FastLatencyModel:
    """Approximate trace simulation with numpy-prepared timelines."""

    def __init__(
        self,
        config: SSDConfig,
        channel_sets: Mapping[int, Sequence[int]],
        page_modes: Mapping[int, PageAllocMode] | None = None,
        *,
        record_latencies: bool = False,
        obs=None,
        faults: FaultConfig | None = None,
    ) -> None:
        self.config = config
        #: optional :class:`repro.obs.Observability`; the fast model has no
        #: event stream to trace, but it publishes request counts and
        #: latency histograms into the registry after each run
        self.obs = obs
        self.geometry = Geometry(config)
        self.times = ServiceTimes.from_config(config)
        self.channel_sets = {wid: sorted(set(chs)) for wid, chs in channel_sets.items()}
        modes = dict(page_modes or {})
        self.page_modes = {
            wid: modes.get(wid, PageAllocMode.STATIC) for wid in self.channel_sets
        }
        self.record_latencies = record_latencies
        #: expected-value service-time derating under fault injection (the
        #: fast model has no per-block state to sample against; see
        #: :class:`~repro.ssd.faults.FaultExpectation`)
        self.fault_expectation = (
            FaultExpectation.from_config(faults) if faults is not None else None
        )
        c = config
        self._dies_per_channel = c.chips_per_channel * c.dies_per_chip
        self._planes_per_channel = self._dies_per_channel * c.planes_per_die

    # ------------------------------------------------------------------
    def _static_planes(self, lpns: np.ndarray, channels: list[int]) -> np.ndarray:
        """Vectorised static striping: LPN -> flat plane index."""
        chans = np.asarray(channels, dtype=np.int64)
        n = len(chans)
        c = self.config
        channel = chans[lpns % n]
        rest = lpns // n
        chip = rest % c.chips_per_channel
        rest = rest // c.chips_per_channel
        die = rest % c.dies_per_chip
        rest = rest // c.dies_per_chip
        plane = rest % c.planes_per_die
        return (
            channel * self._planes_per_channel
            + chip * (c.dies_per_chip * c.planes_per_die)
            + die * c.planes_per_die
            + plane
        )

    def _sequence_planes(self, count: int, channels: list[int]) -> np.ndarray:
        """Write-sequence striping over a tenant's planes (dynamic stand-in).

        Planes are interleaved channel-first so consecutive writes hit
        different channel buses (mirrors the DES placer's tie-breaking).
        """
        per_channel = np.asarray(
            [self.geometry.planes_in_channels([ch]) for ch in sorted(set(channels))],
            dtype=np.int64,
        )
        planes = per_channel.T.ravel()
        return planes[np.arange(count, dtype=np.int64) % len(planes)]

    # ------------------------------------------------------------------
    def run(self, requests: Iterable[IORequest]) -> SimulationResult:
        """Approximately simulate ``requests``; same result type as the DES."""
        ordered = sorted(requests, key=lambda r: r.arrival_us)
        n_req = len(ordered)
        if n_req == 0:
            return build_result(
                LatencyAccumulator(self.record_latencies),
                makespan_us=0.0,
                requests=0,
                subrequests=0,
            )

        lengths = np.array([r.length for r in ordered], dtype=np.int64)
        req_arrival_us = np.array([r.arrival_us for r in ordered])
        req_op = np.array([int(r.op) for r in ordered], dtype=np.int8)
        req_wid = np.array([r.workload_id for r in ordered], dtype=np.int64)
        req_lpn = np.array([r.lpn for r in ordered], dtype=np.int64)

        # Expand to sub-requests.
        total = int(lengths.sum())
        req_index = np.repeat(np.arange(n_req), lengths)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(lengths) - lengths, lengths
        )
        sub_lpn = req_lpn[req_index] + offsets
        sub_arrival_us = req_arrival_us[req_index]
        sub_op = req_op[req_index]
        sub_wid = req_wid[req_index]

        # Placement: plane index per sub-request.
        plane_idx = np.empty(total, dtype=np.int64)
        for wid, channels in self.channel_sets.items():
            mask = sub_wid == wid
            if not mask.any():
                continue
            is_write = mask & (sub_op == int(OpType.WRITE))
            is_read = mask & (sub_op == int(OpType.READ))
            if is_read.any():
                plane_idx[is_read] = self._static_planes(sub_lpn[is_read], channels)
            if is_write.any():
                if self.page_modes[wid] is PageAllocMode.STATIC:
                    plane_idx[is_write] = self._static_planes(
                        sub_lpn[is_write], channels
                    )
                else:
                    plane_idx[is_write] = self._sequence_planes(
                        int(is_write.sum()), channels
                    )
        unknown = set(np.unique(sub_wid)) - set(self.channel_sets)
        if unknown:
            raise KeyError(f"unknown workload ids in trace: {sorted(unknown)}")

        die_idx = plane_idx // self.config.planes_per_die
        chan_idx = plane_idx // self._planes_per_channel

        ends_us = self._timeline_us(sub_arrival_us, sub_op, die_idx, chan_idx)

        # Request latency = slowest page.
        starts = np.cumsum(lengths) - lengths
        req_end_us = np.maximum.reduceat(ends_us, starts)
        latencies_us = req_end_us - req_arrival_us

        acc = LatencyAccumulator(record_latencies=self.record_latencies)
        for wid in sorted(self.channel_sets):
            for op in (OpType.READ, OpType.WRITE):
                mask = (req_wid == wid) & (req_op == int(op))
                if not mask.any():
                    continue
                acc.set_stats(wid, op, _bulk_stats(latencies_us[mask], self.record_latencies))

        result = build_result(
            acc,
            makespan_us=float(req_end_us.max()),
            requests=n_req,
            subrequests=total,
        )
        if self.obs is not None:
            reg = self.obs.registry
            reg.counter("fastmodel.requests").inc(n_req)
            reg.counter("fastmodel.subrequests").inc(total)
            reg.gauge("fastmodel.makespan_us").set(result.makespan_us)
            for op, name in (
                (OpType.READ, "fastmodel.read_latency_us"),
                (OpType.WRITE, "fastmodel.write_latency_us"),
            ):
                mask = req_op == int(op)
                if mask.any():
                    reg.histogram(name).observe_many(latencies_us[mask].tolist())
        return result

    # ------------------------------------------------------------------
    def _timeline_us(
        self,
        arrival: np.ndarray,
        op: np.ndarray,
        die_idx: np.ndarray,
        chan_idx: np.ndarray,
    ) -> np.ndarray:
        """Sequential resource-timeline pass; returns per-sub-request end.

        Resources are *gap-aware* timelines (:class:`_GapTimeline`): when an
        operation's resource-request time lands inside an idle window left
        behind by an earlier out-of-order grant (a read's bus request fires
        at its die-end, after later-arriving writes already claimed the
        tail), it backfills that window — matching the work-conserving
        behaviour of the event-driven engine instead of cascading phantom
        queueing.
        """
        t = self.times
        read_die = t.read_die_us
        read_bus = t.read_bus_us
        write_bus = t.write_bus_us
        write_die = t.write_die_us
        if self.fault_expectation is not None:
            read_die *= self.fault_expectation.read_die_multiplier
            write_die *= self.fault_expectation.write_die_multiplier
        dies = [_GapTimeline() for _ in range(self.config.dies)]
        chans = [_GapTimeline() for _ in range(self.config.channels)]
        ends_us = np.empty(len(arrival))
        arrival_l = arrival.tolist()
        op_l = op.tolist()
        die_l = die_idx.tolist()
        chan_l = chan_idx.tolist()
        write_code = int(OpType.WRITE)
        for i in range(len(arrival_l)):
            a = arrival_l[i]
            die = dies[die_l[i]]
            chan = chans[chan_l[i]]
            if op_l[i] == write_code:
                be = chan.place(a, write_bus)
                e = die.place(be, write_die)
            else:
                de = die.place(a, read_die)
                e = chan.place(de, read_bus)
            ends_us[i] = e
        return ends_us


class _GapTimeline:
    """Single-server busy timeline with idle-gap backfilling.

    ``place(rt, dur)`` books ``dur`` units of service requested at time
    ``rt``: into the earliest remembered idle gap that fits (work
    conservation), else at the tail.  Gaps that end before the request time
    of every future job are pruned lazily — request times never decrease by
    more than the die/bus phase offsets, so a small horizon suffices.
    """

    __slots__ = ("tail", "gaps")

    #: gaps ending this far before a new request are dropped (us); phase
    #: offsets (tR, tPROG) are far below this.
    _PRUNE_HORIZON = 5_000.0

    def __init__(self) -> None:
        self.tail = 0.0
        self.gaps: list[list[float]] = []

    def place(self, rt: float, dur: float) -> float:
        """Book service requested at ``rt`` for ``dur``; return its end."""
        gaps = self.gaps
        if gaps:
            prune_before = rt - self._PRUNE_HORIZON
            while gaps and gaps[0][1] <= prune_before:
                gaps.pop(0)
            for gi in range(len(gaps)):
                gap = gaps[gi]
                gap_start = gap[0]
                start = rt if rt > gap_start else gap_start
                if gap[1] - start >= dur:
                    end = start + dur
                    if start - gap_start > 1e-9:
                        # keep the head of the gap; tail shrinks/splits
                        old_end = gap[1]
                        gap[1] = start
                        if old_end - end > 1e-9:
                            gaps.insert(gi + 1, [end, old_end])
                    else:
                        gap[0] = end
                        if gap[1] - end <= 1e-9:
                            del gaps[gi]
                    return end
        tail = self.tail
        if rt > tail:
            if rt - tail > 1e-9:
                gaps.append([tail, rt])
                if len(gaps) > 32:
                    gaps.pop(0)  # bound the memory; oldest gaps matter least
            end = rt + dur
        else:
            end = tail + dur
        self.tail = end
        return end


def _bulk_stats(latencies_us: np.ndarray, record: bool):
    """Build an OpStats from an array in one shot."""
    from .metrics import OpStats

    stats = OpStats(
        count=int(latencies_us.size),
        total_us=float(latencies_us.sum()),
        max_us=float(latencies_us.max()),
        min_us=float(latencies_us.min()),
    )
    if record:
        stats.samples = latencies_us.tolist()
    return stats


def fast_simulate(
    requests: Iterable[IORequest],
    config: SSDConfig,
    channel_sets: Mapping[int, Sequence[int]],
    page_modes: Mapping[int, PageAllocMode] | None = None,
    *,
    record_latencies: bool = False,
    obs=None,
    faults: FaultConfig | None = None,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`FastLatencyModel`."""
    model = FastLatencyModel(
        config, channel_sets, page_modes, record_latencies=record_latencies,
        obs=obs, faults=faults,
    )
    return model.run(requests)
