"""Seeded NAND fault injection.

Real flash fails in three ways this package previously ignored: reads come
back with uncorrectable-by-first-try bit errors and need ECC *read retries*
(each retry re-issues the sense with tuned thresholds, multiplying the die
occupancy); programs fail and force the FTL to retire the block and
re-dispatch the data; erases fail and retire the block outright.  SSDKeeper's
premise — that channel allocation must adapt to changing conditions — is only
exercised under such degraded regimes, so this module provides them as an
opt-in, fully deterministic fault model.

Design rules:

* **Deterministic.**  All randomness flows from one ``random.Random(seed)``;
  draws happen in discrete-event order, so two runs with the same seed and
  trace produce byte-identical results (asserted by
  ``tests/integration/test_fault_injection.py``).
* **Wear-coupled.**  Per-op probabilities escalate linearly with the target
  block's erase count (``p * (1 + wear_coupling * erases)``), reusing the
  erase counters the planes already keep — old blocks fail first, as on real
  NAND.
* **Opt-in and cheap when off.**  Every component takes ``faults=None``
  (same pattern as ``obs``) and pays one ``is not None`` branch per
  operation when disabled.

The injector is pure policy: it decides *whether* an operation fails and
keeps counters; the FTL owns the state response (bad-block retirement,
re-dispatch) and the simulator owns the timing response (retry latency,
failed-request surfacing).
"""

from __future__ import annotations

from dataclasses import dataclass
import random

__all__ = ["FaultConfig", "FaultInjector", "FaultWorkItem", "ReadOutcome"]

#: Effective per-op probabilities are clamped here so wear escalation can
#: never push an operation to certain failure (which would livelock the
#: program re-dispatch loop).
_MAX_EFFECTIVE_RATE = 0.999


@dataclass(frozen=True)
class FaultConfig:
    """Per-run fault-injection parameters (all probabilities per operation).

    The defaults are deliberately mild: visible error counters on a few
    thousand operations without turning the device into rubble.  Everything
    is off when the config itself is absent (``faults=None``).
    """

    #: RNG seed; same seed + same trace => identical run.
    seed: int = 1234
    #: Probability that one read *attempt* returns uncorrectable data and
    #: needs an ECC read retry (per read sub-request attempt).
    read_ber: float = 0.0
    #: Probability that one page program operation fails (retires the block).
    program_fail_rate: float = 0.0
    #: Probability that one block erase operation fails (retires the block).
    erase_fail_rate: float = 0.0
    #: Read retries attempted before the read is declared unrecoverable.
    max_read_retries: int = 3
    #: Linear wear escalation: effective rate = base * (1 + coupling * erases).
    wear_coupling: float = 0.0

    def __post_init__(self) -> None:
        for name in ("read_ber", "program_fail_rate", "erase_fail_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if self.max_read_retries < 0:
            raise ValueError("max_read_retries must be non-negative")
        if self.wear_coupling < 0:
            raise ValueError("wear_coupling must be non-negative")

    @property
    def any_enabled(self) -> bool:
        return bool(self.read_ber or self.program_fail_rate or self.erase_fail_rate)

    # ------------------------------------------------------------------
    def expected_read_retries(self) -> float:
        """Expected ECC retries per read at zero wear (for the fast model)."""
        p = min(self.read_ber, _MAX_EFFECTIVE_RATE)
        return sum(p ** k for k in range(1, self.max_read_retries + 1))


@dataclass(frozen=True)
class ReadOutcome:
    """Result of consulting the injector for one read sub-request."""

    #: ECC read retries performed (0 = clean first sense).
    retries: int
    #: True when ``max_read_retries`` retries were exhausted without success.
    unrecoverable: bool


@dataclass(frozen=True)
class FaultWorkItem:
    """Timing record of one program-failure retirement.

    ``moves`` valid pages were relocated out of the retired block
    (plane-internal copyback) and one program attempt was wasted; the
    simulator charges both to the plane's die, exactly as it charges
    :class:`~repro.ssd.ftl.gc.GCWorkItem` records.
    """

    plane_index: int
    block: int
    moves: int

    def die_us(self, times) -> float:
        """Die occupancy: relocation copybacks plus the failed program."""
        return self.moves * times.move_die_us + times.write_die_us


@dataclass
class _ChannelHealth:
    """Per-channel operation/error tallies for degradation decisions."""

    ops: int = 0
    errors: int = 0

    @property
    def error_rate(self) -> float:
        return self.errors / self.ops if self.ops else 0.0


class FaultInjector:
    """Deterministic, seeded fault oracle plus fault accounting.

    One injector serves one simulation run.  The hot-path entry points
    (:meth:`read_outcome`, :meth:`program_fails`, :meth:`erase_fails`) each
    draw from the shared RNG in event order and update per-channel health,
    so the keeper can ask :meth:`worst_channel` when deciding whether to
    degrade gracefully.
    """

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        # --- global counters (mirrored into the obs registry at run end) ---
        self.read_errors = 0  # reads needing >= 1 retry
        self.read_retries = 0  # total extra sense operations
        self.unrecoverable_reads = 0
        self.program_failures = 0
        self.erase_failures = 0
        self.retired_blocks = 0
        self.lost_pages = 0
        self._channels: dict[int, _ChannelHealth] = {}

    # ------------------------------------------------------------------
    def effective_rate(self, base: float, erase_count: int) -> float:
        """Wear-escalated per-op probability, clamped below certainty."""
        if base <= 0.0:
            return 0.0
        rate = base * (1.0 + self.config.wear_coupling * erase_count)
        return rate if rate < _MAX_EFFECTIVE_RATE else _MAX_EFFECTIVE_RATE

    def _health(self, channel: int) -> _ChannelHealth:
        health = self._channels.get(channel)
        if health is None:
            health = self._channels[channel] = _ChannelHealth()
        return health

    # ------------------------------------------------------------------
    def read_outcome(self, channel: int, erase_count: int) -> ReadOutcome:
        """Draw the retry/failure outcome for one read sub-request."""
        health = self._health(channel)
        health.ops += 1
        p = self.effective_rate(self.config.read_ber, erase_count)
        if p <= 0.0 or self._rng.random() >= p:
            return ReadOutcome(0, False)
        health.errors += 1
        self.read_errors += 1
        retries = 0
        while retries < self.config.max_read_retries:
            retries += 1
            self.read_retries += 1
            if self._rng.random() >= p:
                return ReadOutcome(retries, False)
        self.unrecoverable_reads += 1
        return ReadOutcome(retries, True)

    def program_fails(self, channel: int, erase_count: int) -> bool:
        """Draw whether one page program fails (block must then retire)."""
        health = self._health(channel)
        health.ops += 1
        p = self.effective_rate(self.config.program_fail_rate, erase_count)
        if p <= 0.0 or self._rng.random() >= p:
            return False
        health.errors += 1
        self.program_failures += 1
        return True

    def erase_fails(self, channel: int, erase_count: int) -> bool:
        """Draw whether one block erase fails (block must then retire)."""
        health = self._health(channel)
        health.ops += 1
        p = self.effective_rate(self.config.erase_fail_rate, erase_count)
        if p <= 0.0 or self._rng.random() >= p:
            return False
        health.errors += 1
        self.erase_failures += 1
        return True

    def note_retirement(self, pages_lost: int) -> None:
        """Account one retired block (``pages_lost`` capacity gone for good)."""
        self.retired_blocks += 1
        self.lost_pages += pages_lost

    # ------------------------------------------------------------------
    def channel_error_rate(self, channel: int) -> float:
        health = self._channels.get(channel)
        return health.error_rate if health is not None else 0.0

    def worst_channel(self) -> tuple[int, float]:
        """(channel, error_rate) of the unhealthiest channel seen so far."""
        worst, rate = -1, 0.0
        for channel, health in self._channels.items():
            if health.error_rate > rate:
                worst, rate = channel, health.error_rate
        return worst, rate

    def channel_error_rates(self) -> dict[int, float]:
        """Per-channel observed error rate (channels with traffic only)."""
        return {
            channel: health.error_rate
            for channel, health in sorted(self._channels.items())
        }

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Counter snapshot embedded into ``SimulationResult.extras``."""
        return {
            "read_errors": self.read_errors,
            "read_retries": self.read_retries,
            "unrecoverable_reads": self.unrecoverable_reads,
            "program_failures": self.program_failures,
            "erase_failures": self.erase_failures,
            "retired_blocks": self.retired_blocks,
            "lost_pages": self.lost_pages,
        }

    def publish(self, registry) -> None:
        """Mirror the counters into an obs registry as ``faults.*``.

        Per-channel error rates go in as gauges so ``repro stats --json``
        can show *where* the device is degrading, not just how much.
        """
        for name, value in self.summary().items():
            registry.counter(f"faults.{name}").value = value
        for channel, rate in self.channel_error_rates().items():
            registry.gauge(f"faults.channel.{channel}.error_rate").set(rate)


@dataclass(frozen=True)
class FaultExpectation:
    """Expected-value service-time inflation for the vectorised fast model.

    The fast model has no per-block state to sample against, so it derates
    deterministically: reads cost the expected number of ECC retries (at
    zero wear) and writes cost the expected re-program overhead.  This keeps
    fast-model predictions calibrated when the keeper replays an observed
    window under injected faults.
    """

    read_die_multiplier: float = 1.0
    write_die_multiplier: float = 1.0

    @classmethod
    def from_config(cls, config: FaultConfig) -> "FaultExpectation":
        return cls(
            read_die_multiplier=1.0 + config.expected_read_retries(),
            write_die_multiplier=1.0 + min(config.program_fail_rate, _MAX_EFFECTIVE_RATE),
        )


# Re-exported for the package façade.
__all__.append("FaultExpectation")
