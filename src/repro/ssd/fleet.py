"""Multi-device fleet substrate: N simulators under one composed loop.

A :class:`Fleet` interleaves N :class:`~repro.ssd.simulator.SSDSimulator`
instances through a :class:`~repro.ssd.engine.ComposedLoop`.  Each device
keeps its own event loop (so ``device.loop.now`` remains that device's
makespan, byte-identical to a solo run of the same per-device request
stream), while a dedicated *control loop* — always member 0, so it wins
timestamp ties — owns fleet-level actions:

* **arrival forwarding** — tenant requests are not pre-scheduled on any
  device; each arrival is a control event that looks up the tenant's
  *current* placement and bounces the request onto that device's loop at
  the same timestamp.  The bounce is what advances the device clock to
  the arrival time before :meth:`SSDSimulator.submit` runs.
* **migration** — :meth:`Fleet.migrate` flips the placement map entry, so
  every not-yet-forwarded request of the tenant replays on the
  destination device; requests already in flight on the source drain
  there.  The fleet records drain-start and first-completion-on-
  destination times for each migration (the ``tenant_migration`` span the
  observability plane emits).

The substrate is observability-free: it exposes ``on_complete`` /
``on_migration`` / ``on_migration_complete`` hooks that
:class:`repro.obs.fleet.FleetObserver` attaches to, keeping the
``repro.ssd`` layer import-clean.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from .engine import ComposedLoop, EventLoop
from .metrics import SimulationResult
from .request import IORequest
from .simulator import SSDSimulator

__all__ = ["Fleet", "FleetResult", "MigrationPlan", "MigrationRecord", "seeded_placement"]


def seeded_placement(n_tenants: int, n_devices: int, seed: int) -> dict[int, int]:
    """Deterministic seeded tenant -> device map (balanced round-robin).

    Tenants are shuffled by ``seed`` then dealt round-robin, so placements
    are balanced (device loads differ by at most one tenant) yet vary with
    the seed.  Same inputs always produce the same map.
    """
    if n_tenants < 1:
        raise ValueError("need at least one tenant")
    if n_devices < 1:
        raise ValueError("need at least one device")
    order = list(range(n_tenants))
    random.Random(seed).shuffle(order)
    placement = {tenant: i % n_devices for i, tenant in enumerate(order)}
    return dict(sorted(placement.items()))


@dataclass(frozen=True)
class MigrationPlan:
    """One scheduled migration: move ``tenant`` to ``dst`` at ``time_us``.

    The source device is whatever the placement map says when the plan
    fires, so chained migrations of one tenant compose naturally.
    """

    time_us: float
    tenant: int
    dst: int

    def __post_init__(self) -> None:
        if self.time_us < 0:
            raise ValueError("time_us must be non-negative")
        if self.tenant < 0:
            raise ValueError("tenant must be non-negative")
        if self.dst < 0:
            raise ValueError("dst must be non-negative")


@dataclass
class MigrationRecord:
    """What actually happened for one migration.

    ``start_us`` is drain-start (the instant the placement flipped);
    ``first_dst_complete_us`` is the first completion of the tenant on the
    destination device, or ``None`` if the tenant had no remaining
    requests.  Their difference is the ``tenant_migration`` span.
    """

    tenant: int
    src: int
    dst: int
    start_us: float
    requests_replayed: int = 0
    first_dst_complete_us: float | None = None

    @property
    def span_us(self) -> float | None:
        """Drain-start to first-destination-completion, if it happened."""
        if self.first_dst_complete_us is None:
            return None
        return self.first_dst_complete_us - self.start_us

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "src": self.src,
            "dst": self.dst,
            "start_us": self.start_us,
            "requests_replayed": self.requests_replayed,
            "first_dst_complete_us": self.first_dst_complete_us,
            "span_us": self.span_us,
        }


@dataclass
class FleetResult:
    """Everything a fleet run produced, per device and fleet-wide."""

    results: list[SimulationResult]
    placement_initial: dict[int, int]
    placement_final: dict[int, int]
    migrations: list[MigrationRecord]
    #: completions[device][tenant] -> number of that tenant's requests
    #: that completed on that device (conservation: sums to the tenant's
    #: trace length across devices)
    completions: list[dict[int, int]]
    makespan_us: float = 0.0
    events: int = 0

    def tenant_completions(self, tenant: int) -> int:
        """Total completions of ``tenant`` across every device."""
        return sum(per.get(tenant, 0) for per in self.completions)


class Fleet:
    """N simulators, a placement map, and a migration primitive.

    Parameters
    ----------
    sims:
        the device simulators, index = device id.  Each must still own an
        idle loop (fresh instances); the fleet composes their loops.
    placement:
        tenant -> device map.  Defaults to :func:`seeded_placement` over
        the tenants seen in ``run``'s traces.
    seed:
        seed for the default placement map.
    """

    def __init__(
        self,
        sims: Sequence[SSDSimulator],
        *,
        placement: Mapping[int, int] | None = None,
        seed: int = 0,
    ) -> None:
        if not sims:
            raise ValueError("a fleet needs at least one device")
        self.sims = list(sims)
        self.seed = seed
        self.placement: dict[int, int] = (
            dict(placement) if placement is not None else {}
        )
        for tenant, dev in self.placement.items():
            if not 0 <= dev < len(self.sims):
                raise ValueError(
                    f"tenant {tenant} placed on unknown device {dev}"
                )
        self.control = EventLoop()
        self.composed = ComposedLoop([self.control] + [s.loop for s in self.sims])
        self.migrations: list[MigrationRecord] = []
        #: per-device {tenant: completed-request count}
        self.completions: list[dict[int, int]] = [{} for _ in self.sims]
        # ---- hooks the observability plane attaches to (all optional) ----
        #: called with ``(device_id, request)`` after each request completes
        self.on_complete = None
        #: called with the :class:`MigrationRecord` at drain-start
        self.on_migration = None
        #: called with the record when its destination span closes
        self.on_migration_complete = None
        # migrations whose destination has not completed a request yet
        self._open_spans: dict[int, MigrationRecord] = {}
        self._traces: dict[int, list[IORequest]] = {}
        self._ran = False
        for dev_id, sim in enumerate(self.sims):
            sim.on_complete = self._completion_hook(dev_id, sim.on_complete)

    # ------------------------------------------------------------------
    def _completion_hook(self, dev_id: int, inner):
        def hook(req: IORequest) -> None:
            if inner is not None:
                inner(req)
            per = self.completions[dev_id]
            per[req.workload_id] = per.get(req.workload_id, 0) + 1
            rec = self._open_spans.get(req.workload_id)
            if rec is not None and rec.dst == dev_id:
                rec.first_dst_complete_us = self.sims[dev_id].loop.now
                del self._open_spans[req.workload_id]
                if self.on_migration_complete is not None:
                    self.on_migration_complete(rec)
            if self.on_complete is not None:
                self.on_complete(dev_id, req)

        return hook

    def _forward(self, tenant: int, req: IORequest):
        def forward() -> None:
            dev = self.placement[tenant]
            sim = self.sims[dev]
            # bounce: advance the device clock to the arrival time with a
            # device-loop event, then submit at that instant
            sim.loop.schedule(req.arrival_us, lambda: sim.submit(req))  # repro-lint: disable=R004 (trace arrivals are absolute times)

        return forward

    def migrate(self, tenant: int, dst: int) -> MigrationRecord:
        """Move ``tenant`` to device ``dst`` *now* (at control-loop time).

        Flips the placement entry so every not-yet-forwarded request of
        the tenant replays on the destination; in-flight work drains on
        the source.  Returns the record whose span closes at the tenant's
        first completion on the destination.
        """
        if not 0 <= dst < len(self.sims):
            raise ValueError(f"unknown destination device {dst}")
        if tenant not in self.placement:
            raise ValueError(f"tenant {tenant} has no placement")
        src = self.placement[tenant]
        now = self.control.now
        remaining = sum(
            1 for r in self._traces.get(tenant, ()) if r.arrival_us >= now
        )
        rec = MigrationRecord(
            tenant=tenant, src=src, dst=dst, start_us=now,
            requests_replayed=remaining,
        )
        self.placement[tenant] = dst
        self.migrations.append(rec)
        if remaining:
            self._open_spans[tenant] = rec
        if self.on_migration is not None:
            self.on_migration(rec)
        return rec

    # ------------------------------------------------------------------
    def run(
        self,
        tenant_traces: Mapping[int, Sequence[IORequest]],
        migrations: Sequence[MigrationPlan] = (),
    ) -> FleetResult:
        """Run every tenant trace to completion under the composed loop."""
        if self._ran:
            raise RuntimeError("a Fleet instance runs exactly once")
        self._ran = True
        self._traces = {
            t: sorted(reqs, key=lambda r: r.arrival_us)
            for t, reqs in tenant_traces.items()
        }
        if not self.placement:
            n_tenants = max(self._traces, default=0) + 1
            self.placement = seeded_placement(
                n_tenants, len(self.sims), self.seed
            )
        for tenant in self._traces:
            if tenant not in self.placement:
                raise ValueError(f"tenant {tenant} has no placement")
        placement_initial = dict(self.placement)
        # migrations first so a tie with an arrival applies the new home
        for plan in sorted(migrations, key=lambda p: (p.time_us, p.tenant)):
            self.control.schedule(
                plan.time_us,
                lambda p=plan: self.migrate(p.tenant, p.dst),
            )
        for tenant in sorted(self._traces):
            for req in self._traces[tenant]:
                self.control.schedule(
                    req.arrival_us, self._forward(tenant, req)
                )  # repro-lint: disable=R004 (trace arrivals are absolute times)
        for sim in self.sims:
            sim.arm_observers()
        self.composed.run()
        results = [sim.collect() for sim in self.sims]
        return FleetResult(
            results=results,
            placement_initial=placement_initial,
            placement_final=dict(self.placement),
            migrations=list(self.migrations),
            completions=[dict(per) for per in self.completions],
            makespan_us=self.composed.now,
            events=self.composed.events_processed,
        )
