"""Flash translation layer: address mapping, page allocation, GC, wear.

The FTL in this package is page-mapped and log-structured per plane: each
plane has one active block whose pages are consumed in order; overwrites
invalidate the old physical page; greedy garbage collection reclaims the
block with the fewest valid pages when the plane's free-block pool drops
below the configured threshold.
"""

from .gc import GarbageCollector, GCWorkItem
from .mapping import FlashArrayState, MappingTable, PlaneState
from .page_alloc import DynamicPagePlacer, PageAllocMode, StaticPagePlacer, make_placer
from .wear import WearTracker

__all__ = [
    "MappingTable",
    "PlaneState",
    "FlashArrayState",
    "PageAllocMode",
    "StaticPagePlacer",
    "DynamicPagePlacer",
    "make_placer",
    "GarbageCollector",
    "GCWorkItem",
    "WearTracker",
]
