"""Greedy garbage collection.

When a plane's free-block pool falls below the configured threshold, the
collector repeatedly picks the sealed block with the fewest valid pages,
copies its valid pages to the plane's active block (plane-internal copyback),
erases it, and returns it to the free pool — until the restore level is
reached or no victim would reclaim space.

State mutation is immediate (so subsequent allocations see reclaimed space);
the *timing* cost is returned as :class:`GCWorkItem` records that the
simulator charges to the plane's die as internal jobs.
"""

from __future__ import annotations

from dataclasses import dataclass

from .mapping import FlashArrayState, PlaneState

__all__ = ["GCWorkItem", "GarbageCollector"]


@dataclass(frozen=True)
class GCWorkItem:
    """Timing record of one reclaimed block: ``moves`` copybacks + 1 erase."""

    plane_index: int
    block: int
    moves: int


class GarbageCollector:
    """Greedy (min-valid-pages) victim selection per plane."""

    def __init__(self, state: FlashArrayState, *, metrics=None) -> None:
        self.state = state
        #: total blocks reclaimed
        self.collections = 0
        #: total valid pages copied (write amplification numerator)
        self.pages_moved = 0
        # observability: pre-bound registry counters (None when disabled)
        if metrics is not None:
            self._c_collections = metrics.counter("ftl.gc.collections")
            self._c_pages_moved = metrics.counter("ftl.gc.pages_moved")
        else:
            self._c_collections = None
            self._c_pages_moved = None

    def pick_victim(self, plane: PlaneState) -> int | None:
        """Sealed block with the fewest valid pages, or None if no candidate.

        A victim that is still fully valid reclaims nothing (the copyback
        consumes exactly as many pages as the erase frees), so it is not
        eligible.
        """
        best_block: int | None = None
        best_valid = plane.pages_per_block  # full block == not worth it
        for block in plane.sealed_blocks():
            valid = plane.valid_count[block]
            if valid < best_valid:
                best_valid = valid
                best_block = block
                if valid == 0:
                    break
        return best_block

    def maybe_collect(self, plane: PlaneState) -> list[GCWorkItem]:
        """Run GC on ``plane`` if below threshold; return timing work items."""
        if not self.state.needs_gc(plane):
            return []
        return self.collect(plane)

    def collect(self, plane: PlaneState) -> list[GCWorkItem]:
        """Reclaim blocks until the restore level (or no progress)."""
        items: list[GCWorkItem] = []
        while plane.free_blocks < self.state.gc_restore_blocks:
            victim = self.pick_victim(plane)
            if victim is None:
                break
            items.append(self._reclaim(plane, victim))
        return items

    def _reclaim(self, plane: PlaneState, victim: int) -> GCWorkItem:
        mapping = self.state.mapping
        moves = 0
        for ppn in plane.pages_in_block(victim):
            lpn = mapping.reverse(ppn)
            if lpn is None:
                continue
            mapping.unbind_ppn(ppn)
            plane.invalidate(ppn)
            new_ppn = plane.allocate_page()
            mapping.bind(lpn, new_ppn)
            moves += 1
        plane.erase_block(victim)
        self.collections += 1
        self.pages_moved += moves
        if self._c_collections is not None:
            self._c_collections.inc()
            self._c_pages_moved.inc(moves)
        return GCWorkItem(plane.plane_index, victim, moves)
