"""Greedy garbage collection.

When a plane's free-block pool falls below the configured threshold, the
collector repeatedly picks the sealed block with the fewest valid pages,
copies its valid pages to the plane's active block (plane-internal copyback),
erases it, and returns it to the free pool — until the restore level is
reached or no victim would reclaim space.

State mutation is immediate (so subsequent allocations see reclaimed space);
the *timing* cost is returned as :class:`GCWorkItem` records that the
simulator charges to the plane's die as internal jobs.

With a :class:`~repro.ssd.faults.FaultInjector` attached, each erase is
allowed to fail: the victim's valid pages have already been moved out, but
the block is retired into the plane's bad-block table instead of rejoining
the free pool.  The erase *attempt* still costs full ``tBERS`` (the returned
work item's timing is unchanged); only the reclaimed capacity is lost.
Retired blocks are never sealed or free, so victim selection skips them
structurally.
"""

from __future__ import annotations

from dataclasses import dataclass

from .mapping import FlashArrayState, PlaneState

__all__ = ["GCWorkItem", "GarbageCollector"]


@dataclass(frozen=True)
class GCWorkItem:
    """Timing record of one reclaimed block: ``moves`` copybacks + 1 erase.

    ``retired`` marks a victim whose erase failed — the time was spent, but
    the block went to the bad-block table instead of the free pool.
    """

    plane_index: int
    block: int
    moves: int
    retired: bool = False

    def die_us(self, times) -> float:
        """Die occupancy of this reclaim: copybacks plus the erase attempt."""
        return self.moves * times.move_die_us + times.erase_us


class GarbageCollector:
    """Greedy (min-valid-pages) victim selection per plane."""

    def __init__(
        self,
        state: FlashArrayState,
        *,
        metrics=None,
        faults=None,
        sanitizer=None,
        attribution=None,
    ) -> None:
        self.state = state
        #: optional :class:`repro.ssd.faults.FaultInjector`; when attached,
        #: erases may fail and retire their block
        self.faults = faults
        #: optional :class:`repro.analysis.Sanitizer`; when attached, every
        #: reclaimed block re-checks conservation and mapping bijectivity
        self.sanitizer = sanitizer
        #: optional :class:`repro.obs.attribution.AttributionCollector`;
        #: when attached, every reclaim is noted against its channel
        self.attribution = attribution
        cfg = state.config
        self._planes_per_channel = (
            cfg.chips_per_channel * cfg.dies_per_chip * cfg.planes_per_die
        )
        #: total blocks reclaimed (successfully erased)
        self.collections = 0
        #: total valid pages copied (write amplification numerator)
        self.pages_moved = 0
        # observability: pre-bound registry counters (None when disabled)
        if metrics is not None:
            self._c_collections = metrics.counter("ftl.gc.collections")
            self._c_pages_moved = metrics.counter("ftl.gc.pages_moved")
        else:
            self._c_collections = None
            self._c_pages_moved = None

    def pick_victim(self, plane: PlaneState) -> int | None:
        """Sealed block with the fewest valid pages, or None if no candidate.

        A victim that is still fully valid reclaims nothing (the copyback
        consumes exactly as many pages as the erase frees), so it is not
        eligible.  Bad blocks are never sealed, so they are never candidates.

        Ties on valid count break toward the least-erased block, then the
        lowest index — a fully deterministic order (bare set iteration
        would let the victim, and thus the whole downstream timeline, vary
        with the process hash seed) that also keeps reclaim pressure from
        hammering one block.
        """
        best_block: int | None = None
        best_key: tuple[int, int, int] | None = None
        for block in sorted(plane.sealed_blocks()):
            valid = plane.valid_count[block]
            if valid >= plane.pages_per_block:
                continue  # full block == not worth it
            key = (valid, plane.erase_count[block], block)
            if best_key is None or key < best_key:
                best_key = key
                best_block = block
        return best_block

    def maybe_collect(self, plane: PlaneState) -> list[GCWorkItem]:
        """Run GC on ``plane`` if below threshold; return timing work items."""
        if not self.state.needs_gc(plane):
            return []
        return self.collect(plane)

    def collect(self, plane: PlaneState) -> list[GCWorkItem]:
        """Reclaim blocks until the restore level (or no progress)."""
        items: list[GCWorkItem] = []
        while plane.free_blocks < self.state.gc_restore_blocks:
            victim = self.pick_victim(plane)
            if victim is None:
                break
            items.append(self._reclaim(plane, victim))
        return items

    def _reclaim(self, plane: PlaneState, victim: int) -> GCWorkItem:
        mapping = self.state.mapping
        moves = 0
        for ppn in plane.pages_in_block(victim):
            lpn = mapping.reverse(ppn)
            if lpn is None:
                continue
            mapping.unbind_ppn(ppn)
            plane.invalidate(ppn)
            new_ppn = plane.allocate_page()
            mapping.bind(lpn, new_ppn)
            moves += 1
        retired = False
        if self.faults is not None and self.faults.erase_fails(
            plane.plane_index // self._planes_per_channel,
            plane.erase_count[victim],
        ):
            plane.retire_block(victim)
            self.faults.note_retirement(plane.pages_per_block)
            retired = True
        else:
            plane.erase_block(victim)
            self.collections += 1
            if self._c_collections is not None:
                self._c_collections.inc()
        self.pages_moved += moves
        if self._c_pages_moved is not None:
            self._c_pages_moved.inc(moves)
        if self.sanitizer is not None:
            self.sanitizer.after_gc(self.state, plane)
        attribution = self.attribution
        if attribution is not None:
            attribution.note_gc_reclaim(
                plane.plane_index // self._planes_per_channel, moves, retired
            )
        return GCWorkItem(plane.plane_index, victim, moves, retired=retired)
