"""Page-level address mapping and per-plane flash state.

:class:`PlaneState` owns the physical pages of one plane: a pool of free
(erased) blocks, one *active* block receiving appends, and per-block
valid-page counts.  :class:`MappingTable` owns the LPN→PPN map and keeps the
plane states consistent on overwrite (old page invalidated) and on GC moves.
:class:`FlashArrayState` bundles one mapping table with all plane states for
a device.

Invariants maintained (and property-tested):

* every mapped LPN resolves to exactly one PPN and back (bijection);
* a plane's ``free_pages + live_pages + dead_pages + retired_pages ==
  pages_per_plane`` (retired pages belong to bad blocks);
* valid counts per block never exceed ``pages_per_block`` or drop below 0;
* a bad block is never sealed, free, or active — it can never be
  allocated from, GC'd, or erased again.
"""

from __future__ import annotations

from collections import deque

from ..config import SSDConfig
from ..geometry import Geometry

__all__ = ["PlaneState", "MappingTable", "FlashArrayState"]


class PlaneState:
    """Free-space and validity bookkeeping for one plane.

    Pages inside the active block are handed out strictly in order (flash
    forbids out-of-order programming within a block).
    """

    __slots__ = (
        "plane_index",
        "base_ppn",
        "pages_per_block",
        "blocks",
        "_free_blocks",
        "active_block",
        "next_page",
        "valid_count",
        "_sealed",
        "erase_count",
        "live_pages",
        "dead_pages",
        "bad_blocks",
        "retired_pages",
    )

    def __init__(self, plane_index: int, geometry: Geometry) -> None:
        cfg = geometry.config
        self.plane_index = plane_index
        self.base_ppn = geometry.plane_base_ppn(plane_index)
        self.pages_per_block = cfg.pages_per_block
        self.blocks = cfg.blocks_per_plane
        self._free_blocks: deque[int] = deque(range(self.blocks))
        self.active_block: int = self._free_blocks.popleft()
        self.next_page: int = 0
        #: valid (live) pages per block
        self.valid_count = [0] * self.blocks
        #: blocks fully written and no longer active (GC candidates)
        self._sealed: set[int] = set()
        self.erase_count = [0] * self.blocks
        self.live_pages = 0
        self.dead_pages = 0
        #: blocks permanently retired after program/erase failures
        self.bad_blocks: set[int] = set()
        #: pages lost to retired blocks (capacity gone for good)
        self.retired_pages = 0

    # ------------------------------------------------------------------
    @property
    def free_blocks(self) -> int:
        """Erased blocks available (excludes the active block)."""
        return len(self._free_blocks)

    @property
    def free_pages(self) -> int:
        """Programmable pages remaining in this plane."""
        active_left = self.pages_per_block - self.next_page
        return self.free_blocks * self.pages_per_block + active_left

    @property
    def total_pages(self) -> int:
        return self.blocks * self.pages_per_block

    @property
    def usable_pages(self) -> int:
        """Physical pages not lost to retired (bad) blocks."""
        return self.total_pages - self.retired_pages

    def has_free_page(self) -> bool:
        return self.free_pages > 0

    # ------------------------------------------------------------------
    def allocate_page(self) -> int:
        """Consume the next page of the active block; return its PPN.

        Raises :class:`RuntimeError` when the plane is physically full —
        callers must run GC (or check :meth:`has_free_page`) first.
        """
        if self.next_page >= self.pages_per_block:
            self._seal_active()
        block, page = self.active_block, self.next_page
        self.next_page += 1
        self.valid_count[block] += 1
        self.live_pages += 1
        if self.next_page >= self.pages_per_block and self._free_blocks:
            # Seal eagerly so free_blocks reflects reality between allocations.
            self._seal_active()
        return self.base_ppn + block * self.pages_per_block + page

    def _seal_active(self) -> None:
        if not self._free_blocks:
            raise RuntimeError(
                f"plane {self.plane_index} out of space (GC did not keep up)"
            )
        self._sealed.add(self.active_block)
        self.active_block = self._free_blocks.popleft()
        self.next_page = 0

    def invalidate(self, ppn: int) -> None:
        """Mark the page at ``ppn`` dead (after an overwrite or GC move)."""
        block = self._block_of(ppn)
        if self.valid_count[block] <= 0:
            raise ValueError(f"invalidate on empty block {block}")
        self.valid_count[block] -= 1
        self.live_pages -= 1
        self.dead_pages += 1

    def erase_block(self, block: int) -> None:
        """Erase a sealed, fully-invalid block and return it to the pool."""
        if block == self.active_block:
            raise ValueError("cannot erase the active block")
        if self.valid_count[block] != 0:
            raise ValueError(f"block {block} still has {self.valid_count[block]} valid pages")
        if block not in self._sealed:
            raise ValueError(f"block {block} is not sealed")
        self._sealed.remove(block)
        self.dead_pages -= self.pages_per_block
        self.erase_count[block] += 1
        self._free_blocks.append(block)

    # ------------------------------------------------------------------
    # Bad-block retirement (fault injection)
    # ------------------------------------------------------------------
    def next_program_block(self) -> int:
        """Block that will receive the next programmed page."""
        if self.next_page < self.pages_per_block:
            return self.active_block
        if not self._free_blocks:
            raise RuntimeError(
                f"plane {self.plane_index} out of space (GC did not keep up)"
            )
        return self._free_blocks[0]

    def begin_retire_active(self) -> int:
        """Pull the failing active block out of service; returns its id.

        A fresh active block is installed from the free pool so relocation
        (and subsequent host writes) have somewhere to go.  The failing
        block's unprogrammed pages leave the free pool permanently here;
        its programmed pages stay accounted as live/dead until the caller
        relocates the valid ones and calls :meth:`retire_block`.
        """
        if not self._free_blocks:
            raise RuntimeError(
                f"plane {self.plane_index}: no spare block to replace the "
                "failing active block"
            )
        failed = self.active_block
        self.retired_pages += self.pages_per_block - self.next_page
        self.active_block = self._free_blocks.popleft()
        self.next_page = 0
        return failed

    def retire_block(self, block: int, *, programmed_pages: int | None = None) -> None:
        """Permanently remove a fully-invalid block from service.

        ``programmed_pages`` is how many of the block's pages were actually
        programmed (all of them for a sealed block — the default; the
        failure-time ``next_page`` for a block pulled via
        :meth:`begin_retire_active`).  Those pages must all be dead by now:
        callers relocate valid data first.
        """
        if block == self.active_block:
            raise ValueError("cannot retire the active block (begin_retire_active first)")
        if self.valid_count[block] != 0:
            raise ValueError(
                f"block {block} still has {self.valid_count[block]} valid pages"
            )
        if block in self.bad_blocks:
            raise ValueError(f"block {block} is already retired")
        if programmed_pages is None:
            programmed_pages = self.pages_per_block
        self._sealed.discard(block)
        self.dead_pages -= programmed_pages
        self.retired_pages += programmed_pages
        self.bad_blocks.add(block)

    def retire_free_block(self, block: int) -> None:
        """Retire an erased block straight out of the free pool."""
        self._free_blocks.remove(block)  # raises ValueError if not free
        self.retired_pages += self.pages_per_block
        self.bad_blocks.add(block)

    def block_of(self, ppn: int) -> int:
        """Block index (within this plane) holding ``ppn``."""
        return self._block_of(ppn)

    # ------------------------------------------------------------------
    def sealed_blocks(self) -> set[int]:
        """Blocks eligible as GC victims."""
        return self._sealed

    def pages_in_block(self, block: int) -> range:
        """PPNs covered by ``block`` in this plane."""
        start = self.base_ppn + block * self.pages_per_block
        return range(start, start + self.pages_per_block)

    def _block_of(self, ppn: int) -> int:
        offset = ppn - self.base_ppn
        if not 0 <= offset < self.total_pages:
            raise ValueError(f"PPN {ppn} not in plane {self.plane_index}")
        return offset // self.pages_per_block

    def check_invariants(self) -> None:
        """Assert the accounting identity; used by tests."""
        used = self.live_pages + self.dead_pages + self.retired_pages
        assert used + self.free_pages == self.total_pages, (
            f"plane {self.plane_index}: live {self.live_pages} + dead "
            f"{self.dead_pages} + retired {self.retired_pages} + free "
            f"{self.free_pages} != {self.total_pages}"
        )
        assert sum(self.valid_count) == self.live_pages
        assert not self.bad_blocks & self._sealed, "bad block still sealed"
        assert not self.bad_blocks & set(self._free_blocks), "bad block in free pool"
        assert self.active_block not in self.bad_blocks, "active block is bad"


class MappingTable:
    """Bidirectional LPN↔PPN map with overwrite semantics."""

    __slots__ = ("_l2p", "_p2l", "_sanitizer")

    def __init__(self) -> None:
        self._l2p: dict[int, int] = {}
        self._p2l: dict[int, int] = {}
        #: optional :class:`repro.analysis.Sanitizer`; when attached, every
        #: bind/unbind re-checks the bijection incrementally
        self._sanitizer = None

    def attach_sanitizer(self, sanitizer) -> None:
        self._sanitizer = sanitizer

    def __len__(self) -> int:
        return len(self._l2p)

    def __contains__(self, lpn: int) -> bool:
        return lpn in self._l2p

    def lookup(self, lpn: int) -> int | None:
        """PPN currently holding ``lpn``, or None if never written."""
        return self._l2p.get(lpn)

    def reverse(self, ppn: int) -> int | None:
        """LPN stored at ``ppn``, or None if the page is dead/free."""
        return self._p2l.get(ppn)

    def bind(self, lpn: int, ppn: int) -> int | None:
        """Map ``lpn`` to ``ppn``; return the displaced old PPN (if any)."""
        if ppn in self._p2l:
            raise ValueError(f"PPN {ppn} already holds LPN {self._p2l[ppn]}")
        old = self._l2p.get(lpn)
        if old is not None:
            del self._p2l[old]
        self._l2p[lpn] = ppn
        self._p2l[ppn] = lpn
        if self._sanitizer is not None:
            self._sanitizer.on_bind(self, lpn, ppn)
        return old

    def unbind_ppn(self, ppn: int) -> int:
        """Remove the mapping entry at ``ppn`` (GC move source). Returns LPN."""
        lpn = self._p2l.pop(ppn)
        del self._l2p[lpn]
        if self._sanitizer is not None:
            self._sanitizer.on_unbind(self, lpn, ppn)
        return lpn


class FlashArrayState:
    """All FTL state for one device: mapping + every plane."""

    def __init__(self, config: SSDConfig) -> None:
        self.config = config
        self.geometry = Geometry(config)
        self.mapping = MappingTable()
        self.planes = [PlaneState(i, self.geometry) for i in range(config.planes)]
        self.gc_threshold_blocks = max(1, int(config.blocks_per_plane * config.gc_threshold))
        self.gc_restore_blocks = max(
            self.gc_threshold_blocks + 1,
            int(config.blocks_per_plane * config.gc_restore),
        )

    def plane_of_ppn(self, ppn: int) -> PlaneState:
        return self.planes[self.geometry.plane_index(ppn)]

    def write(self, lpn: int, plane: PlaneState) -> int:
        """Program ``lpn`` into ``plane``; handles overwrite invalidation."""
        ppn = plane.allocate_page()
        old = self.mapping.bind(lpn, ppn)
        if old is not None:
            self.plane_of_ppn(old).invalidate(old)
        return ppn

    def needs_gc(self, plane: PlaneState) -> bool:
        return plane.free_blocks < self.gc_threshold_blocks

    def mapped_pages(self) -> int:
        return len(self.mapping)

    def retired_blocks(self) -> int:
        """Device-wide count of blocks retired to the bad-block tables."""
        return sum(len(plane.bad_blocks) for plane in self.planes)

    def usable_pages(self) -> int:
        """Device-wide physical pages not lost to retired blocks."""
        return sum(plane.usable_pages for plane in self.planes)
