"""Static and dynamic page-allocation placers.

A *placer* answers one question for each write: **which plane** receives the
page, given the tenant's allowed channel set.

``STATIC``
    The target channel/chip/die/plane is a pure function of the logical page
    number, striping successive LPNs channel-first across the allowed set.
    Consecutive logical pages land on different channels, so a later
    sequential *read* of those pages enjoys full channel parallelism —
    exactly why the paper assigns static mode to read-dominated tenants.

``DYNAMIC``
    The write goes to the least-busy plane of the allowed set at the moment
    of dispatch (earliest-free die, shortest queue), so writes never wait for
    a busy die while an idle one exists — why the paper assigns dynamic mode
    to write-dominated tenants.

Reads are never placed: they go wherever the mapping table says the data
lives.
"""

from __future__ import annotations

import enum
from typing import Callable, Sequence

from ..geometry import Geometry

__all__ = ["PageAllocMode", "StaticPagePlacer", "DynamicPagePlacer", "make_placer"]

#: Load probe: plane_index -> sortable load key (lower = less busy).
LoadFn = Callable[[int], tuple]

#: Viability probe: plane_index -> False when the plane must not receive
#: writes (e.g. all usable capacity lost to retired blocks).
ViableFn = Callable[[int], bool]


class PageAllocMode(enum.Enum):
    """Per-tenant page-allocation mode."""

    STATIC = "static"
    DYNAMIC = "dynamic"

    @classmethod
    def from_str(cls, text: str) -> "PageAllocMode":
        try:
            return cls(text.strip().lower())
        except ValueError:
            raise ValueError(f"unknown page allocation mode {text!r}") from None


class StaticPagePlacer:
    """LPN-striped placement over an allowed channel set."""

    def __init__(self, geometry: Geometry, allowed_channels: Sequence[int]) -> None:
        if not allowed_channels:
            raise ValueError("allowed_channels must be non-empty")
        self.geometry = geometry
        self.channels = sorted(set(allowed_channels))
        cfg = geometry.config
        self._chips = cfg.chips_per_channel
        self._dies = cfg.dies_per_chip
        self._planes = cfg.planes_per_die
        self._planes_per_channel = self._chips * self._dies * self._planes

    def place(self, lpn: int) -> int:
        """Flat plane index for ``lpn`` (channel-first striping)."""
        n = len(self.channels)
        channel = self.channels[lpn % n]
        rest = lpn // n
        chip = rest % self._chips
        rest //= self._chips
        die = rest % self._dies
        rest //= self._dies
        plane = rest % self._planes
        return (
            channel * self._planes_per_channel
            + chip * self._dies * self._planes
            + die * self._planes
            + plane
        )


class DynamicPagePlacer:
    """Least-busy placement over an allowed channel set.

    ``load_fn`` maps a flat plane index to a sortable load key; the placer
    picks the minimum and breaks ties round-robin so that an idle device
    still spreads writes across every plane.
    """

    def __init__(
        self,
        geometry: Geometry,
        allowed_channels: Sequence[int],
        load_fn: LoadFn,
        viable_fn: ViableFn | None = None,
    ) -> None:
        if not allowed_channels:
            raise ValueError("allowed_channels must be non-empty")
        self.geometry = geometry
        self.channels = sorted(set(allowed_channels))
        # Candidates interleaved channel-first: consecutive tie-broken picks
        # land on *different channels*, so equal-load writes spread across
        # buses instead of serialising on one channel's planes.
        per_channel = [geometry.planes_in_channels([ch]) for ch in self.channels]
        self.candidates = [
            planes[k]
            for k in range(len(per_channel[0]))
            for planes in per_channel
        ]
        self.load_fn = load_fn
        #: optional health filter; non-viable planes (capacity retired away
        #: under fault injection) are skipped unless every candidate is out
        self.viable_fn = viable_fn
        self._rr = 0

    def place(self, lpn: int) -> int:
        """Flat plane index of the least-busy viable candidate plane."""
        n = len(self.candidates)
        viable = self.viable_fn
        best_index = -1
        best_key: tuple | None = None
        # Rotate the scan start so equal-load candidates alternate.
        start = self._rr
        for offset in range(n):
            i = (start + offset) % n
            if viable is not None and not viable(self.candidates[i]):
                continue
            key = self.load_fn(self.candidates[i])
            if best_key is None or key < best_key:
                best_key = key
                best_index = i
        if best_index < 0:
            # Every plane filtered out: fall back to raw least-busy so the
            # controller's own fallback/GC machinery gets to decide.
            for offset in range(n):
                i = (start + offset) % n
                key = self.load_fn(self.candidates[i])
                if best_key is None or key < best_key:
                    best_key = key
                    best_index = i
        self._rr = (best_index + 1) % n
        return self.candidates[best_index]


def make_placer(
    mode: PageAllocMode,
    geometry: Geometry,
    allowed_channels: Sequence[int],
    load_fn: LoadFn,
    viable_fn: ViableFn | None = None,
) -> StaticPagePlacer | DynamicPagePlacer:
    """Build the placer for one tenant."""
    if mode is PageAllocMode.STATIC:
        return StaticPagePlacer(geometry, allowed_channels)
    if mode is PageAllocMode.DYNAMIC:
        return DynamicPagePlacer(geometry, allowed_channels, load_fn, viable_fn)
    raise ValueError(f"unknown mode {mode!r}")
