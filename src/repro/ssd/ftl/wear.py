"""Wear-levelling statistics.

The FTL's log-structured append with round-robin free-block reuse is
naturally wear-friendly; this module measures how even the erases actually
are rather than enforcing a policy.  The headline metric is the classic
*wear-levelling factor*: mean erase count divided by max erase count
(1.0 = perfectly even, near 0 = one block is being hammered).
"""

from __future__ import annotations

from dataclasses import dataclass

from .mapping import FlashArrayState

__all__ = ["WearStats", "WearTracker"]


@dataclass(frozen=True)
class WearStats:
    """Summary of erase-count distribution across all blocks."""

    total_erases: int
    max_erases: int
    min_erases: int
    mean_erases: float
    wear_levelling_factor: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"erases total={self.total_erases} max={self.max_erases} "
            f"min={self.min_erases} mean={self.mean_erases:.2f} "
            f"WLF={self.wear_levelling_factor:.3f}"
        )


class WearTracker:
    """Read-only view over the erase counters kept by each plane."""

    def __init__(self, state: FlashArrayState) -> None:
        self.state = state

    def stats(self) -> WearStats:
        total = 0
        max_e = 0
        min_e: int | None = None
        blocks = 0
        for plane in self.state.planes:
            for count in plane.erase_count:
                total += count
                blocks += 1
                if count > max_e:
                    max_e = count
                if min_e is None or count < min_e:
                    min_e = count
        mean = total / blocks if blocks else 0.0
        wlf = (mean / max_e) if max_e else 1.0
        return WearStats(
            total_erases=total,
            max_erases=max_e,
            min_erases=min_e or 0,
            mean_erases=mean,
            wear_levelling_factor=wlf,
        )
