"""Physical addressing across the channel/chip/die/plane/block/page hierarchy.

A physical page is identified either structurally (:class:`PhysicalAddress`)
or as a flat integer **PPN** (physical page number).  The flat form is what
the FTL mapping table stores; the structural form is what the timing engine
consumes.  Conversions between the two are exact inverses, which the property
tests in ``tests/ssd/test_geometry.py`` verify exhaustively.

PPN layout (most-significant first)::

    channel | chip | die | plane | block | page

so that consecutive PPNs within one plane are consecutive pages of one block,
and striding by ``pages_per_plane`` moves to the next plane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .config import SSDConfig

__all__ = ["PhysicalAddress", "Geometry"]


@dataclass(frozen=True, order=True)
class PhysicalAddress:
    """Structural address of one flash page."""

    channel: int
    chip: int
    die: int
    plane: int
    block: int
    page: int

    def plane_key(self) -> tuple[int, int, int, int]:
        """Key identifying the plane that holds this page."""
        return (self.channel, self.chip, self.die, self.plane)

    def die_key(self) -> tuple[int, int, int]:
        """Key identifying the die that executes commands for this page."""
        return (self.channel, self.chip, self.die)


class Geometry:
    """Address arithmetic for one :class:`~repro.ssd.config.SSDConfig`.

    Instances are cheap and stateless; they only precompute the mixed-radix
    strides used for PPN packing/unpacking.
    """

    def __init__(self, config: SSDConfig) -> None:
        self.config = config
        c = config
        self._page_stride = 1
        self._block_stride = c.pages_per_block
        self._plane_stride = self._block_stride * c.blocks_per_plane
        self._die_stride = self._plane_stride * c.planes_per_die
        self._chip_stride = self._die_stride * c.dies_per_chip
        self._channel_stride = self._chip_stride * c.chips_per_channel
        self.total_pages = self._channel_stride * c.channels

    # ------------------------------------------------------------------
    # PPN packing
    # ------------------------------------------------------------------
    def pack(self, addr: PhysicalAddress) -> int:
        """Flatten a structural address into a PPN."""
        self._check(addr)
        return (
            addr.channel * self._channel_stride
            + addr.chip * self._chip_stride
            + addr.die * self._die_stride
            + addr.plane * self._plane_stride
            + addr.block * self._block_stride
            + addr.page
        )

    def unpack(self, ppn: int) -> PhysicalAddress:
        """Expand a PPN into a structural address."""
        if not 0 <= ppn < self.total_pages:
            raise ValueError(f"PPN {ppn} out of range [0, {self.total_pages})")
        channel, rem = divmod(ppn, self._channel_stride)
        chip, rem = divmod(rem, self._chip_stride)
        die, rem = divmod(rem, self._die_stride)
        plane, rem = divmod(rem, self._plane_stride)
        block, page = divmod(rem, self._block_stride)
        return PhysicalAddress(channel, chip, die, plane, block, page)

    def channel_of(self, ppn: int) -> int:
        """Channel index of a PPN without a full unpack."""
        return ppn // self._channel_stride

    def chip_of(self, ppn: int) -> tuple[int, int]:
        """(channel, chip) pair of a PPN without a full unpack."""
        channel, rem = divmod(ppn, self._channel_stride)
        return channel, rem // self._chip_stride

    def plane_index(self, ppn: int) -> int:
        """Flat plane index (0 .. planes-1) of a PPN."""
        return ppn // self._plane_stride

    def plane_base_ppn(self, plane_index: int) -> int:
        """First PPN of a flat plane index."""
        if not 0 <= plane_index < self.config.planes:
            raise ValueError(f"plane index {plane_index} out of range")
        return plane_index * self._plane_stride

    # ------------------------------------------------------------------
    # Enumeration helpers
    # ------------------------------------------------------------------
    def planes_in_channels(self, channels: list[int]) -> list[int]:
        """Flat plane indices belonging to the given channel set, sorted."""
        per_channel = self.config.planes // self.config.channels
        out: list[int] = []
        for ch in sorted(channels):
            if not 0 <= ch < self.config.channels:
                raise ValueError(f"channel {ch} out of range")
            start = ch * per_channel
            out.extend(range(start, start + per_channel))
        return out

    def iter_dies(self) -> Iterator[tuple[int, int, int]]:
        """Yield every (channel, chip, die) key in the device."""
        c = self.config
        for channel in range(c.channels):
            for chip in range(c.chips_per_channel):
                for die in range(c.dies_per_chip):
                    yield (channel, chip, die)

    # ------------------------------------------------------------------
    def _check(self, addr: PhysicalAddress) -> None:
        c = self.config
        bounds = (
            (addr.channel, c.channels, "channel"),
            (addr.chip, c.chips_per_channel, "chip"),
            (addr.die, c.dies_per_chip, "die"),
            (addr.plane, c.planes_per_die, "plane"),
            (addr.block, c.blocks_per_plane, "block"),
            (addr.page, c.pages_per_block, "page"),
        )
        for value, limit, name in bounds:
            if not 0 <= value < limit:
                raise ValueError(f"{name} {value} out of range [0, {limit})")
