"""Latency aggregation and simulation results.

:class:`LatencyAccumulator` collects per-workload, per-op latencies online;
:class:`SimulationResult` is the immutable summary a simulation run returns.
The paper's headline metric is *total response latency* = sum of read latency
and write latency (Section III-B), reproduced here as
:meth:`SimulationResult.total_latency_us`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import math
from typing import TYPE_CHECKING, ClassVar

from .request import OpType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs is optional)
    from ..obs.attribution import LatencyBreakdown

__all__ = ["OpStats", "LatencyAccumulator", "SimulationResult"]


@dataclass
class OpStats:
    """Online statistics for one (workload, op) stream."""

    count: int = 0
    total_us: float = 0.0
    max_us: float = 0.0
    min_us: float = math.inf
    #: raw samples, kept only when the accumulator records latencies
    samples: list[float] | None = None
    #: cached sorted view of ``samples`` (invalidated by length change)
    _sorted: list[float] | None = field(
        default=None, repr=False, compare=False
    )

    _PERCENTILE_RANGE_MSG: ClassVar[str] = "percentile must be in [0, 100]"

    def add(self, latency_us: float) -> None:
        self.count += 1
        self.total_us += latency_us
        if latency_us > self.max_us:
            self.max_us = latency_us
        if latency_us < self.min_us:
            self.min_us = latency_us
        if self.samples is not None:
            self.samples.append(latency_us)

    @property
    def mean_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """q-th percentile (0..100); requires recorded samples.

        The sorted view is cached and reused until new samples arrive,
        so repeated percentile queries (p50/p95/p99 in one report) sort
        at most once.
        """
        if not 0 <= q <= 100:
            raise ValueError(self._PERCENTILE_RANGE_MSG)
        if self.samples is None:
            raise RuntimeError("latencies were not recorded; pass record_latencies=True")
        if not self.samples:
            return 0.0
        data = self._sorted
        if data is None or len(data) != len(self.samples):
            data = self._sorted = sorted(self.samples)
        pos = (len(data) - 1) * q / 100.0
        lo = int(pos)
        hi = min(lo + 1, len(data) - 1)
        frac = pos - lo
        return data[lo] * (1 - frac) + data[hi] * frac

    def merged(self, other: "OpStats") -> "OpStats":
        """Combine two stat streams.

        Samples survive whenever either side recorded them (merging a
        recorded stream with a non-recorded, non-empty one keeps the
        recorded side's samples — percentiles then describe the recorded
        subset rather than silently disappearing).  Two empty streams
        merge to an empty result with ``min_us`` of 0.0, not ``inf``.
        """
        both_empty = self.count == 0 and other.count == 0
        out = OpStats(
            count=self.count + other.count,
            total_us=self.total_us + other.total_us,
            max_us=max(self.max_us, other.max_us),
            min_us=0.0 if both_empty else min(self.min_us, other.min_us),
        )
        if self.samples is not None or other.samples is not None:
            out.samples = list(self.samples or ()) + list(other.samples or ())
        return out


class LatencyAccumulator:
    """Collects completed-request latencies keyed by (workload, op)."""

    def __init__(self, record_latencies: bool = False) -> None:
        self.record = record_latencies
        self._stats: dict[tuple[int, OpType], OpStats] = {}

    def add(self, workload_id: int, op: OpType, latency_us: float) -> None:
        key = (workload_id, op)
        stats = self._stats.get(key)
        if stats is None:
            stats = OpStats(samples=[] if self.record else None)
            self._stats[key] = stats
        stats.add(latency_us)

    def stats(self, workload_id: int, op: OpType) -> OpStats:
        return self._stats.get((workload_id, op), OpStats())

    def set_stats(self, workload_id: int, op: OpType, stats: OpStats) -> None:
        """Install pre-aggregated stats (used by the vectorised fast model)."""
        self._stats[(workload_id, op)] = stats

    def workloads(self) -> list[int]:
        return sorted({wid for wid, _ in self._stats})

    def op_totals(self, op: OpType) -> OpStats:
        out = OpStats()
        for (_, key_op), stats in self._stats.items():
            if key_op is op:
                out = out.merged(stats)
        return out


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulated trace.

    ``read`` / ``write`` aggregate over all workloads; ``per_workload`` maps
    workload id to its own (read, write) pair.  ``total_latency_us`` — the
    paper's optimisation objective — is the sum of all read and write
    latencies.
    """

    read: OpStats
    write: OpStats
    per_workload: dict[int, tuple[OpStats, OpStats]]
    #: simulated time at which the last request completed (microseconds)
    makespan_us: float
    #: number of host requests served
    requests: int
    #: number of page-level sub-requests served
    subrequests: int
    #: GC blocks reclaimed / valid pages copied
    gc_collections: int = 0
    gc_pages_moved: int = 0
    #: host requests that completed with an unrecoverable read error (their
    #: latencies are excluded from the read/write stats)
    failed_reads: int = 0
    #: sum of time sub-requests spent waiting for dies / channel buses
    die_wait_us: float = 0.0
    channel_wait_us: float = 0.0
    #: DES events processed (0 for the fast model)
    events: int = 0
    extras: dict = field(default_factory=dict)
    #: per-phase latency attribution summary, present only when the run was
    #: observed with ``Observability(attribution=True)``
    breakdown: "LatencyBreakdown | None" = None
    #: SLO watchdog alerts (plain dicts, see :mod:`repro.obs.slo`), present
    #: only when the run was observed with an armed watchdog; deliberately
    #: excluded from :meth:`summary` so an SLO'd run stays byte-identical
    alerts: "list[dict] | None" = None

    @property
    def total_latency_us(self) -> float:
        """Sum of read and write response latencies (paper's objective)."""
        return self.read.total_us + self.write.total_us

    @property
    def mean_read_us(self) -> float:
        return self.read.mean_us

    @property
    def mean_write_us(self) -> float:
        return self.write.mean_us

    @property
    def mean_total_us(self) -> float:
        n = self.read.count + self.write.count
        return self.total_latency_us / n if n else 0.0

    def workload_total_us(self, workload_id: int) -> float:
        pair = self.per_workload.get(workload_id)
        if pair is None:
            return 0.0
        return pair[0].total_us + pair[1].total_us

    def summary(self) -> str:
        """One-line human-readable digest.

        When per-request samples were recorded (``record_latencies=True``)
        the digest also carries the read-latency tail (p95/p99).
        """
        text = (
            f"{self.requests} reqs ({self.subrequests} pages) in "
            f"{self.makespan_us / 1e6:.3f}s sim-time; mean read "
            f"{self.read.mean_us:.1f}us, mean write {self.write.mean_us:.1f}us, "
            f"total latency {self.total_latency_us / 1e6:.3f}s, "
            f"GC {self.gc_collections} blocks / {self.gc_pages_moved} moves"
        )
        if self.failed_reads:
            text += f", {self.failed_reads} failed reads"
        faults = self.extras.get("faults")
        if faults:
            text += (
                f", faults[retries {faults['read_retries']}, "
                f"pfail {faults['program_failures']}, "
                f"efail {faults['erase_failures']}, "
                f"retired {faults['retired_blocks']}]"
            )
        if self.read.samples:
            text += (
                f", read p95 {self.read.percentile(95):.1f}us"
                f" p99 {self.read.percentile(99):.1f}us"
            )
        return text


def build_result(
    acc: LatencyAccumulator,
    *,
    makespan_us: float,
    requests: int,
    subrequests: int,
    gc_collections: int = 0,
    gc_pages_moved: int = 0,
    failed_reads: int = 0,
    die_wait_us: float = 0.0,
    channel_wait_us: float = 0.0,
    events: int = 0,
    extras: dict | None = None,
    breakdown: "LatencyBreakdown | None" = None,
    alerts: "list[dict] | None" = None,
) -> SimulationResult:
    """Assemble a :class:`SimulationResult` from an accumulator."""
    per_workload = {
        wid: (acc.stats(wid, OpType.READ), acc.stats(wid, OpType.WRITE))
        for wid in acc.workloads()
    }
    return SimulationResult(
        read=acc.op_totals(OpType.READ),
        write=acc.op_totals(OpType.WRITE),
        per_workload=per_workload,
        makespan_us=makespan_us,
        requests=requests,
        subrequests=subrequests,
        gc_collections=gc_collections,
        gc_pages_moved=gc_pages_moved,
        failed_reads=failed_reads,
        die_wait_us=die_wait_us,
        channel_wait_us=channel_wait_us,
        events=events,
        extras=extras or {},
        breakdown=breakdown,
        alerts=alerts,
    )
