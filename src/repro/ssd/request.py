"""I/O request model.

An :class:`IORequest` is one host command from one tenant: read or write,
starting LPN, length in pages, arrival time.  The controller splits it into
per-page :class:`SubRequest` units; the request completes when its slowest
sub-request completes (the paper's Section III observation: "the latency of
the request depends on the slowest chip access").
"""

from __future__ import annotations

from dataclasses import dataclass, field
import enum

__all__ = ["OpType", "IORequest", "SubRequest"]


class OpType(enum.IntEnum):
    """Host operation type."""

    READ = 0
    WRITE = 1

    @classmethod
    def from_str(cls, text: str) -> "OpType":
        key = text.strip().lower()
        if key in ("r", "read", "0"):
            return cls.READ
        if key in ("w", "write", "1"):
            return cls.WRITE
        raise ValueError(f"unknown op type {text!r}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "R" if self is OpType.READ else "W"


@dataclass
class IORequest:
    """One host I/O command.

    Attributes
    ----------
    arrival_us:
        Host submission time in microseconds from trace start.
    workload_id:
        Tenant identifier (0-based).  The paper distinguishes tenants via a
        ``workloadID`` obtained with FlashShare/MQSim-style tagging; in the
        simulator it travels with the request.
    op:
        Read or write.
    lpn:
        First logical page number touched.
    length:
        Number of consecutive logical pages (>= 1).
    """

    arrival_us: float
    workload_id: int
    op: OpType
    lpn: int
    length: int = 1

    #: Completion time filled in by the simulator (microseconds).
    complete_us: float = field(default=-1.0, compare=False)

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("request length must be >= 1 page")
        if self.lpn < 0:
            raise ValueError("lpn must be non-negative")
        if self.arrival_us < 0:
            raise ValueError("arrival_us must be non-negative")
        if self.workload_id < 0:
            raise ValueError("workload_id must be non-negative")
        if not isinstance(self.op, OpType):
            self.op = OpType(self.op)

    @property
    def latency_us(self) -> float:
        """Response latency; valid only after simulation."""
        if self.complete_us < 0:
            raise RuntimeError("request has not completed")
        return self.complete_us - self.arrival_us

    def lpns(self) -> range:
        """Logical pages touched by this request."""
        return range(self.lpn, self.lpn + self.length)

    @property
    def is_read(self) -> bool:
        return self.op is OpType.READ


@dataclass
class SubRequest:
    """One per-page unit of work derived from an :class:`IORequest`."""

    parent: IORequest
    lpn: int
    #: Completion time of this page access (microseconds).
    complete_us: float = -1.0

    @property
    def op(self) -> OpType:
        return self.parent.op

    @property
    def workload_id(self) -> int:
        return self.parent.workload_id

    @property
    def arrival_us(self) -> float:
        return self.parent.arrival_us
