"""Event-driven, trace-driven SSD simulator.

This is the reproduction of the paper's modified SSDSim: requests arrive at
their trace timestamps, split into per-page sub-requests, and contend for two
resource classes — the **channel bus** (page transfers serialise per channel)
and the **die** (flash array operations serialise per die).  Host operations
are serviced FIFO per resource, as SSDSim does — the paper's remark that
reads "have priority to respond because of the lower flash chip accessing
time" is the tR << tPROG service-time asymmetry, which this model captures
directly.  (``read_priority=True`` switches to a preemptive-queue discipline
where reads overtake queued writes, for the scheduling ablation.)  Garbage
collection runs as internal die jobs that jump ahead of queued host writes.

A read occupies its die for ``tR`` then the channel for the transfer out;
a write occupies the channel for the transfer in then its die for ``tPROG``.
The request completes when its slowest sub-request completes.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from .buffer import BufferConfig, WriteBuffer
from .config import SSDConfig
from .controller import FTLController
from .engine import PRIO_GC, PRIO_READ, PRIO_WRITE, EventLoop, Resource
from .faults import FaultConfig, FaultInjector
from .ftl.gc import GCWorkItem
from .ftl.page_alloc import PageAllocMode
from .metrics import LatencyAccumulator, SimulationResult, build_result
from .request import IORequest, OpType
from .timing import ServiceTimes

__all__ = ["SSDSimulator", "simulate"]


class _InFlight:
    """Book-keeping for one host request while its pages are in service."""

    __slots__ = ("request", "remaining", "last_end_us", "failed", "span")

    def __init__(self, request: IORequest) -> None:
        self.request = request
        self.remaining = request.length
        self.last_end_us = request.arrival_us
        self.failed = False
        #: critical-path attribution span (only when attribution is on):
        #: the timeline of the page that completed last
        self.span = None


class SSDSimulator:
    """One simulated device plus its FTL, ready to run one trace.

    Parameters
    ----------
    config:
        Device geometry and timing.
    channel_sets:
        workload id -> channels that workload may occupy.
    page_modes:
        workload id -> page allocation mode (default STATIC for all).
    record_latencies:
        keep raw per-request latency samples (enables percentiles).
    obs:
        optional :class:`repro.obs.Observability`; when attached the run
        emits structured trace events (``request_submit``,
        ``subrequest_dispatch``, ``channel_acquire``/``release``,
        ``gc_start``/``end``), publishes counters and latency histograms
        into the registry, and — if ``utilization_interval_us`` is set —
        samples per-channel/per-die utilization time series.  When the
        bundle carries an :class:`~repro.obs.attribution.AttributionCollector`
        (``Observability(attribution=True)``), every completed request's
        latency is additionally decomposed into exact-sum phases along
        its critical path and the run's result carries the aggregated
        :class:`~repro.obs.attribution.LatencyBreakdown`.  ``None``
        (the default) costs one pointer test per hook; attribution adds
        no events and no randomness, so an attributed run's latencies
        are identical to an unattributed one.
    """

    def __init__(
        self,
        config: SSDConfig,
        channel_sets: Mapping[int, Sequence[int]],
        page_modes: Mapping[int, PageAllocMode] | None = None,
        *,
        record_latencies: bool = False,
        on_submit=None,
        on_complete=None,
        read_priority: bool = False,
        buffer: "BufferConfig | None" = None,
        loop: "EventLoop | None" = None,
        obs=None,
        faults: "FaultConfig | FaultInjector | None" = None,
        sanitizer=None,
    ) -> None:
        self.config = config
        #: optional callback fired with each request at its submission time
        #: (the hook the SSDKeeper features collector attaches to).
        self.on_submit = on_submit
        #: optional callback fired with each request when its last page
        #: completes (failed reads included) — the hook fleet migration
        #: spans and conservation accounting attach to.
        self.on_complete = on_complete
        #: queue discipline: FIFO (SSDSim-faithful) unless reads may overtake
        self._read_prio = PRIO_READ if read_priority else PRIO_WRITE
        self.times = ServiceTimes.from_config(config)
        #: the device's own clock.  A caller may pass a pre-built loop so a
        #: :class:`~repro.ssd.engine.ComposedLoop` can interleave several
        #: devices; behaviour is identical to the self-owned default.
        self.loop = loop if loop is not None else EventLoop()
        self.channels = [
            Resource(self.loop, name=f"ch{c}", kind="channel")
            for c in range(config.channels)
        ]
        self.dies = [
            Resource(self.loop, name=f"die{d}", kind="die")
            for d in range(config.dies)
        ]
        self._planes_per_die = config.planes_per_die
        self.obs = obs
        #: optional :class:`repro.analysis.Sanitizer`; when attached the
        #: event loop, every resource, the mapping table and the GC check
        #: their invariants on each step.  ``None`` costs one pointer test.
        self.sanitizer = sanitizer
        if sanitizer is not None:
            self.loop.sanitizer = sanitizer
            for res in (*self.channels, *self.dies):
                res.sanitizer = sanitizer
        #: optional fault injector (seeded NAND error model); ``None`` costs
        #: one ``is not None`` branch per operation
        if faults is None or isinstance(faults, FaultInjector):
            self.faults = faults
        else:
            self.faults = FaultInjector(faults)
        self._trace = None
        self._hist = None
        #: optional :class:`~repro.obs.attribution.AttributionCollector`
        #: carried by ``obs``; ``None`` costs one pointer test per page
        self._attribution = obs.attribution if obs is not None else None
        if self._attribution is not None and sanitizer is not None:
            self._attribution.sanitizer = sanitizer
        #: live registry handle — counters incremented as requests finish
        #: so telemetry windows carry per-window deltas
        self._registry = obs.registry if obs is not None else None
        #: optional :class:`~repro.obs.telemetry.TelemetrySink` (armed in
        #: :meth:`run` on weak loop events — never perturbs the run)
        self._telemetry = obs.telemetry if obs is not None else None
        #: lazily-created per-tenant latency histograms, telemetry only
        self._tenant_hist = {} if self._telemetry is not None else None
        #: optional :class:`~repro.obs.flightrecorder.FlightRecorder`
        self._flightrec = obs.flight_recorder if obs is not None else None
        if self._flightrec is not None and sanitizer is not None:
            self._flightrec.sanitizer = sanitizer
        if obs is not None:
            if obs.trace.enabled:
                self._trace = obs.trace
                for res in (*self.channels, *self.dies):
                    res.trace = self._trace
            self._hist = {
                OpType.READ: obs.registry.histogram("sim.read_latency_us"),
                OpType.WRITE: obs.registry.histogram("sim.write_latency_us"),
            }
        self.controller = FTLController(
            config,
            channel_sets,
            page_modes,
            load_fn=self._die_load,
            obs=obs,
            faults=self.faults,
            sanitizer=sanitizer,
        )
        #: optional DRAM write-back buffer in front of the FTL
        self.buffer = WriteBuffer(buffer) if buffer is not None else None
        self.acc = LatencyAccumulator(record_latencies=record_latencies)
        self._inflight: dict[int, _InFlight] = {}
        self._next_req_key = 0
        self.requests_done = 0
        self.subrequests_done = 0
        self.failed_reads = 0

    # ------------------------------------------------------------------
    def _die_load(self, plane_index: int) -> tuple:
        """Dynamic-placement load key: combined die+bus queue, then free time.

        A write occupies the channel bus before the die, so an idle die
        behind a congested bus is not actually a good target — both
        resources count.
        """
        die = self.dies[plane_index // self._planes_per_die]
        chan = self.channels[
            plane_index // (self._planes_per_die * self.config.dies_per_chip
                            * self.config.chips_per_channel)
        ]
        pending = (
            die.queue_depth
            + (1 if die.busy else 0)
            + chan.queue_depth
            + (1 if chan.busy else 0)
        )
        return (pending, max(die.free_at, chan.free_at))

    def utilization_report(self) -> dict:
        """Per-resource busy fractions over the simulated makespan.

        Meaningful after :meth:`run`; the report is what the examples print
        to show where an allocation is bottlenecked.
        """
        elapsed_us = self.loop.now
        return {
            "makespan_us": elapsed_us,
            "channels": [c.utilization(elapsed_us) for c in self.channels],
            "dies": [d.utilization(elapsed_us) for d in self.dies],
            "channel_wait_us": sum(c.wait_time_us for c in self.channels),
            "die_wait_us": sum(d.wait_time_us for d in self.dies),
            "gc_busy_us": sum(d.gc_busy_time_us for d in self.dies),
        }

    def _die_of_ppn(self, ppn: int) -> Resource:
        return self.dies[self.controller.geometry.plane_index(ppn) // self._planes_per_die]

    def _channel_of_ppn(self, ppn: int) -> Resource:
        return self.channels[self.controller.geometry.channel_of(ppn)]

    # ------------------------------------------------------------------
    def submit(self, req: IORequest) -> None:
        """Submit one request at the loop's *current* time.

        The caller is responsible for having advanced ``self.loop`` to the
        request's arrival time (a fleet does this by bouncing arrivals
        through a device-loop event); trace-driven solo runs should use
        :meth:`run`, which schedules arrivals itself.
        """
        self._make_submit(req)()

    def arm_observers(self) -> None:
        """Attach the profiler/telemetry samplers to this device's loop.

        Called by :meth:`prepare` for solo runs; a fleet calls it directly
        because fleet arrivals reach the device after preparation.  All
        samplers ride weak loop events, so arming never perturbs the run.
        """
        obs = self.obs
        if obs is not None and obs.utilization_interval_us is not None:
            from ..obs.profiler import UtilizationProfiler

            obs.profiler = UtilizationProfiler(obs.utilization_interval_us)
            obs.profiler.attach(self.loop, self.channels, self.dies)
        if self._telemetry is not None:
            self._telemetry.attach(
                self.loop, self._registry,
                channels=self.channels, dies=self.dies,
            )

    def prepare(self, requests: Iterable[IORequest]) -> int:
        """Schedule ``requests`` at their arrival times; arm the samplers.

        Returns the number of requests scheduled.  Together with
        :meth:`collect` this is the decomposed form of :meth:`run` used by
        fleet composition.
        """
        ordered = sorted(requests, key=lambda r: r.arrival_us)
        for req in ordered:
            # trace arrival timestamps are absolute simulated times
            self.loop.schedule(req.arrival_us, self._make_submit(req))  # repro-lint: disable=R004 (trace arrivals are absolute times)
        if ordered:
            self.arm_observers()
        return len(ordered)

    def run(self, requests: Iterable[IORequest]) -> SimulationResult:
        """Simulate ``requests`` (any order; sorted internally) to completion."""
        self.prepare(requests)
        try:
            self.loop.run()
        except Exception as exc:
            if self._flightrec is not None:
                trigger = (
                    "sanitizer-invariant"
                    if getattr(exc, "invariant", None) else "exception"
                )
                self._flightrec.dump_once(
                    trigger, detail=str(exc), time_us=self.loop.now
                )
            raise
        return self.collect()

    def collect(self) -> SimulationResult:
        """Flush samplers and assemble the :class:`SimulationResult`.

        Requires the device's loop to have drained (every in-flight
        request completed); fleet composition calls this once the composed
        loop reaches global quiescence.
        """
        obs = self.obs
        if obs is not None and obs.profiler is not None:
            # flush the final partial window so the series covers the run
            obs.profiler.flush()
        if self._telemetry is not None:
            self._telemetry.flush()
        if self._inflight:  # pragma: no cover - engine invariant
            raise RuntimeError(f"{len(self._inflight)} requests never completed")
        attribution = self._attribution
        watchdog = obs.slo if obs is not None else None
        result = build_result(
            self.acc,
            makespan_us=self.loop.now,
            requests=self.requests_done,
            subrequests=self.subrequests_done,
            gc_collections=self.controller.gc.collections,
            gc_pages_moved=self.controller.gc.pages_moved,
            failed_reads=self.failed_reads,
            die_wait_us=sum(d.wait_time_us for d in self.dies),
            channel_wait_us=sum(c.wait_time_us for c in self.channels),
            events=self.loop.events_processed,
            breakdown=attribution.breakdown() if attribution is not None else None,
            alerts=(
                [a.to_dict() for a in watchdog.alerts]
                if watchdog is not None else None
            ),
            extras={
                "seeded_pages": self.controller.seeded_pages,
                "mapped_pages": self.controller.mapped_pages(),
                **(
                    {"faults": self.faults.summary()}
                    if self.faults is not None
                    else {}
                ),
                **(
                    {
                        "buffer_read_hit_rate": self.buffer.stats.read_hit_rate,
                        "buffer_write_absorb_rate": self.buffer.stats.write_absorb_rate,
                        "buffer_dirty_evictions": self.buffer.stats.dirty_evictions,
                    }
                    if self.buffer is not None
                    else {}
                ),
            },
        )
        if obs is not None:
            self._publish_metrics(result)
        return result

    def _publish_metrics(self, result: SimulationResult) -> None:
        """End-of-run registry publication (only when obs is attached)."""
        assert self.obs is not None
        reg = self.obs.registry
        reg.counter("sim.requests").value = self.requests_done
        reg.counter("sim.subrequests").value = self.subrequests_done
        reg.counter("sim.events").value = self.loop.events_processed
        reg.counter("ftl.seeded_pages").value = self.controller.seeded_pages
        reg.gauge("sim.makespan_us").set(result.makespan_us)
        reg.gauge("sim.total_latency_us").set(result.total_latency_us)
        reg.gauge("sim.channel_wait_us").set(result.channel_wait_us)
        reg.gauge("sim.die_wait_us").set(result.die_wait_us)
        elapsed_us = result.makespan_us
        for res in (*self.channels, *self.dies):
            reg.gauge(f"util.{res.name}.busy_fraction").set(
                res.utilization(elapsed_us)
            )
        if self.buffer is not None:
            self.buffer.stats.publish(reg)
        if self.faults is not None:
            self.faults.publish(reg)
        if self.obs.profiler is not None:
            self.obs.profiler.publish(reg)
        if result.breakdown is not None:
            reg.counter("attr.requests").value = result.breakdown.requests
            for phase, total_us in result.breakdown.phase_totals_us.items():
                reg.gauge(f"attr.{phase}").set(total_us)

    # ------------------------------------------------------------------
    def _make_submit(self, req: IORequest):
        def submit() -> None:
            if self.on_submit is not None:
                self.on_submit(req)
            tr = self._trace
            if tr is not None:
                tr.emit(
                    self.loop.now, "request_submit", f"w{req.workload_id}",
                    "host", args={
                        "op": req.op.name, "lpn": req.lpn, "len": req.length,
                    },
                )
            key = self._next_req_key
            self._next_req_key += 1
            flight = _InFlight(req)
            self._inflight[key] = flight
            for lpn in req.lpns():
                if self.buffer is not None and self._via_buffer(key, req, lpn):
                    continue
                if req.op is OpType.READ:
                    self._issue_read(key, req.workload_id, lpn)
                else:
                    self._issue_write(key, req.workload_id, lpn)

        return submit

    # ------------------------------------------------------------------
    def _via_buffer(self, key: int, req: IORequest, lpn: int) -> bool:
        """Route one page through the DRAM buffer.

        Returns True when the page was fully served by DRAM (completion
        scheduled); False when the page still needs the flash read path.
        Dirty evictions always spawn background flash writes.
        """
        assert self.buffer is not None
        glpn = self.controller.global_lpn(req.workload_id, lpn)
        if req.op is OpType.WRITE:
            outcome = self.buffer.write(glpn)
        else:
            outcome = self.buffer.read(glpn)
        for victim in outcome.flash_writes:
            wid = victim // self.controller.tenant_lpn_space
            victim_lpn = victim % self.controller.tenant_lpn_space
            self._issue_background_write(wid, victim_lpn)
        if req.op is OpType.WRITE or outcome.hit:
            # Absorbed write or DRAM read hit: completes at DRAM latency.
            dram_us = self.buffer.config.dram_latency_us
            done = self.loop.now + dram_us
            span = None
            attribution = self._attribution
            if attribution is not None:
                span = attribution.span(-1, -1)
                span.buffer_us = dram_us
            self.loop.schedule(done, lambda: self._complete_page(key, span=span))
            return True
        return False

    def _issue_background_write(self, wid: int, lpn: int) -> None:
        """Program an evicted dirty page; no host request completion."""
        ppn, gc_items = self.controller.place_write(wid, lpn)
        die = self._die_of_ppn(ppn)
        bus = self._channel_of_ppn(ppn)
        t = self.times
        if gc_items:
            self._charge_gc(gc_items)

        def bus_granted(start: float) -> None:
            done = start + t.write_bus_us

            def to_die() -> None:
                die.acquire(
                    (PRIO_WRITE, self.loop.now), t.write_die_us, lambda _s: None
                )

            self.loop.schedule(done, to_die)

        bus.acquire((PRIO_WRITE, self.loop.now), t.write_bus_us, bus_granted)

    def _issue_read(self, key: int, wid: int, lpn: int) -> None:
        ppn = self.controller.resolve_read(wid, lpn)
        die = self._die_of_ppn(ppn)
        bus = self._channel_of_ppn(ppn)
        t = self.times
        if self._trace is not None:
            self._dispatch_event(wid, lpn, ppn, "read", die, bus)

        prio = self._read_prio
        die_us = t.read_die_us
        span = None
        attribution = self._attribution
        if attribution is not None:
            geom = self.controller.geometry
            span = attribution.span(
                geom.channel_of(ppn),
                geom.plane_index(ppn) // self._planes_per_die,
            )
        unrecoverable = False
        if self.faults is not None:
            geom = self.controller.geometry
            plane = self.controller.state.planes[geom.plane_index(ppn)]
            block = plane.block_of(ppn)
            outcome = self.faults.read_outcome(
                geom.channel_of(ppn), plane.erase_count[block]
            )
            if outcome.retries:
                # Each ECC retry re-senses the array: the die stays busy for
                # one extra command+tR round per retry.
                die_us = t.read_die_with_retries_us(outcome.retries)
                if self._trace is not None:
                    self._trace.emit(
                        self.loop.now, "read_retry", die.name, "faults",
                        args={"ppn": ppn, "retries": outcome.retries,
                              "unrecoverable": outcome.unrecoverable},
                    )
            unrecoverable = outcome.unrecoverable

        def die_granted(start: float) -> None:
            done = start + die_us
            if span is not None:
                span.die_granted(start, die)
                span.die_us = t.read_die_us
                span.ecc_retry_us = die_us - t.read_die_us
            if unrecoverable:
                # ECC exhausted: the die time was spent but no data moves
                # over the bus — the request surfaces as a failed read.
                self.loop.schedule(done, lambda: self._complete_page(key, failed=True))
                return

            def to_bus() -> None:
                if span is not None:
                    span.bus_enqueued(self.loop.now)
                bus.acquire((prio, self.loop.now), t.read_bus_us, bus_granted)

            self.loop.schedule(done, to_bus)

        def bus_granted(start: float) -> None:
            if span is not None:
                span.bus_granted(start)
                span.bus_us = t.read_bus_us
            self.loop.schedule(
                start + t.read_bus_us, lambda: self._complete_page(key, span=span)
            )

        if span is not None:
            span.die_enqueued(self.loop.now, die)
        die.acquire((prio, self.loop.now), die_us, die_granted)

    def _issue_write(self, key: int, wid: int, lpn: int) -> None:
        ppn, gc_items = self.controller.place_write(wid, lpn)
        die = self._die_of_ppn(ppn)
        bus = self._channel_of_ppn(ppn)
        t = self.times
        if self._trace is not None:
            self._dispatch_event(wid, lpn, ppn, "write", die, bus)
        if gc_items:
            self._charge_gc(gc_items)
        span = None
        attribution = self._attribution
        if attribution is not None:
            geom = self.controller.geometry
            span = attribution.span(
                geom.channel_of(ppn),
                geom.plane_index(ppn) // self._planes_per_die,
            )

        def bus_granted(start: float) -> None:
            done = start + t.write_bus_us
            if span is not None:
                span.bus_granted(start)
                span.bus_us = t.write_bus_us

            def to_die() -> None:
                if span is not None:
                    span.die_enqueued(self.loop.now, die)
                die.acquire((PRIO_WRITE, self.loop.now), t.write_die_us, die_granted)

            self.loop.schedule(done, to_die)

        def die_granted(start: float) -> None:
            if span is not None:
                span.die_granted(start, die)
                span.die_us = t.write_die_us
            self.loop.schedule(
                start + t.write_die_us, lambda: self._complete_page(key, span=span)
            )

        if span is not None:
            span.bus_enqueued(self.loop.now)
        bus.acquire((PRIO_WRITE, self.loop.now), t.write_bus_us, bus_granted)

    def _dispatch_event(self, wid, lpn, ppn, op, die, bus) -> None:
        """Emit one ``subrequest_dispatch`` trace record (tracing only)."""
        self._trace.emit(
            self.loop.now, "subrequest_dispatch", bus.name, "sim",
            args={"wid": wid, "lpn": lpn, "ppn": ppn, "op": op, "die": die.name},
        )

    def _charge_gc(self, items: list) -> None:
        """Charge die time for FTL background work done on behalf of a write.

        ``items`` mixes :class:`~repro.ssd.ftl.gc.GCWorkItem` (copyback +
        erase of a reclaimed block) and
        :class:`~repro.ssd.faults.FaultWorkItem` (relocation out of a block
        being retired); both expose ``die_us(times)``.
        """
        t = self.times
        tr = self._trace
        for item in items:
            die = self.dies[item.plane_index // self._planes_per_die]
            duration_us = item.die_us(t)
            if tr is None:

                def book(start, die=die, duration_us=duration_us):
                    # booked at grant time so waiting host jobs can sample
                    # the overlap (see Resource.gc_busy_time_us)
                    die.gc_busy_time_us += duration_us

                die.acquire((PRIO_GC, self.loop.now), duration_us, book)
            else:
                is_gc = isinstance(item, GCWorkItem)
                retired = not is_gc or item.retired

                def on_grant(start, die=die, item=item, duration_us=duration_us,
                             is_gc=is_gc, retired=retired):
                    die.gc_busy_time_us += duration_us
                    if is_gc:
                        tr.emit(
                            start, "gc_start", die.name, "gc",
                            args={"plane": item.plane_index, "block": item.block,
                                  "moves": item.moves},
                        )
                        self.loop.schedule(
                            start + duration_us,
                            lambda: tr.emit(self.loop.now, "gc_end", die.name, "gc"),
                        )
                    if retired:
                        tr.emit(
                            start, "block_retired", die.name, "faults",
                            args={"plane": item.plane_index, "block": item.block,
                                  "moves": item.moves},
                        )

                die.acquire((PRIO_GC, self.loop.now), duration_us, on_grant)

    def _complete_page(self, key: int, failed: bool = False, span=None) -> None:
        flight = self._inflight[key]
        flight.remaining -= 1
        self.subrequests_done += 1
        if failed:
            flight.failed = True
        if flight.last_end_us <= self.loop.now:
            flight.last_end_us = self.loop.now
            if span is not None:
                # this page (co-)defines the critical path: any page ending
                # at the request's completion time telescopes, phase by
                # phase, back to its arrival — keep its span
                span.end_us = self.loop.now
                flight.span = span
        if flight.remaining == 0:
            req = flight.request
            req.complete_us = flight.last_end_us
            if flight.failed:
                # Unrecoverable read: the request surfaces as failed, and its
                # latency is excluded from the success statistics.
                self.failed_reads += 1
                if self._registry is not None:
                    self._registry.counter("sim.failed_reads").inc()
                if self._flightrec is not None:
                    self._flightrec.dump_once(
                        "unrecoverable-read",
                        detail=(
                            f"wid={req.workload_id} lpn={req.lpn} "
                            f"len={req.length}"
                        ),
                        time_us=self.loop.now,
                    )
            else:
                self.acc.add(req.workload_id, req.op, req.latency_us)
                if self._hist is not None:
                    self._hist[req.op].observe(req.latency_us)
                if self._tenant_hist is not None:
                    hist = self._tenant_hist.get((req.workload_id, req.op))
                    if hist is None:
                        kind = "read" if req.op is OpType.READ else "write"
                        hist = self._registry.histogram(
                            f"sim.tenant.{req.workload_id}.{kind}_latency_us"
                        )
                        self._tenant_hist[(req.workload_id, req.op)] = hist
                    hist.observe(req.latency_us)
                if self._attribution is not None and flight.span is not None:
                    self._attribution.record(req, flight.span)
            del self._inflight[key]
            self.requests_done += 1
            if self._registry is not None:
                self._registry.counter("sim.requests").inc()
            if self.on_complete is not None:
                self.on_complete(req)


def simulate(
    requests: Iterable[IORequest],
    config: SSDConfig,
    channel_sets: Mapping[int, Sequence[int]],
    page_modes: Mapping[int, PageAllocMode] | None = None,
    *,
    record_latencies: bool = False,
    obs=None,
    faults: "FaultConfig | FaultInjector | None" = None,
    sanitizer=None,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`SSDSimulator`."""
    sim = SSDSimulator(
        config, channel_sets, page_modes, record_latencies=record_latencies,
        obs=obs, faults=faults, sanitizer=sanitizer,
    )
    return sim.run(requests)
