"""Service-time decomposition for flash operations.

Each host page access decomposes into resource *phases* with fixed durations
derived from the :class:`~repro.ssd.config.SSDConfig`:

``READ``
    die busy for ``tR`` (flash array sense), then the channel bus busy for the
    page transfer out of the plane's cache register.
``WRITE``
    channel bus busy for the page transfer into the register, then the die
    busy for ``tPROG``.
``ERASE`` (garbage collection)
    die busy for ``tBERS``; no bus involvement.
``MOVE`` (GC valid-page copy, plane-internal copyback)
    die busy for ``tR + tPROG``; no bus involvement.

This mirrors how SSDSim charges channel occupancy only for data transfer
while the flash array time is charged to the die, which is exactly the
mechanism that creates the read/write conflicts the paper studies: a read
must wait for a die that is mid-program, and bus transfers from co-located
tenants serialise on the shared channel.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import SSDConfig

__all__ = ["ServiceTimes"]


@dataclass(frozen=True)
class ServiceTimes:
    """Phase durations (microseconds) for one configuration."""

    read_flash_us: float
    write_flash_us: float
    erase_us: float
    transfer_us: float
    command_us: float

    @classmethod
    def from_config(cls, config: SSDConfig) -> "ServiceTimes":
        """Derive all phase durations from a device configuration."""
        return cls(
            read_flash_us=config.read_latency_us,
            write_flash_us=config.write_latency_us,
            erase_us=config.erase_latency_us,
            transfer_us=config.page_transfer_us,
            command_us=config.command_overhead_us,
        )

    # Phase durations -----------------------------------------------------
    @property
    def read_die_us(self) -> float:
        """Die occupancy of a read: command + array sense."""
        return self.command_us + self.read_flash_us

    def read_die_with_retries_us(self, retries: int) -> float:
        """Die occupancy of a read that needed ``retries`` ECC read retries.

        Each retry re-issues the command and re-senses the array with tuned
        thresholds, so a read with ``n`` retries holds the die for
        ``(1 + n)`` full command+tR rounds.  ``retries=0`` is exactly
        :attr:`read_die_us`.
        """
        if retries < 0:
            raise ValueError("retries must be non-negative")
        return (1 + retries) * self.read_die_us

    @property
    def read_bus_us(self) -> float:
        """Channel occupancy of a read: page transfer out."""
        return self.transfer_us

    @property
    def write_bus_us(self) -> float:
        """Channel occupancy of a write: command + page transfer in."""
        return self.command_us + self.transfer_us

    @property
    def write_die_us(self) -> float:
        """Die occupancy of a write: program time."""
        return self.write_flash_us

    @property
    def move_die_us(self) -> float:
        """Die occupancy of a GC copyback (read + program, no bus)."""
        return self.read_flash_us + self.write_flash_us

    # Unloaded service times ----------------------------------------------
    @property
    def read_service_us(self) -> float:
        """End-to-end read service time on an idle device."""
        return self.read_die_us + self.read_bus_us

    @property
    def write_service_us(self) -> float:
        """End-to-end write service time on an idle device."""
        return self.write_bus_us + self.write_die_us
