"""Workload substrate: specs, synthetic generation, MSR stand-ins, mixing.

Typical flow::

    from repro.workloads import msr, synthesize_mix

    specs = [msr.spec(n, rate_scale=2e4) for n in
             ("mds_0", "mds_1", "rsrch_0", "prxy_0")]
    mixed = synthesize_mix(specs, total_requests=10_000, seed=1)
"""

from . import msr, traces
from .adversarial import (
    SCENARIOS,
    build_scenario,
    migrating_hotspot,
    noisy_neighbor,
    phase_change,
)
from .mixer import MixedWorkload, mix, synthesize_mix
from .spec import WorkloadSpec
from .stats import TraceStats, analyze, per_workload
from .synthetic import generate, generate_arrays
from .transform import (
    clone,
    remap_workloads,
    rescale_time,
    rescale_to_rate,
    shift_time,
    slice_window,
)

__all__ = [
    "WorkloadSpec",
    "SCENARIOS",
    "build_scenario",
    "migrating_hotspot",
    "noisy_neighbor",
    "phase_change",
    "generate",
    "generate_arrays",
    "MixedWorkload",
    "mix",
    "synthesize_mix",
    "TraceStats",
    "analyze",
    "per_workload",
    "clone",
    "remap_workloads",
    "rescale_time",
    "rescale_to_rate",
    "shift_time",
    "slice_window",
    "msr",
    "traces",
]
