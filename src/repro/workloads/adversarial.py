"""Adversarial tenant scenarios — drift the offline model never saw.

The offline learner is trained on stationary mixes: each tenant keeps one
statistical identity for the whole trace.  Real multi-tenant devices are
not that polite, and these generators produce the three hostile families
the adaptive keeper is hardened against:

* **migrating hotspot** (:func:`migrating_hotspot`) — one tenant at a
  time carries a hot, skewed, write-leaning load while the rest idle
  along; every phase the hotspot moves to the next tenant.  The *mix*
  proportions the features collector sees rotate phase by phase, so a
  one-shot decision is wrong for most of the trace.
* **phase change** (:func:`phase_change`) — a single tenant flips
  between a read-dominated and a write-dominated identity at every
  phase boundary while the others stay fixed.  The paper's binary R/W
  characteristic for that tenant inverts repeatedly — textbook concept
  drift on one feature dimension.
* **noisy neighbour** (:func:`noisy_neighbor`) — well-behaved tenants
  share the device with one neighbour that alternates between near
  silence and a write burst many times its quiet rate, stealing channel
  time in bursts that decorrelate predicted from realised latency.

All three build per-phase per-tenant specs and synthesise each phase
with seeds derived from (scenario seed, phase, tenant), so a scenario is
fully reproducible from its arguments.  Streams stay chronologically
sorted per tenant (each phase generates inside its own time slot) and
merge through the standard :func:`~repro.workloads.mixer.mix`.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..ssd.request import IORequest
from .mixer import MixedWorkload, mix
from .spec import WorkloadSpec
from .synthetic import generate

__all__ = [
    "SCENARIOS",
    "migrating_hotspot",
    "phase_change",
    "noisy_neighbor",
    "build_scenario",
]


def _phased_mix(
    phase_specs: Sequence[Sequence[WorkloadSpec]],
    *,
    phase_us: float,
    seed: int,
    name: str,
    base_specs: Sequence[WorkloadSpec],
) -> MixedWorkload:
    """Generate each (phase, tenant) slot independently and merge.

    Each tenant's per-phase request count is sized from its rate and the
    phase duration (oversampled, then clipped to the phase boundary), so
    the realised intensity tracks the spec and phases never bleed into
    each other.
    """
    if not phase_specs:
        raise ValueError("need at least one phase")
    n_tenants = len(phase_specs[0])
    if any(len(specs) != n_tenants for specs in phase_specs):
        raise ValueError("every phase must describe every tenant")
    if phase_us <= 0:
        raise ValueError("phase_us must be positive")
    streams: list[list[IORequest]] = [[] for _ in range(n_tenants)]
    for phase, specs in enumerate(phase_specs):
        start_us = phase * phase_us
        end_us = start_us + phase_us
        for wid, spec in enumerate(specs):
            seconds = phase_us / 1e6
            count = max(1, int(round(spec.rate_rps * seconds * 1.3)))
            requests = generate(
                spec,
                count,
                workload_id=wid,
                seed=seed * 100_003 + phase * 101 + wid,
                start_us=start_us,
            )
            streams[wid].extend(r for r in requests if r.arrival_us < end_us)
    workload = mix(streams, base_specs, name=name)
    workload.metadata.update(
        phases=len(phase_specs),
        phase_us=phase_us,
        seed=seed,
        phase_specs=[[s.name for s in specs] for specs in phase_specs],
    )
    return workload


def _background(i: int, rate_rps: float) -> WorkloadSpec:
    """A quiet, read-leaning tenant — the stationary crowd."""
    return WorkloadSpec(
        name=f"bg{i}",
        write_ratio=0.2,
        rate_rps=rate_rps,
        footprint_pages=1 << 14,
        sequential_fraction=0.3,
    )


def migrating_hotspot(
    *,
    n_tenants: int = 4,
    phases: int = 4,
    phase_us: float = 50_000.0,
    base_rate_rps: float = 2_000.0,
    hot_rate_factor: float = 6.0,
    hot_write_ratio: float = 0.8,
    seed: int = 0,
) -> MixedWorkload:
    """A hot, skewed, write-leaning load that moves tenants every phase."""
    if n_tenants < 2:
        raise ValueError("migrating hotspot needs at least 2 tenants")
    if phases < 1:
        raise ValueError("phases must be >= 1")
    if hot_rate_factor <= 1:
        raise ValueError("hot_rate_factor must exceed 1")
    base_specs = [_background(i, base_rate_rps) for i in range(n_tenants)]
    phase_specs = []
    for phase in range(phases):
        hot = phase % n_tenants
        specs = []
        for i in range(n_tenants):
            if i == hot:
                specs.append(WorkloadSpec(
                    name=f"hot{i}",
                    write_ratio=hot_write_ratio,
                    rate_rps=base_rate_rps * hot_rate_factor,
                    footprint_pages=1 << 12,
                    sequential_fraction=0.1,
                    skew=1.5,
                    burstiness=2.0,
                ))
            else:
                specs.append(base_specs[i])
        phase_specs.append(specs)
    return _phased_mix(
        phase_specs, phase_us=phase_us, seed=seed,
        name="migrating_hotspot", base_specs=base_specs,
    )


def phase_change(
    *,
    n_tenants: int = 4,
    phases: int = 4,
    phase_us: float = 50_000.0,
    base_rate_rps: float = 2_000.0,
    changer_rate_rps: float = 6_000.0,
    read_write_ratio: float = 0.1,
    write_write_ratio: float = 0.9,
    seed: int = 0,
) -> MixedWorkload:
    """Tenant 0 flips read-heavy <-> write-heavy at every phase boundary."""
    if n_tenants < 1:
        raise ValueError("phase change needs at least 1 tenant")
    if phases < 2:
        raise ValueError("phase change needs at least 2 phases")
    base_specs = [_background(i, base_rate_rps) for i in range(n_tenants)]
    base_specs[0] = WorkloadSpec(
        name="changer",
        write_ratio=read_write_ratio,
        rate_rps=changer_rate_rps,
        footprint_pages=1 << 14,
        sequential_fraction=0.3,
    )
    phase_specs = []
    for phase in range(phases):
        ratio = read_write_ratio if phase % 2 == 0 else write_write_ratio
        specs = list(base_specs)
        specs[0] = WorkloadSpec(
            name=f"changer-p{phase}",
            write_ratio=ratio,
            rate_rps=changer_rate_rps,
            footprint_pages=1 << 14,
            sequential_fraction=0.3,
        )
        phase_specs.append(specs)
    return _phased_mix(
        phase_specs, phase_us=phase_us, seed=seed,
        name="phase_change", base_specs=base_specs,
    )


def noisy_neighbor(
    *,
    n_tenants: int = 4,
    phases: int = 4,
    phase_us: float = 50_000.0,
    base_rate_rps: float = 2_000.0,
    quiet_rate_rps: float = 200.0,
    noise_factor: float = 8.0,
    seed: int = 0,
) -> MixedWorkload:
    """The last tenant alternates near-silence with a write-burst storm."""
    if n_tenants < 2:
        raise ValueError("noisy neighbour needs at least 2 tenants")
    if phases < 2:
        raise ValueError("noisy neighbour needs at least 2 phases")
    if noise_factor <= 1:
        raise ValueError("noise_factor must exceed 1")
    base_specs = [_background(i, base_rate_rps) for i in range(n_tenants - 1)]
    neighbor = n_tenants - 1
    quiet = WorkloadSpec(
        name="neighbor-quiet",
        write_ratio=0.2,
        rate_rps=quiet_rate_rps,
        footprint_pages=1 << 12,
        sequential_fraction=0.5,
    )
    loud = WorkloadSpec(
        name="neighbor-loud",
        write_ratio=0.95,
        rate_rps=base_rate_rps * noise_factor,
        footprint_pages=1 << 12,
        sequential_fraction=0.1,
        skew=1.0,
        burstiness=3.0,
    )
    base_specs.append(quiet.with_name(f"bg{neighbor}"))
    phase_specs = []
    for phase in range(phases):
        specs = list(base_specs)
        specs[neighbor] = quiet if phase % 2 == 0 else loud
        phase_specs.append(specs)
    return _phased_mix(
        phase_specs, phase_us=phase_us, seed=seed,
        name="noisy_neighbor", base_specs=base_specs,
    )


#: scenario registry: name -> builder (all keyword-only knobs)
SCENARIOS: dict[str, Callable[..., MixedWorkload]] = {
    "migrating_hotspot": migrating_hotspot,
    "phase_change": phase_change,
    "noisy_neighbor": noisy_neighbor,
}


def build_scenario(name: str, **kwargs) -> MixedWorkload:
    """Build a named adversarial scenario (see :data:`SCENARIOS`)."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(f"unknown scenario {name!r} (known: {known})") from None
    return builder(**kwargs)
