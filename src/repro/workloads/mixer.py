"""Mixing tenant streams into one multi-tenant trace.

The paper's evaluation "first mix[es] the four workloads in chronological
order and then take[s] one million traces" (Section V-C).  :func:`mix`
reproduces exactly that: merge per-tenant request lists by arrival time and
truncate to the first ``limit`` requests.

:class:`MixedWorkload` couples the merged trace with the specs that produced
it, which is what the features collector and the experiment harness consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import heapq
from typing import Sequence

from ..ssd.request import IORequest
from .spec import WorkloadSpec
from .synthetic import generate

__all__ = ["MixedWorkload", "mix", "synthesize_mix"]


@dataclass
class MixedWorkload:
    """A merged multi-tenant trace plus its generating specs."""

    specs: list[WorkloadSpec]
    requests: list[IORequest]
    name: str = "mix"
    metadata: dict = field(default_factory=dict)

    @property
    def n_tenants(self) -> int:
        return len(self.specs)

    def count_for(self, workload_id: int) -> int:
        return sum(1 for r in self.requests if r.workload_id == workload_id)

    def proportions(self) -> list[float]:
        """Per-tenant share of the merged request count (sums to 1)."""
        total = len(self.requests)
        if total == 0:
            return [0.0] * self.n_tenants
        counts = [0] * self.n_tenants
        for r in self.requests:
            counts[r.workload_id] += 1
        return [c / total for c in counts]

    def duration_us(self) -> float:
        if not self.requests:
            return 0.0
        return self.requests[-1].arrival_us - self.requests[0].arrival_us

    def write_fraction(self) -> float:
        """Share of writes over the whole merged trace."""
        if not self.requests:
            return 0.0
        writes = sum(1 for r in self.requests if not r.is_read)
        return writes / len(self.requests)


def mix(
    streams: Sequence[list[IORequest]],
    specs: Sequence[WorkloadSpec],
    *,
    limit: int | None = None,
    name: str = "mix",
) -> MixedWorkload:
    """Merge per-tenant streams chronologically; keep the first ``limit``.

    Each stream's requests must already carry the correct ``workload_id``
    (its index in ``streams``) and be sorted by arrival.
    """
    if len(streams) != len(specs):
        raise ValueError("streams and specs must align")
    for wid, stream in enumerate(streams):
        for r in stream:
            if r.workload_id != wid:
                raise ValueError(
                    f"stream {wid} contains request tagged workload {r.workload_id}"
                )
    merged = list(heapq.merge(*streams, key=lambda r: r.arrival_us))
    if limit is not None:
        merged = merged[:limit]
    return MixedWorkload(specs=list(specs), requests=merged, name=name)


def synthesize_mix(
    specs: Sequence[WorkloadSpec],
    *,
    total_requests: int,
    seed: int = 0,
    name: str = "mix",
) -> MixedWorkload:
    """Generate one merged trace of ``total_requests`` from per-tenant specs.

    Per-tenant request counts are proportional to the specs' arrival rates
    (the natural outcome of running the tenants concurrently), oversampled
    slightly before the chronological truncation so the head of the merge is
    dense.
    """
    if total_requests < 0:
        raise ValueError("total_requests must be non-negative")
    if not specs:
        raise ValueError("need at least one spec")
    total_rate = sum(s.rate_rps for s in specs)
    streams = []
    for wid, spec in enumerate(specs):
        share = spec.rate_rps / total_rate
        count = max(1, int(round(total_requests * share * 1.15)))
        streams.append(
            generate(spec, count, workload_id=wid, seed=seed * 7919 + wid)
        )
    return mix(streams, specs, limit=total_requests, name=name)
