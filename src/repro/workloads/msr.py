"""Stand-ins for the MSR Cambridge traces of Table II.

The paper evaluates on six MSR Cambridge block traces.  Those traces are not
redistributable and need a network download, so this module builds
:class:`~repro.workloads.spec.WorkloadSpec` stand-ins whose *published*
statistics match Table II exactly:

========  ===========  ==========  =============
workload  write ratio  read ratio  request count
========  ===========  ==========  =============
mds_0     88%          12%         1,211,034
mds_1     7%           93%         1,637,711
rsrch_0   91%          9%          1,433,654
prxy_0    97%          3%          12,518,968
src_1     5%           95%         45,746,222
web_2     1%           99%         5,175,367
========  ===========  ==========  =============

Relative arrival rates are derived from the request counts (all six traces
cover the same one-week window in the original corpus), and per-server
personalities (request size, sequentiality, skew) follow the qualitative
characterisations in the MSR trace literature: proxies issue small skewed
writes, media/source servers lean sequential, web servers read randomly.

Because the absolute one-week rates would leave a Table-I SSD idle,
:func:`spec` exposes a ``rate_scale`` used by the experiments to compress
time while preserving the *relative* intensities between workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from .spec import WorkloadSpec

__all__ = ["TABLE_II", "TraceInfo", "spec", "available", "request_count"]

_WEEK_SECONDS = 7 * 24 * 3600.0


@dataclass(frozen=True)
class TraceInfo:
    """Published Table-II statistics plus the stand-in's personality."""

    name: str
    write_ratio: float
    request_count: int
    mean_request_pages: float
    sequential_fraction: float
    skew: float
    burstiness: float


TABLE_II: dict[str, TraceInfo] = {
    # media server metadata volume: write-heavy, small, moderately skewed
    "mds_0": TraceInfo("mds_0", 0.88, 1_211_034, 1.6, 0.25, 0.8, 2.0),
    # media server data volume: read-heavy, larger sequential reads
    "mds_1": TraceInfo("mds_1", 0.07, 1_637_711, 3.0, 0.55, 0.4, 2.0),
    # research projects: write-heavy, small random writes
    "rsrch_0": TraceInfo("rsrch_0", 0.91, 1_433_654, 1.4, 0.20, 0.9, 2.5),
    # firewall/web proxy: extremely write-heavy, small, hot working set
    "prxy_0": TraceInfo("prxy_0", 0.97, 12_518_968, 1.2, 0.10, 1.5, 3.0),
    # source control: read-dominated, high volume, fairly sequential
    "src_1": TraceInfo("src_1", 0.05, 45_746_222, 2.5, 0.60, 0.6, 2.0),
    # web server: read-dominated, random small reads
    "web_2": TraceInfo("web_2", 0.01, 5_175_367, 1.8, 0.15, 1.0, 2.0),
}


def available() -> list[str]:
    """Names of the Table-II workloads."""
    return sorted(TABLE_II)


def request_count(name: str) -> int:
    """Published request count for a Table-II workload."""
    return _info(name).request_count


def spec(
    name: str,
    *,
    rate_scale: float = 1.0,
    footprint_pages: int = 1 << 16,
) -> WorkloadSpec:
    """Build the stand-in spec for one Table-II workload.

    ``rate_scale`` multiplies the trace's natural one-week arrival rate;
    the relative intensity *between* traces is preserved at any scale.
    ``footprint_pages`` bounds the address space so shrunken test devices
    are not overflowed; experiments size it from the device.
    """
    info = _info(name)
    natural_rps = info.request_count / _WEEK_SECONDS
    return WorkloadSpec(
        name=info.name,
        write_ratio=info.write_ratio,
        rate_rps=natural_rps * rate_scale,
        mean_request_pages=info.mean_request_pages,
        max_request_pages=16,
        footprint_pages=footprint_pages,
        sequential_fraction=info.sequential_fraction,
        skew=info.skew,
        burstiness=info.burstiness,
    )


def _info(name: str) -> TraceInfo:
    try:
        return TABLE_II[name]
    except KeyError:
        raise KeyError(
            f"unknown Table-II workload {name!r}; available: {available()}"
        ) from None
