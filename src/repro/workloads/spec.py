"""Workload specifications.

A :class:`WorkloadSpec` is the statistical description of one tenant's I/O
stream: read/write mix, arrival intensity, request sizes, and address
behaviour.  The synthetic generator (:mod:`repro.workloads.synthetic`) turns
a spec into a concrete list of :class:`~repro.ssd.request.IORequest`.

The paper's tenants are either *read-dominated* or *write-dominated*
(Section IV-B); :attr:`WorkloadSpec.is_write_dominated` encodes that
classification the same way the features collector does (write ratio > 0.5).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["WorkloadSpec"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Statistical description of one tenant's request stream."""

    #: Human-readable identifier (e.g. "mds_0" or "synthetic-w80").
    name: str
    #: Fraction of requests that are writes, in [0, 1].
    write_ratio: float
    #: Mean request arrival rate in requests per second.
    rate_rps: float = 2000.0
    #: Mean request size in pages (geometric distribution, min 1).
    mean_request_pages: float = 2.0
    #: Largest request size in pages.
    max_request_pages: int = 16
    #: Number of distinct logical pages this tenant touches.
    footprint_pages: int = 1 << 16
    #: Fraction of requests that continue a sequential run.
    sequential_fraction: float = 0.3
    #: Zipf-like skew of random accesses: 0 = uniform, higher = hotter head.
    skew: float = 0.0
    #: Burstiness knob: 1.0 = Poisson; >1 stretches the arrival tail
    #: (hyper-exponential mix), producing the on/off bursts real traces show.
    burstiness: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ValueError("write_ratio must be in [0, 1]")
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if self.mean_request_pages < 1:
            raise ValueError("mean_request_pages must be >= 1")
        if self.max_request_pages < 1:
            raise ValueError("max_request_pages must be >= 1")
        if self.footprint_pages < 1:
            raise ValueError("footprint_pages must be >= 1")
        if not 0.0 <= self.sequential_fraction <= 1.0:
            raise ValueError("sequential_fraction must be in [0, 1]")
        if self.skew < 0:
            raise ValueError("skew must be non-negative")
        if self.burstiness < 1.0:
            raise ValueError("burstiness must be >= 1")

    @property
    def read_ratio(self) -> float:
        return 1.0 - self.write_ratio

    @property
    def is_write_dominated(self) -> bool:
        """The paper's binary R/W characteristic (0=write, 1=read)."""
        return self.write_ratio > 0.5

    @property
    def mean_interarrival_us(self) -> float:
        return 1e6 / self.rate_rps  # repro-lint: disable=R001 (1/rps is seconds, so 1e6/rps is microseconds)

    def scaled_rate(self, factor: float) -> "WorkloadSpec":
        """Copy with the arrival rate multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(self, rate_rps=self.rate_rps * factor)

    def with_name(self, name: str) -> "WorkloadSpec":
        return replace(self, name=name)

    def describe(self) -> str:
        kind = "write" if self.is_write_dominated else "read"
        return (
            f"{self.name}: {self.write_ratio:.0%} writes ({kind}-dominated), "
            f"{self.rate_rps:.0f} req/s, mean {self.mean_request_pages:.1f} pages, "
            f"footprint {self.footprint_pages} pages, "
            f"{self.sequential_fraction:.0%} sequential"
        )
