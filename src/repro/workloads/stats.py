"""Trace analysis: measure the statistics a spec promises.

Given any request list, :func:`analyze` reports the realised arrival rate,
read/write mix, request-size distribution, sequentiality, address footprint
and burstiness — the quantities the features collector and the synthetic
generator trade in.  Used by the examples, by Table-II fidelity checks, and
for validating external trace files before feeding them to the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..ssd.request import IORequest

__all__ = ["TraceStats", "analyze", "per_workload"]


@dataclass(frozen=True)
class TraceStats:
    """Realised statistics of one request stream."""

    requests: int
    pages: int
    duration_us: float
    rate_rps: float
    write_ratio: float
    mean_request_pages: float
    max_request_pages: int
    footprint_pages: int
    sequential_fraction: float
    #: coefficient of variation of inter-arrival gaps (1 = Poisson)
    arrival_cv: float
    #: share of accesses landing on the hottest decile of touched pages
    top_decile_share: float

    def describe(self) -> str:
        return (
            f"{self.requests} reqs ({self.pages} pages) over "
            f"{self.duration_us / 1e3:.1f} ms = {self.rate_rps:,.0f} req/s; "
            f"{self.write_ratio:.0%} writes, mean {self.mean_request_pages:.2f} "
            f"pages (max {self.max_request_pages}), footprint "
            f"{self.footprint_pages} pages, {self.sequential_fraction:.0%} "
            f"sequential, arrival CV {self.arrival_cv:.2f}, hot-decile share "
            f"{self.top_decile_share:.0%}"
        )


def analyze(requests: Sequence[IORequest]) -> TraceStats:
    """Measure a request stream (must be non-empty and arrival-sorted-ish)."""
    if not requests:
        raise ValueError("cannot analyze an empty trace")
    ordered = sorted(requests, key=lambda r: r.arrival_us)
    arrivals_us = np.array([r.arrival_us for r in ordered])
    lengths = np.array([r.length for r in ordered])
    writes = sum(1 for r in ordered if not r.is_read)

    duration_us = float(arrivals_us[-1] - arrivals_us[0])
    gaps = np.diff(arrivals_us)
    positive = gaps[gaps > 0]
    cv = float(positive.std() / positive.mean()) if positive.size > 1 else 0.0

    sequential = sum(
        1
        for a, b in zip(ordered, ordered[1:])
        if b.workload_id == a.workload_id and b.lpn == a.lpn + a.length
    )

    # Footprint and skew over touched first-pages (cheap proxy for pages).
    touched = np.array([r.lpn for r in ordered])
    unique, counts = np.unique(touched, return_counts=True)
    counts_sorted = np.sort(counts)
    decile = max(1, len(unique) // 10)
    top_share = float(counts_sorted[-decile:].sum() / counts_sorted.sum())

    return TraceStats(
        requests=len(ordered),
        pages=int(lengths.sum()),
        duration_us=duration_us,
        rate_rps=float(len(ordered) / duration_us * 1e6) if duration_us > 0 else 0.0,
        write_ratio=writes / len(ordered),
        mean_request_pages=float(lengths.mean()),
        max_request_pages=int(lengths.max()),
        footprint_pages=int(unique.size),
        sequential_fraction=sequential / max(1, len(ordered) - 1),
        arrival_cv=cv,
        top_decile_share=top_share,
    )


def per_workload(requests: Sequence[IORequest]) -> dict[int, TraceStats]:
    """Split a mixed trace by workload id and analyze each tenant."""
    buckets: dict[int, list[IORequest]] = {}
    for r in requests:
        buckets.setdefault(r.workload_id, []).append(r)
    return {wid: analyze(reqs) for wid, reqs in sorted(buckets.items())}
