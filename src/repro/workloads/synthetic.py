"""Synthetic trace generation from a :class:`~repro.workloads.spec.WorkloadSpec`.

The generator produces the statistical properties the SSDKeeper experiments
depend on:

* **arrival intensity** — exponential inter-arrivals_us at the spec's rate, with
  an optional hyper-exponential stretch for burstiness;
* **read/write mix** — Bernoulli per request at the spec's write ratio;
* **request sizes** — geometric with the spec's mean, capped at the max
  (large requests span many pages, so they collide with more chips — the
  paper's Section III observation);
* **address behaviour** — sequential runs with probability
  ``sequential_fraction``, otherwise random jumps drawn uniformly or with a
  Zipf-like skew over the footprint.

Generation is fully vectorised in numpy, then materialised into
:class:`~repro.ssd.request.IORequest` objects.
"""

from __future__ import annotations

import numpy as np

from ..ssd.request import IORequest, OpType
from .spec import WorkloadSpec

__all__ = ["generate", "generate_arrays"]


def _zipf_like(rng: np.random.Generator, n: int, footprint: int, skew: float) -> np.ndarray:
    """Skewed page indices in [0, footprint): u^(1+skew) concentrates mass
    near 0, then a fixed permutation-free scatter keeps hot pages spread over
    the address space (multiplying by a large odd constant mod footprint)."""
    u = rng.random(n)
    base = (u ** (1.0 + skew) * footprint).astype(np.int64)
    base = np.minimum(base, footprint - 1)
    if skew == 0.0:
        return base
    scatter = 2654435761 % footprint  # Knuth multiplicative hash constant
    if scatter == 0:
        scatter = 1
    return (base * scatter) % footprint


def generate_arrays(
    spec: WorkloadSpec,
    count: int,
    *,
    workload_id: int,
    seed: int | None = None,
    start_us: float = 0.0,
) -> dict[str, np.ndarray]:
    """Vectorised generation; returns column arrays (used by tests too)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = np.random.default_rng(seed)
    empty = dict(
        arrival_us=np.empty(0),
        op=np.empty(0, dtype=np.int8),
        lpn=np.empty(0, dtype=np.int64),
        length=np.empty(0, dtype=np.int64),
    )
    if count == 0:
        return empty

    # Arrivals: exponential gaps_us; burstiness mixes a short and a long mode.
    mean_gap_us = spec.mean_interarrival_us
    if spec.burstiness > 1.0:
        # Two-phase hyper-exponential with the same mean: a fraction p of
        # gaps_us come from a mode `burstiness` times longer.
        p_long = 0.1
        long_scale = spec.burstiness
        short_scale = (1.0 - p_long * long_scale) / (1.0 - p_long)
        short_scale = max(short_scale, 0.05)
        is_long = rng.random(count) < p_long
        scales_us = np.where(is_long, long_scale, short_scale) * mean_gap_us
        gaps_us = rng.exponential(scales_us)
    else:
        gaps_us = rng.exponential(mean_gap_us, size=count)
    arrival_us = start_us + np.cumsum(gaps_us)

    # Read/write mix.
    ops = (rng.random(count) < spec.write_ratio).astype(np.int8)

    # Sizes: geometric with the requested mean, clipped.
    if spec.mean_request_pages <= 1.0:
        lengths = np.ones(count, dtype=np.int64)
    else:
        p = 1.0 / spec.mean_request_pages
        lengths = rng.geometric(p, size=count).astype(np.int64)
        np.clip(lengths, 1, spec.max_request_pages, out=lengths)

    # Addresses: sequential continuation vs skewed random jump.
    footprint = spec.footprint_pages
    jumps = _zipf_like(rng, count, footprint, spec.skew)
    seq = rng.random(count) < spec.sequential_fraction
    lpns = np.empty(count, dtype=np.int64)
    cursor = int(jumps[0])
    jump_list = jumps.tolist()
    seq_list = seq.tolist()
    len_list = lengths.tolist()
    for i in range(count):
        if not seq_list[i]:
            cursor = jump_list[i]
        if cursor + len_list[i] > footprint:
            cursor = 0
        lpns[i] = cursor
        cursor += len_list[i]

    _ = workload_id  # column layout is id-free; id is attached at materialise
    return dict(arrival_us=arrival_us, op=ops, lpn=lpns, length=lengths)


def generate(
    spec: WorkloadSpec,
    count: int,
    *,
    workload_id: int,
    seed: int | None = None,
    start_us: float = 0.0,
) -> list[IORequest]:
    """Generate ``count`` requests for one tenant."""
    cols = generate_arrays(
        spec, count, workload_id=workload_id, seed=seed, start_us=start_us
    )
    arrivals_us = cols["arrival_us"].tolist()
    ops = cols["op"].tolist()
    lpns = cols["lpn"].tolist()
    lengths = cols["length"].tolist()
    return [
        IORequest(
            arrival_us=arrivals_us[i],
            workload_id=workload_id,
            op=OpType(ops[i]),
            lpn=lpns[i],
            length=lengths[i],
        )
        for i in range(len(arrivals_us))
    ]
