"""Trace file I/O.

A trace file is a plain-text, one-record-per-line format close to the MSR
Cambridge CSV layout consumed by SSDSim-family simulators::

    # repro-trace v1
    arrival_us,workload_id,op,lpn,length
    0.000,0,R,1024,4
    13.520,1,W,77,1

Comments (``#``) and blank lines are ignored.  Round-tripping preserves all
request fields (arrival times to microsecond precision by default).

Real-world trace files are routinely dirty (truncated last lines, stray
headers from concatenation, locale-mangled numbers), so by default the
parser *skips* malformed records and reports them once at end of iteration
as a counted :class:`MalformedTraceWarning`.  Pass ``strict=True`` —
the escape hatch for pipelines that would rather die than drop records —
to restore the raise-on-first-error behaviour.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Iterator, TextIO
import warnings

from ..ssd.request import IORequest, OpType

__all__ = [
    "MalformedTraceWarning",
    "dump",
    "dumps",
    "load",
    "loads",
    "iter_records",
]


class MalformedTraceWarning(UserWarning):
    """Malformed trace lines were skipped during lenient parsing."""

_HEADER = "# repro-trace v1"
_COLUMNS = "arrival_us,workload_id,op,lpn,length"


def dump(requests: Iterable[IORequest], path: str | Path, *, precision: int = 3) -> None:
    """Write requests to ``path`` in trace format."""
    with open(path, "w", encoding="utf-8") as fh:
        _write(requests, fh, precision)


def dumps(requests: Iterable[IORequest], *, precision: int = 3) -> str:
    """Serialise requests to a trace-format string."""
    buf = io.StringIO()
    _write(requests, buf, precision)
    return buf.getvalue()


def _write(requests: Iterable[IORequest], fh: TextIO, precision: int) -> None:
    fh.write(_HEADER + "\n")
    fh.write(_COLUMNS + "\n")
    for r in requests:
        fh.write(
            f"{r.arrival_us:.{precision}f},{r.workload_id},{r.op},{r.lpn},{r.length}\n"
        )


def load(path: str | Path, *, strict: bool = False) -> list[IORequest]:
    """Read a trace file back into request objects."""
    with open(path, "r", encoding="utf-8") as fh:
        return list(iter_records(fh, strict=strict))


def loads(text: str, *, strict: bool = False) -> list[IORequest]:
    """Parse a trace-format string."""
    return list(iter_records(io.StringIO(text), strict=strict))


def _parse_line(parts: list[str], lineno: int) -> IORequest:
    if len(parts) != 5:
        raise ValueError(f"line {lineno}: expected 5 fields, got {len(parts)}")
    try:
        return IORequest(
            arrival_us=float(parts[0]),  # repro-lint: disable=R001 (trace column 0 is microseconds by format)
            workload_id=int(parts[1]),
            op=OpType.from_str(parts[2]),
            lpn=int(parts[3]),
            length=int(parts[4]),
        )
    except ValueError as exc:
        raise ValueError(f"line {lineno}: {exc}") from exc


def iter_records(fh: TextIO, *, strict: bool = False) -> Iterator[IORequest]:
    """Stream-parse trace records from an open text file.

    Malformed lines are skipped and counted; after the stream drains, one
    :class:`MalformedTraceWarning` reports the skip count and the first
    error.  ``strict=True`` raises ``ValueError`` on the first bad line
    instead.
    """
    skipped = 0
    first_error: str | None = None
    for lineno, raw in enumerate(fh, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line == _COLUMNS:
            continue
        try:
            record = _parse_line(line.split(","), lineno)
        except ValueError as exc:
            if strict:
                raise
            skipped += 1
            if first_error is None:
                first_error = str(exc)
            continue
        yield record
    if skipped:
        warnings.warn(
            f"skipped {skipped} malformed trace line(s); first: {first_error}",
            MalformedTraceWarning,
            stacklevel=2,
        )
