"""Trace file I/O.

A trace file is a plain-text, one-record-per-line format close to the MSR
Cambridge CSV layout consumed by SSDSim-family simulators::

    # repro-trace v1
    arrival_us,workload_id,op,lpn,length
    0.000,0,R,1024,4
    13.520,1,W,77,1

Comments (``#``) and blank lines are ignored.  Round-tripping preserves all
request fields (arrival times to microsecond precision by default).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from ..ssd.request import IORequest, OpType

__all__ = ["dump", "dumps", "load", "loads", "iter_records"]

_HEADER = "# repro-trace v1"
_COLUMNS = "arrival_us,workload_id,op,lpn,length"


def dump(requests: Iterable[IORequest], path: str | Path, *, precision: int = 3) -> None:
    """Write requests to ``path`` in trace format."""
    with open(path, "w", encoding="utf-8") as fh:
        _write(requests, fh, precision)


def dumps(requests: Iterable[IORequest], *, precision: int = 3) -> str:
    """Serialise requests to a trace-format string."""
    buf = io.StringIO()
    _write(requests, buf, precision)
    return buf.getvalue()


def _write(requests: Iterable[IORequest], fh: TextIO, precision: int) -> None:
    fh.write(_HEADER + "\n")
    fh.write(_COLUMNS + "\n")
    for r in requests:
        fh.write(
            f"{r.arrival_us:.{precision}f},{r.workload_id},{r.op},{r.lpn},{r.length}\n"
        )


def load(path: str | Path) -> list[IORequest]:
    """Read a trace file back into request objects."""
    with open(path, "r", encoding="utf-8") as fh:
        return list(iter_records(fh))


def loads(text: str) -> list[IORequest]:
    """Parse a trace-format string."""
    return list(iter_records(io.StringIO(text)))


def iter_records(fh: TextIO) -> Iterator[IORequest]:
    """Stream-parse trace records from an open text file."""
    for lineno, raw in enumerate(fh, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line == _COLUMNS:
            continue
        parts = line.split(",")
        if len(parts) != 5:
            raise ValueError(f"line {lineno}: expected 5 fields, got {len(parts)}")
        try:
            yield IORequest(
                arrival_us=float(parts[0]),
                workload_id=int(parts[1]),
                op=OpType.from_str(parts[2]),
                lpn=int(parts[3]),
                length=int(parts[4]),
            )
        except ValueError as exc:
            raise ValueError(f"line {lineno}: {exc}") from exc
