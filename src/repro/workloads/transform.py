"""Trace transformations: rescaling, slicing, shifting, relabelling.

Real traces rarely arrive at the intensity an experiment needs —
the MSR traces cover a week while a simulation window covers milliseconds.
These utilities let a user reshape any request list without touching its
structure: compress or stretch time, cut windows, offset arrival times,
or renumber tenants.  All functions return **new** request objects; inputs
are never mutated (simulation results attach to request instances, so
sharing them across runs is a foot-gun these helpers avoid).
"""

from __future__ import annotations

from typing import Sequence

from ..ssd.request import IORequest

__all__ = [
    "clone",
    "rescale_time",
    "rescale_to_rate",
    "slice_window",
    "shift_time",
    "remap_workloads",
]


def clone(requests: Sequence[IORequest]) -> list[IORequest]:
    """Fresh request objects with identical fields (completion state reset)."""
    return [
        IORequest(
            arrival_us=r.arrival_us,
            workload_id=r.workload_id,
            op=r.op,
            lpn=r.lpn,
            length=r.length,
        )
        for r in requests
    ]


def rescale_time(requests: Sequence[IORequest], factor: float) -> list[IORequest]:
    """Multiply every arrival time by ``factor``.

    ``factor < 1`` compresses the trace (raises intensity); ``factor > 1``
    stretches it.  Request order, mix and addresses are untouched.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    return [
        IORequest(
            arrival_us=r.arrival_us * factor,
            workload_id=r.workload_id,
            op=r.op,
            lpn=r.lpn,
            length=r.length,
        )
        for r in requests
    ]


def rescale_to_rate(
    requests: Sequence[IORequest], target_rps: float
) -> list[IORequest]:
    """Compress/stretch the trace so its mean arrival rate is ``target_rps``."""
    if target_rps <= 0:
        raise ValueError("target_rps must be positive")
    if len(requests) < 2:
        return clone(requests)
    ordered = sorted(requests, key=lambda r: r.arrival_us)
    duration_s = (ordered[-1].arrival_us - ordered[0].arrival_us) / 1e6
    if duration_s <= 0:
        return clone(requests)
    current_rps = (len(ordered) - 1) / duration_s
    return rescale_time(requests, current_rps / target_rps)


def slice_window(
    requests: Sequence[IORequest],
    start_us: float,
    end_us: float,
    *,
    rebase: bool = True,
) -> list[IORequest]:
    """Requests with ``start_us <= arrival < end_us``.

    ``rebase`` shifts the result so the window starts at time zero.
    """
    if end_us <= start_us:
        raise ValueError("end_us must exceed start_us")
    offset_us = start_us if rebase else 0.0
    return [
        IORequest(
            arrival_us=r.arrival_us - offset_us,
            workload_id=r.workload_id,
            op=r.op,
            lpn=r.lpn,
            length=r.length,
        )
        for r in requests
        if start_us <= r.arrival_us < end_us
    ]


def shift_time(requests: Sequence[IORequest], offset_us: float) -> list[IORequest]:
    """Add ``offset_us`` to every arrival (concatenating phases)."""
    out = []
    for r in requests:
        arrival_us = r.arrival_us + offset_us
        if arrival_us < 0:
            raise ValueError("shift would produce a negative arrival time")
        out.append(
            IORequest(
                arrival_us=arrival_us,
                workload_id=r.workload_id,
                op=r.op,
                lpn=r.lpn,
                length=r.length,
            )
        )
    return out


def remap_workloads(
    requests: Sequence[IORequest], mapping: dict[int, int]
) -> list[IORequest]:
    """Renumber tenant ids (e.g. when composing mixes from separate files)."""
    out = []
    for r in requests:
        try:
            wid = mapping[r.workload_id]
        except KeyError:
            raise KeyError(
                f"workload id {r.workload_id} missing from mapping"
            ) from None
        out.append(
            IORequest(
                arrival_us=r.arrival_us,
                workload_id=wid,
                op=r.op,
                lpn=r.lpn,
                length=r.length,
            )
        )
    return out
