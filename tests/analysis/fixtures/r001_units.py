"""R001 golden fixture: one bare float reaching a ``*_us`` sink."""


def service_time(transfer):
    latency_us = transfer
    return latency_us
