"""R002 golden fixture: a module-level RNG draw inside simulation code."""
# repro-lint: module=repro.ssd.fixture

import random


def jitter():
    return random.random()
