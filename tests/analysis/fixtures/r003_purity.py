"""R003 golden fixture: an unguarded observability call in simulation code."""
# repro-lint: module=repro.core.fixture


def publish(obs, value):
    obs.counter("requests", value)
