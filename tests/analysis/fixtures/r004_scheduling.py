"""R004 golden fixture: scheduling a bare duration, not an absolute time."""


def submit(loop, transfer_us, callback):
    loop.schedule(transfer_us, callback)
