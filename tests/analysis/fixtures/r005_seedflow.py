"""R005 golden fixture: ambient RNG construction with no seed provenance."""
# repro-lint: module=repro.fixture.seeds

import random


def make_generator():
    return random.Random()
