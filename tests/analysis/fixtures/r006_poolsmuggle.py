"""R006 golden fixture: a pooled callable smuggling a mutable module global.

``record`` looks innocent — it is a module-level def, picklable, no
closure — but it appends to ``_RESULTS``, which is fork-copied into every
worker: each child mutates its own copy and the parent sees nothing.
"""
# repro-lint: module=repro.harness.fixture

from repro.harness.sweep import run_sweep

_RESULTS = []


def record(params):
    _RESULTS.append(params)
    return params


def sweep_all(grid):
    return run_sweep(record, grid)
