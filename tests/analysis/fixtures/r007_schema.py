"""R007 golden fixture: a schema_version writer with no paired reader."""
# repro-lint: module=repro.fixture.store

STORE_SCHEMA_VERSION = 3


def export_state(items):
    return {
        "schema_version": STORE_SCHEMA_VERSION,
        "items": list(items),
    }
