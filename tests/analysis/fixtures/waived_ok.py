"""Waiver fixture: the R001 hit below is silenced by a justified waiver."""


def parse_arrival(text):
    arrival_us = float(text)  # repro-lint: disable=R001 (fixture: the column is microseconds by format)
    return arrival_us
