"""Waiver fixture: a waiver with no ``(reason)`` must NOT silence the rule."""


def parse_gap(text):
    gap_us = float(text)  # repro-lint: disable=R001
    return gap_us
