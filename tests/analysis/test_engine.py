"""Lint engine: golden fixtures, waivers, selection, CLI contract."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import LintEngine, ModuleSource, lint_paths

FIXTURES = Path(__file__).parent / "fixtures"
REPO = Path(__file__).resolve().parents[2]

#: golden fixtures: file -> the one rule it must trigger
GOLDEN = {
    "r001_units.py": "R001",
    "r002_determinism.py": "R002",
    "r003_purity.py": "R003",
    "r004_scheduling.py": "R004",
    "r005_seedflow.py": "R005",
    "r006_poolsmuggle.py": "R006",
    "r007_schema.py": "R007",
}


def _cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
    )


class TestGoldenFixtures:
    @pytest.mark.parametrize("filename,rule", sorted(GOLDEN.items()))
    def test_fixture_triggers_exactly_its_rule(self, filename, rule):
        violations = LintEngine().lint_file(FIXTURES / filename)
        assert len(violations) == 1, [v.format() for v in violations]
        assert violations[0].rule == rule
        assert not violations[0].waived

    def test_fixtures_scoped_by_module_pragma(self):
        # R002/R003 only apply inside repro.ssd / repro.core: the pragma is
        # what pulls the fixture into scope.  Without it, nothing fires.
        module = ModuleSource.parse(FIXTURES / "r002_determinism.py")
        assert module.module == "repro.ssd.fixture"
        module = ModuleSource.parse(FIXTURES / "r003_purity.py")
        assert module.module == "repro.core.fixture"
        # the interprocedural fixtures pin modules the same way: the R006
        # fixture maps itself into the harness namespace so its import of
        # repro.harness.sweep resolves against the real package
        module = ModuleSource.parse(FIXTURES / "r006_poolsmuggle.py")
        assert module.module == "repro.harness.fixture"
        module = ModuleSource.parse(FIXTURES / "r007_schema.py")
        assert module.module == "repro.fixture.store"


class TestWaivers:
    def test_justified_waiver_silences_but_is_reported(self):
        report = lint_paths([FIXTURES / "waived_ok.py"])
        assert report.ok
        assert len(report.waived) == 1
        waived = report.waived[0]
        assert waived.rule == "R001"
        assert "microseconds by format" in waived.waiver_reason

    def test_unjustified_waiver_keeps_violation_active(self):
        report = lint_paths([FIXTURES / "waiver_unjustified.py"])
        assert not report.ok
        assert len(report.active) == 1
        assert "waiver rejected" in report.active[0].message


class TestSelection:
    def test_select_filters_rules(self):
        report = lint_paths([FIXTURES / "r001_units.py"], select=["R004"])
        assert report.ok  # R001 fixture is clean under R004 alone

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown rule codes"):
            LintEngine(select=["R999"])


class TestUnitInference:
    """A few targeted lattice cases beyond the golden fixture."""

    def _lint_source(self, tmp_path, source):
        path = tmp_path / "sample.py"
        path.write_text(source)
        return LintEngine(select=["R001"]).lint_file(path)

    def test_conversion_is_provable(self, tmp_path):
        assert not self._lint_source(
            tmp_path, "def f(delay_ms):\n    delay_us = delay_ms * 1000.0\n"
        )

    def test_wrong_unit_flagged(self, tmp_path):
        violations = self._lint_source(
            tmp_path, "def f(delay_ms):\n    delay_us = delay_ms\n"
        )
        assert len(violations) == 1

    def test_mixed_unit_addition_flagged(self, tmp_path):
        violations = self._lint_source(
            tmp_path, "def f(a_us, b_ms):\n    worst = a_us + b_ms\n"
        )
        assert len(violations) == 1

    def test_now_is_known_microseconds(self, tmp_path):
        assert not self._lint_source(
            tmp_path, "def f(loop, wait_us):\n    end_us = loop.now + wait_us\n"
        )


class TestCLI:
    def test_violations_exit_1_with_location(self):
        proc = _cli(str(FIXTURES / "r001_units.py"))
        assert proc.returncode == 1
        assert "r001_units.py:5" in proc.stdout
        assert "R001" in proc.stdout

    def test_clean_file_exits_0(self):
        proc = _cli(str(FIXTURES / "waived_ok.py"))
        assert proc.returncode == 0
        assert "clean" in proc.stdout

    def test_json_schema(self):
        proc = _cli("--json", str(FIXTURES / "r004_scheduling.py"))
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["schema_version"] == 2
        assert payload["tool"]["name"] == "repro-analysis"
        assert payload["files"] == 1
        assert payload["ok"] is False
        assert payload["counts"] == {"R004": 1}
        assert payload["suppressed"] == 0
        (violation,) = payload["violations"]
        assert set(violation) == {
            "rule", "path", "line", "col", "message", "waived",
            "waiver_reason", "suppressed", "fingerprint",
        }
        assert violation["rule"] == "R004"
        assert len(violation["fingerprint"]) == 16

    def test_json_round_trips_through_reader(self):
        from repro.analysis.engine import load_report_dict

        proc = _cli("--json", str(FIXTURES / "r004_scheduling.py"))
        doc = load_report_dict(json.loads(proc.stdout))
        assert doc["counts"] == {"R004": 1}

    def test_select_flag(self):
        proc = _cli("--select", "R002,R003", str(FIXTURES / "r001_units.py"))
        assert proc.returncode == 0

    def test_usage_errors_exit_2(self):
        assert _cli("--select", "R999", "src").returncode == 2
        assert _cli(str(FIXTURES / "no_such_file.txt")).returncode == 2
