"""R005–R007 behavior: taint, pool races, schema contracts, src cleanliness."""

from pathlib import Path

import pytest

from repro.analysis import LintEngine, lint_paths
from repro.analysis.engine import ModuleSource

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src"


def _lint(tmp_path, source, *, module="repro.demo.sample", select=None):
    path = tmp_path / "sample.py"
    path.write_text(f"# repro-lint: module={module}\n{source}")
    return LintEngine(select=select).lint_file(path)


class TestSeedProvenance:
    def test_seed_parameter_is_clean(self, tmp_path):
        assert not _lint(
            tmp_path,
            "import random\n"
            "def build(seed):\n"
            "    return random.Random(seed)\n",
            select=["R005"],
        )

    def test_config_seed_field_is_clean(self, tmp_path):
        assert not _lint(
            tmp_path,
            "import random\n"
            "def build(cfg):\n"
            "    return random.Random(cfg.seed)\n",
            select=["R005"],
        )

    def test_literal_seed_is_clean(self, tmp_path):
        assert not _lint(
            tmp_path,
            "import numpy as np\n"
            "def build():\n"
            "    return np.random.default_rng(99)\n",
            select=["R005"],
        )

    def test_ambient_rng_flagged(self, tmp_path):
        (violation,) = _lint(
            tmp_path,
            "import numpy as np\n"
            "def build():\n"
            "    return np.random.default_rng()\n",
            select=["R005"],
        )
        assert violation.rule == "R005"
        assert "ambient" in violation.message

    def test_rng_stored_in_module_global_flagged(self, tmp_path):
        (violation,) = _lint(
            tmp_path,
            "import random\n"
            "_RNG = None\n"
            "def init(seed):\n"
            "    global _RNG\n"
            "    _RNG = random.Random(seed)\n",
            select=["R005"],
        )
        assert "module global" in violation.message

    def test_seed_fanout_into_two_rngs_flagged(self, tmp_path):
        violations = _lint(
            tmp_path,
            "import random\n"
            "def build(seed):\n"
            "    a = random.Random(seed)\n"
            "    b = random.Random(seed)\n"
            "    return a, b\n",
            select=["R005"],
        )
        assert violations, "fan-out of one seed into two RNGs must be flagged"
        assert any("fan" in v.message for v in violations)

    def test_taint_propagates_through_call_graph(self, tmp_path):
        # the seed arrives via an interprocedural edge: caller(seed) ->
        # _make(value) -> Random(value); no seed-named local in _make
        assert not _lint(
            tmp_path,
            "import random\n"
            "def _make(value):\n"
            "    return random.Random(value)\n"
            "def caller(seed):\n"
            "    return _make(seed)\n",
            select=["R005"],
        )

    def test_untraceable_seed_expression_flagged(self, tmp_path):
        (violation,) = _lint(
            tmp_path,
            "import random\n"
            "import time\n"
            "def build():\n"
            "    return random.Random(time.time())\n",
            select=["R005"],
        )
        assert violation.rule == "R005"


class TestPoolSafety:
    def test_golden_fixture_flags_smuggled_global(self):
        violations = LintEngine().lint_file(FIXTURES / "r006_poolsmuggle.py")
        (violation,) = violations
        assert violation.rule == "R006"
        assert "repro.harness.fixture.record" in violation.message
        assert "_RESULTS" in violation.message

    def test_fixture_with_real_sweep_resolves_in_program(self):
        # combined with the real harness module, run_sweep's fn parameter is
        # discovered from its own pool.map body (not the known-entry table)
        report = lint_paths(
            [FIXTURES / "r006_poolsmuggle.py", SRC / "repro/harness/sweep.py"]
        )
        r006 = [v for v in report.violations if v.rule == "R006"]
        (violation,) = r006
        assert "_RESULTS" in violation.message
        assert violation.path.endswith("r006_poolsmuggle.py")

    def test_lambda_into_pool_flagged(self, tmp_path):
        violations = _lint(
            tmp_path,
            "import multiprocessing\n"
            "def sweep(items):\n"
            "    with multiprocessing.Pool(2) as pool:\n"
            "        return pool.map(lambda x: x + 1, items)\n",
            select=["R006"],
        )
        assert violations
        assert any("lambda" in v.message.lower() for v in violations)

    def test_nested_def_into_pool_flagged(self, tmp_path):
        violations = _lint(
            tmp_path,
            "import multiprocessing\n"
            "def sweep(items, bias):\n"
            "    def shifted(x):\n"
            "        return x + bias\n"
            "    with multiprocessing.Pool(2) as pool:\n"
            "        return pool.map(shifted, items)\n",
            select=["R006"],
        )
        assert violations

    def test_pure_module_level_def_is_clean(self, tmp_path):
        assert not _lint(
            tmp_path,
            "import multiprocessing\n"
            "def double(x):\n"
            "    return 2 * x\n"
            "def sweep(items):\n"
            "    with multiprocessing.Pool(2) as pool:\n"
            "        return pool.map(double, items)\n",
            select=["R006"],
        )

    def test_transitive_global_reach_flagged(self, tmp_path):
        # worker itself is clean; its helper touches the mutable global —
        # the violation message names the full access path
        violations = _lint(
            tmp_path,
            "import multiprocessing\n"
            "_SEEN = set()\n"
            "def _helper(x):\n"
            "    _SEEN.add(x)\n"
            "    return x\n"
            "def worker(x):\n"
            "    return _helper(x)\n"
            "def sweep(items):\n"
            "    with multiprocessing.Pool(2) as pool:\n"
            "        return pool.map(worker, items)\n",
            select=["R006"],
        )
        assert violations
        assert any(
            "worker" in v.message and "_helper" in v.message
            and "_SEEN" in v.message
            for v in violations
        )

    def test_immutable_global_read_is_clean(self, tmp_path):
        assert not _lint(
            tmp_path,
            "import multiprocessing\n"
            "SCALE = 3\n"
            "NAMES = frozenset({'a', 'b'})\n"
            "def worker(x):\n"
            "    return SCALE * x if 'a' in NAMES else x\n"
            "def sweep(items):\n"
            "    with multiprocessing.Pool(2) as pool:\n"
            "        return pool.map(worker, items)\n",
            select=["R006"],
        )

    def test_real_sweep_entry_points_are_clean(self):
        # the acceptance bar: the real harness sweep module passes R006
        report = lint_paths([SRC / "repro" / "harness"], select=["R006"])
        assert report.ok, [v.format() for v in report.active]


class TestSchemaRoundTrip:
    def test_writer_without_reader_flagged(self):
        (violation,) = LintEngine().lint_file(FIXTURES / "r007_schema.py")
        assert violation.rule == "R007"
        assert "no paired reader" in violation.message

    def test_matched_writer_reader_pair_is_clean(self, tmp_path):
        assert not _lint(
            tmp_path,
            "DOC_SCHEMA_VERSION = 2\n"
            "_DOC_FIELDS = frozenset({'schema_version', 'items', 'count'})\n"
            "def write(items):\n"
            "    return {\n"
            "        'schema_version': DOC_SCHEMA_VERSION,\n"
            "        'items': items,\n"
            "        'count': len(items),\n"
            "    }\n"
            "def load(doc):\n"
            "    if doc.get('schema_version') != DOC_SCHEMA_VERSION:\n"
            "        raise ValueError('version mismatch')\n"
            "    missing = _DOC_FIELDS - set(doc)\n"
            "    if missing:\n"
            "        raise ValueError('missing')\n"
            "    return doc\n",
            select=["R007"],
        )

    def test_field_mismatch_flagged(self, tmp_path):
        (violation,) = _lint(
            tmp_path,
            "DOC_SCHEMA_VERSION = 2\n"
            "def write(items):\n"
            "    return {\n"
            "        'schema_version': DOC_SCHEMA_VERSION,\n"
            "        'items': items,\n"
            "        'extra_field': 1,\n"
            "    }\n"
            "def load(doc):\n"
            "    if doc.get('schema_version') != DOC_SCHEMA_VERSION:\n"
            "        raise ValueError('bad version')\n"
            "    return doc['items']\n",
            select=["R007"],
        )
        assert "field mismatch" in violation.message
        assert "extra_field" in violation.message

    def test_private_and_augmented_keys(self, tmp_path):
        # doc['added'] = ... counts as a writer field; _private does not
        violations = _lint(
            tmp_path,
            "DOC_SCHEMA_VERSION = 1\n"
            "def write():\n"
            "    doc = {'schema_version': DOC_SCHEMA_VERSION, '_private': 0}\n"
            "    doc['added'] = 1\n"
            "    return doc\n"
            "def load(doc):\n"
            "    if doc.get('schema_version') != DOC_SCHEMA_VERSION:\n"
            "        raise ValueError('bad')\n"
            "    return doc\n",
            select=["R007"],
        )
        (violation,) = violations
        assert "added" in violation.message
        assert "_private" not in violation.message


class TestSrcClean:
    def test_whole_src_clean_under_interprocedural_rules(self):
        report = lint_paths([SRC], select=["R005", "R006", "R007"])
        assert report.ok, [v.format() for v in report.active]

    def test_every_waiver_has_a_written_reason(self):
        report = lint_paths([SRC])
        assert report.ok, [v.format() for v in report.active]
        for violation in report.waived:
            assert violation.waiver_reason, violation.format()
            assert violation.waiver_reason.strip()


class TestSchemaReaders:
    """The readers added for R007 actually validate (not just decoration)."""

    def test_bench_reader_rejects_truncated_doc(self):
        from repro.harness.bench import SCHEMA_VERSION, load_bench

        with pytest.raises(ValueError, match="missing fields"):
            load_bench({"schema_version": SCHEMA_VERSION})
        with pytest.raises(ValueError, match="schema_version"):
            load_bench({"schema_version": 99})

    def test_slo_spec_rejects_wrong_version(self):
        from repro.obs.slo import SloSpec, SloSpecError

        with pytest.raises(SloSpecError, match="schema_version"):
            SloSpec.from_dict({"schema_version": 99, "window_us": 100.0})
        spec = SloSpec.from_dict({"schema_version": 1, "window_us": 100.0})
        doc = spec.to_dict()
        again = SloSpec.from_dict(doc)
        assert again.to_dict() == doc

    def test_critpath_whatif_telemetry_flight_readers(self, tmp_path):
        import json

        from repro.obs.critpath import load_report as load_critpath
        from repro.obs.flightrecorder import (
            FLIGHT_SCHEMA_VERSION, load_manifest,
        )
        from repro.obs.telemetry import load_header
        from repro.obs.whatif import load_report as load_whatif

        for loader in (load_critpath, load_whatif, load_header):
            with pytest.raises(ValueError, match="schema_version"):
                loader({"schema_version": 99})
        manifest = {
            "schema_version": FLIGHT_SCHEMA_VERSION,
            "trigger": "test", "detail": "", "time_us": 0.0,
            "context": {}, "replay": {}, "bundle_files": [],
        }
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        assert load_manifest(tmp_path) == manifest

    def test_explain_and_profile_readers(self):
        from repro.harness.explain import load_explain
        from repro.harness.hostprofile import load_profile

        with pytest.raises(ValueError, match="schema_version"):
            load_explain({"schema_version": 99})
        with pytest.raises(ValueError, match="schema_version"):
            load_profile({"schema_version": 99})
        with pytest.raises(ValueError, match="missing"):
            load_explain({"schema_version": 1})
