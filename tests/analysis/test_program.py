"""Whole-program representation: symbol table, aliases, call graph."""

from pathlib import Path

from repro.analysis.engine import ModuleSource
from repro.analysis.program import Program, dotted_name

FIXTURES = Path(__file__).parent / "fixtures"


def _program(tmp_path, **files):
    """Build a Program from named sources, pinned via the module pragma."""
    modules = []
    for module_name, source in files.items():
        path = tmp_path / (module_name.replace(".", "_") + ".py")
        path.write_text(f"# repro-lint: module={module_name}\n{source}")
        modules.append(ModuleSource.parse(path))
    return Program.build(modules)


class TestSymbolTable:
    def test_functions_and_classes_indexed_by_qualname(self, tmp_path):
        program = _program(
            tmp_path,
            **{
                "repro.demo.alpha": (
                    "def helper():\n"
                    "    return 1\n"
                    "class Widget:\n"
                    "    def spin(self):\n"
                    "        return helper()\n"
                ),
            },
        )
        assert "repro.demo.alpha.helper" in program.functions
        assert "repro.demo.alpha.Widget.spin" in program.functions
        assert "repro.demo.alpha.Widget" in program.class_index
        assert program.functions["repro.demo.alpha.Widget.spin"].is_method

    def test_module_globals_classified_by_mutability(self, tmp_path):
        program = _program(
            tmp_path,
            **{
                "repro.demo.state": (
                    "import re\n"
                    "LIMIT = 10\n"
                    "NAMES = frozenset({'a'})\n"
                    "PATTERN = re.compile('x')\n"
                    "_CACHE = {}\n"
                    "_ITEMS = []\n"
                ),
            },
        )
        gi = program.modules["repro.demo.state"].globals
        assert not gi["LIMIT"].mutable
        assert not gi["NAMES"].mutable
        assert not gi["PATTERN"].mutable
        assert gi["_CACHE"].mutable
        assert gi["_ITEMS"].mutable

    def test_global_statement_marks_rebinding(self, tmp_path):
        program = _program(
            tmp_path,
            **{
                "repro.demo.rebind": (
                    "TOKEN = None\n"
                    "def set_token(value):\n"
                    "    global TOKEN\n"
                    "    TOKEN = value\n"
                ),
            },
        )
        info = program.modules["repro.demo.rebind"]
        assert info.globals["TOKEN"].mutable
        fi = program.functions["repro.demo.rebind.set_token"]
        assert ("repro.demo.rebind", "TOKEN") in fi.global_writes


class TestAliasResolution:
    def test_cross_module_import_canonicalizes(self, tmp_path):
        program = _program(
            tmp_path,
            **{
                "repro.demo.base": "def work():\n    return 0\n",
                "repro.demo.client": (
                    "from repro.demo.base import work as w\n"
                    "def run():\n"
                    "    return w()\n"
                ),
            },
        )
        fi = program.functions["repro.demo.client.run"]
        assert [c.callee for c in fi.calls] == ["repro.demo.base.work"]

    def test_reexport_chain_is_chased(self, tmp_path):
        program = _program(
            tmp_path,
            **{
                "repro.demo.impl": "def deep():\n    return 0\n",
                "repro.demo": "from repro.demo.impl import deep\n",
                "repro.demo.user": (
                    "from repro.demo import deep\n"
                    "def go():\n"
                    "    return deep()\n"
                ),
            },
        )
        fi = program.functions["repro.demo.user.go"]
        assert [c.callee for c in fi.calls] == ["repro.demo.impl.deep"]


class TestCallGraph:
    def test_function_passed_as_value_becomes_ref_edge(self, tmp_path):
        program = _program(
            tmp_path,
            **{
                "repro.demo.refs": (
                    "def leaf():\n"
                    "    return 1\n"
                    "def driver(fn):\n"
                    "    return fn()\n"
                    "def top():\n"
                    "    return driver(leaf)\n"
                ),
            },
        )
        top = program.functions["repro.demo.refs.top"]
        assert "repro.demo.refs.leaf" in top.refs
        assert [c.callee for c in top.calls] == ["repro.demo.refs.driver"]

    def test_self_method_call_resolves_to_class_method(self, tmp_path):
        program = _program(
            tmp_path,
            **{
                "repro.demo.cls": (
                    "class Engine:\n"
                    "    def start(self):\n"
                    "        return self._spin()\n"
                    "    def _spin(self):\n"
                    "        return 1\n"
                ),
            },
        )
        start = program.functions["repro.demo.cls.Engine.start"]
        assert [c.callee for c in start.calls] == [
            "repro.demo.cls.Engine._spin"
        ]

    def test_bind_args_maps_positional_and_keyword(self, tmp_path):
        program = _program(
            tmp_path,
            **{
                "repro.demo.bind": (
                    "def callee(first, second=None):\n"
                    "    return first\n"
                    "def caller():\n"
                    "    return callee(1, second=2)\n"
                ),
            },
        )
        caller = program.functions["repro.demo.bind.caller"]
        callee = program.functions["repro.demo.bind.callee"]
        (site,) = caller.calls
        bound = program.bind_args(site.node, callee)
        assert sorted(bound) == ["first", "second"]

    def test_nested_function_attributed_to_parent(self, tmp_path):
        program = _program(
            tmp_path,
            **{
                "repro.demo.nested": (
                    "_LOG = []\n"
                    "def outer():\n"
                    "    def inner():\n"
                    "        _LOG.append(1)\n"
                    "    return inner\n"
                ),
            },
        )
        outer = program.functions["repro.demo.nested.outer"]
        inner = program.functions["repro.demo.nested.outer.inner"]
        assert inner.nested
        # the *parent* owns the nested body's accesses
        assert ("repro.demo.nested", "_LOG") in outer.global_reads


class TestHelpers:
    def test_dotted_name(self):
        import ast

        expr = ast.parse("a.b.c", mode="eval").body
        assert dotted_name(expr) == "a.b.c"
        call = ast.parse("f()", mode="eval").body
        assert dotted_name(call) is None

    def test_real_package_builds(self):
        # the whole src tree must build a program without errors
        import pathlib

        src = pathlib.Path(__file__).resolve().parents[2] / "src"
        modules = [
            ModuleSource.parse(p)
            for p in sorted(src.rglob("*.py"), key=lambda p: p.as_posix())
            if "__pycache__" not in p.parts
        ]
        program = Program.build(modules)
        assert "repro.harness.sweep.run_sweep" in program.functions
        assert len(program.modules) == len(modules)
